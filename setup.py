"""Shim for environments without the `wheel` package (offline installs).

`pip install -e .` requires `bdist_wheel` under PEP 517; when that is
unavailable, `python setup.py develop` installs an equivalent editable
link using only setuptools.
"""
from setuptools import setup

setup()
