"""Load-test harness for ``repro.serve``: QPS and latency percentiles.

Three mixed workloads over one in-process :class:`ReasoningServer`,
driven through the pipelining :class:`AsyncClient` exactly as a remote
load generator would (same wire protocol, real TCP sockets on
loopback):

* **cold closures** — every query has a distinct left-hand side, so
  each one pays a full worklist-kernel run.  Measured twice: inline
  (``workers=0``, the single-process baseline) and offloaded to a
  warmed worker pool.  This is the workload the pool exists for; the
  ≥2× QPS criterion applies here *when the machine has ≥2 CPUs*
  (``cpus`` is recorded in the report — on a single-core box the pool
  can only add IPC overhead, so the assertion is gated).
* **hot LHS repeats** — the steady state: every query re-asks a
  left-hand side the session has already closed, answered from the
  per-LHS cache without touching kernel or pool.  The p50 here must be
  far below the cold p50 (the session-cache criterion, CPU-count
  independent).
* **add/retract churn** — the interactive-editing shape: each cycle
  edits Σ (bumping the session generation) and re-probes, so the
  server keeps invalidating and recomputing.

``BENCH_serve_throughput.json`` at the repository root records QPS,
p50/p95/p99 client-observed latency, and the environment.

Run:  pytest benchmarks/bench_serve_throughput.py -s
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

from repro.serve import AsyncClient, ReasoningServer, ServeConfig
from repro.workloads import mixed_family

from _timing import ab_compare

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve_throughput.json"

SCALE = 16           # mixed_family(16): |N| = 64 basis subattributes
CLUSTERS = 8
COLD_QUERIES = 48    # distinct left-hand sides per cold run
HOT_QUERIES = 300    # repeats of one already-closed left-hand side
CHURN_CYCLES = 40    # add → probe → retract → probe cycles
CONCURRENCY = 24     # client-side pipelining depth
SPEEDUP_TARGET = 2.0
HOT_OVER_COLD = 5.0  # hot p50 must beat cold p50 by at least this factor

SCHEMA_ROOT = mixed_family(SCALE)


def _sigma_texts() -> list[str]:
    """The clustered Σ of bench_incremental_cover, plus cross-cluster
    links so cold closures walk several clusters (more kernel passes)."""
    texts = []
    per = SCALE // CLUSTERS
    for cluster in range(CLUSTERS):
        i, j = cluster * per + 1, cluster * per + 2
        texts.extend([
            f"R(A{i}) -> R(A{j})",
            f"R(A{j}) -> R(L{i}[D{i}(B{i}, λ)])",
            f"R(A{j}) ->> R(L{j}[D{j}(B{j}, C{j})])",
            f"R(L{i}[λ]) -> R(A{i})",
        ])
        nxt = ((cluster + 1) % CLUSTERS) * per + 1
        texts.append(f"R(A{j}) ->> R(A{nxt})")
    return texts


def _cold_queries() -> list[str]:
    """Distinct-LHS membership queries: no two share a closure."""
    queries = []
    k = 1
    while len(queries) < COLD_QUERIES:
        i = (k - 1) % SCALE + 1
        j = k % SCALE + 1
        m = (k + 1) % SCALE + 1
        # vary the LHS shape so every mask is distinct
        lhs = [f"R(A{i}, L{j}[D{j}(B{j})])",
               f"R(L{i}[D{i}(B{i})], L{j}[D{j}(C{j})])",
               f"R(A{i}, L{j}[λ])",
               f"R(A{i}, A{j}, L{m}[D{m}(B{m})])"][k % 4]
        queries.append(f"{lhs} ->> R(A{m})")
        k += 1
    return queries


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _stats(latencies: list[float], elapsed: float) -> dict:
    ordered = sorted(latencies)
    return {
        "requests": len(latencies),
        "qps": round(len(latencies) / elapsed, 1),
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(ordered, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
    }


async def _drive(client: AsyncClient, requests: list[tuple[str, dict]]) -> dict:
    """Fire requests with bounded pipelining; per-request latencies."""
    gate = asyncio.Semaphore(CONCURRENCY)
    latencies: list[float] = []

    async def one(op: str, params: dict) -> None:
        async with gate:
            started = time.perf_counter()
            await client.request(op, **params)
            latencies.append(time.perf_counter() - started)

    started = time.perf_counter()
    await asyncio.gather(*(one(op, params) for op, params in requests))
    return _stats(latencies, time.perf_counter() - started)


async def _cold_run(client: AsyncClient, sigma: list[str]) -> dict:
    """Reset the session (cache gone), then fire all distinct-LHS queries."""
    await client.open("bench", str(SCHEMA_ROOT), sigma, replace=True)
    return await _drive(client, [
        ("implies", {"session": "bench", "dependency": text})
        for text in _cold_queries()])


async def _hot_run(client: AsyncClient) -> dict:
    probe = _cold_queries()[0]
    await client.request("implies", session="bench", dependency=probe)  # warm
    return await _drive(client, [
        ("implies", {"session": "bench", "dependency": probe})] * HOT_QUERIES)


async def _churn_run(client: AsyncClient) -> dict:
    """Sequential (the edits must interleave with the probes)."""
    extra = "R(A1) -> R(L2[D2(C2)])"
    probe = "R(A1) ->> R(L2[D2(C2)])"
    latencies: list[float] = []
    started = time.perf_counter()
    for _ in range(CHURN_CYCLES):
        for op, params in [
            ("add", {"session": "bench", "dependency": extra}),
            ("implies", {"session": "bench", "dependency": probe}),
            ("retract", {"session": "bench", "dependency": extra}),
            ("implies", {"session": "bench", "dependency": probe}),
        ]:
            tick = time.perf_counter()
            await client.request(op, **params)
            latencies.append(time.perf_counter() - tick)
    return _stats(latencies, time.perf_counter() - started)


async def _measure(workers: int, sigma: list[str]) -> dict:
    config = ServeConfig(workers=workers, max_inflight=256,
                         max_pending_per_conn=256, idle_ttl=None,
                         request_timeout=None)
    async with ReasoningServer(config) as server:
        host, port = server.address
        async with await AsyncClient.connect(host, port) as client:
            warmup = await _cold_run(client, sigma)   # warm pool + JIT paths
            cold = await _cold_run(client, sigma)
            hot = await _hot_run(client)
            churn = await _churn_run(client)
            dispatches = server.counters["serve.pool_dispatches"]
    return {"warmup_qps": warmup["qps"], "cold": cold, "hot": hot,
            "churn": churn, "pool_dispatches": dispatches}


def test_serve_throughput_report(benchmark):
    sigma = _sigma_texts()
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    pool_workers = min(4, cpus) if cpus >= 2 else 2

    def measure():
        inline = asyncio.run(_measure(0, sigma))
        pooled = asyncio.run(_measure(pool_workers, sigma))
        return {
            "cpus": cpus,
            "pool_workers": pool_workers,
            "sigma_size": len(sigma),
            "cold_queries": COLD_QUERIES,
            "concurrency": CONCURRENCY,
            "inline": inline,
            "pool": pooled,
            "cold_speedup": round(
                pooled["cold"]["qps"] / inline["cold"]["qps"], 2),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)

    report = {"serve_throughput": row, "speedup_target": SPEEDUP_TARGET,
              "hot_over_cold_target": HOT_OVER_COLD}
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"\nserve throughput (|Σ|={row['sigma_size']}, "
          f"{COLD_QUERIES} cold LHS, pipeline depth {CONCURRENCY}, "
          f"{cpus} cpu(s)):")
    for mode in ("inline", "pool"):
        stats = row[mode]
        print(f"  {mode:7s} cold {stats['cold']['qps']:8.1f} qps "
              f"(p50 {stats['cold']['p50_ms']:.2f}ms  "
              f"p99 {stats['cold']['p99_ms']:.2f}ms)   "
              f"hot {stats['hot']['qps']:8.1f} qps "
              f"(p50 {stats['hot']['p50_ms']:.3f}ms)   "
              f"churn {stats['churn']['qps']:8.1f} qps")
    print(f"  cold speedup (pool/inline): {row['cold_speedup']:.2f}x")
    print(f"report written to {JSON_PATH.name}")

    # The session cache must make hot left-hand sides far cheaper than
    # cold ones — true regardless of CPU count.
    for mode in ("inline", "pool"):
        assert (row[mode]["hot"]["p50_ms"] * HOT_OVER_COLD
                <= row[mode]["cold"]["p50_ms"]), row[mode]
    # Offload must actually reach the pool.
    assert row["pool"]["pool_dispatches"] >= COLD_QUERIES
    # Parallel speedup needs parallel hardware; on a single-CPU machine
    # the pool can only add IPC overhead, so the ≥2x gate is CI-only.
    if cpus >= 2:
        assert row["cold_speedup"] >= SPEEDUP_TARGET, row


# -- registry dispatch overhead (PR 8 guard) -------------------------------
#
# The typed command registry replaced the server's per-op if-chain.  The
# guard below times both shapes back to back on the warm-cache hot path
# (params dict in, result dict out — exactly what ``_execute`` does once
# a request is parsed) and fails if the registry costs more than noise.

DISPATCH_BATCH = 400       # wire dispatches per timed sample
DISPATCH_NOISE = 1.25      # registry / if-chain median ratio ceiling


def _dispatch_fixture():
    """A warmed session plus the request stream both dispatchers replay."""
    from repro.core.session import Session
    from repro.schema import Schema

    schema = Schema(str(SCHEMA_ROOT))
    session = Session(schema.root, encoding=schema.encoding)
    for text in _sigma_texts():
        session.add(schema.dependency(text))
    probes = _cold_queries()[:4]
    requests = [("implies", {"session": "bench", "dependency": text})
                for text in probes]
    requests.append(("closure", {"session": "bench", "x": "R(A1)"}))
    for op, params in requests:      # warm the per-LHS closure cache
        from repro.core import commands
        commands.execute(commands.from_wire(op, params), session)
    return session, requests


def _if_chain_dispatch(session, op, params):
    """The pre-registry server hot path, kept as the baseline."""
    if op == "implies":
        text = params.get("dependency")
        if not isinstance(text, str):
            raise ValueError("'dependency' must be a string")
        dependency = session.dependency(text)
        dependency.validate(session.root)
        return {"implied": session.implies(dependency)}
    if op == "closure":
        text = params.get("x")
        if not isinstance(text, str):
            raise ValueError("'x' must be a string")
        from repro.attributes import unparse_abbreviated
        mask = session.encoding.encode(session.attribute(text))
        result = session.result_for_mask(mask)
        return {"closure": unparse_abbreviated(result.closure, session.root),
                "passes": result.passes}
    raise AssertionError(f"unhandled op {op!r}")


def test_registry_dispatch_within_noise_of_if_chain():
    from repro.core import commands

    session, requests = _dispatch_fixture()

    def via_if_chain():
        for _ in range(DISPATCH_BATCH // len(requests)):
            for op, params in requests:
                _if_chain_dispatch(session, op, params)

    def via_registry():
        for _ in range(DISPATCH_BATCH // len(requests)):
            for op, params in requests:
                commands.execute(commands.from_wire(op, params), session)

    best_old, best_new, median_diff = ab_compare(
        via_if_chain, via_registry, (), budget_s=2.0)
    ratio = best_new / max(best_old, 1e-12)

    row = {
        "batch": DISPATCH_BATCH,
        "if_chain_best_us_per_op": round(best_old / DISPATCH_BATCH * 1e6, 3),
        "registry_best_us_per_op": round(best_new / DISPATCH_BATCH * 1e6, 3),
        "median_diff_us_per_op": round(
            median_diff / DISPATCH_BATCH * 1e6, 3),
        "ratio": round(ratio, 3),
        "noise_ceiling": DISPATCH_NOISE,
    }
    report = {}
    if JSON_PATH.exists():
        report = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    report["dispatch_overhead"] = row
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"\nregistry dispatch overhead ({DISPATCH_BATCH} ops/sample): "
          f"if-chain {row['if_chain_best_us_per_op']:.3f}us/op, "
          f"registry {row['registry_best_us_per_op']:.3f}us/op "
          f"(ratio {ratio:.3f}, ceiling {DISPATCH_NOISE})")

    assert ratio <= DISPATCH_NOISE, row
