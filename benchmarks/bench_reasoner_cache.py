"""E19 — query throughput: stateless API vs the caching Reasoner.

Algorithm 5.1 answers *every* question about one left-hand side in a
single run; applications firing many queries against a fixed Σ should
pay for that run once.  This experiment measures a 60-query workload
(the kind a 4NF checker or an interactive design session produces)
through the stateless `implies` and through the memoising `Reasoner`.

Expected shape: the Reasoner wins by roughly the ratio of queries to
distinct left-hand sides.

Run:  pytest benchmarks/bench_reasoner_cache.py --benchmark-only
"""

import pytest

from repro import Schema
from repro.core import implies
from repro.reasoner import Reasoner


@pytest.fixture(scope="module")
def workload():
    schema = Schema(
        "Gene(Acc, Exons[Exon(Start, End)], Expr[Meas(Tissue, Level)], "
        "Curation(Src, Conf))"
    )
    sigma = schema.dependencies(
        "Gene(Acc) -> Gene(Exons[Exon(Start, End)])",
        "Gene(Acc) ->> Gene(Expr[Meas(Level)])",
        "Gene(Curation(Src)) -> Gene(Curation(Conf))",
    )
    lhss = ["Gene(Acc)", "Gene(Curation(Src))", "Gene(Exons[λ])"]
    rhss = [
        "Gene(Exons[λ])",
        "Gene(Expr[λ])",
        "Gene(Expr[Meas(Level)])",
        "Gene(Curation(Conf))",
        "Gene(Acc, Curation(Src, Conf))",
    ]
    queries = []
    for lhs in lhss:
        for rhs in rhss:
            queries.append(f"{lhs} -> {rhs}")
            queries.append(f"{lhs} ->> {rhs}")
            queries.append(f"{lhs} ->> {lhs}")
            queries.append(f"{lhs} -> {lhs}")
    return schema, sigma, queries  # 60 queries over 3 distinct LHSs


def test_stateless_queries(benchmark, workload):
    schema, sigma, queries = workload
    parsed = [schema.dependency(text) for text in queries]

    def run():
        return sum(
            implies(sigma, dependency, encoding=schema.encoding)
            for dependency in parsed
        )

    answered = benchmark(run)
    assert 0 < answered < len(parsed)


def test_reasoner_cached_queries(benchmark, workload):
    schema, sigma, queries = workload
    parsed = [schema.dependency(text) for text in queries]

    def run():
        reasoner = Reasoner(schema, sigma)  # cold cache every round
        return sum(reasoner.implies(dependency) for dependency in parsed)

    answered = benchmark(run)
    assert 0 < answered < len(parsed)


def test_agreement_between_apis(benchmark, workload):
    schema, sigma, queries = workload
    parsed = [schema.dependency(text) for text in queries]
    reasoner = Reasoner(schema, sigma)

    def verdicts():
        return [
            (
                reasoner.implies(dependency),
                implies(sigma, dependency, encoding=schema.encoding),
            )
            for dependency in parsed
        ]

    pairs = benchmark.pedantic(verdicts, rounds=1, iterations=1)
    assert all(cached == stateless for cached, stateless in pairs)
