"""E20 (timing face) — the MVD chase at growing repair sizes.

Measures closing partially-transmitted pub-crawl feeds: per person, one
of the four combination tuples is dropped, so the chase regenerates
n_people exchange tuples.  Expected shape: near-linear in the number of
groups (each group's closure is a constant-size cross product).

Run:  pytest benchmarks/bench_chase.py --benchmark-only
"""

import pytest

from repro.chase import chase
from repro.workloads import pubcrawl_workload

SIZES = (25, 100, 400)


def _broken_feed(n_people, seed=31):
    workload = pubcrawl_workload(n_people, seed=seed)
    return workload.root, workload.with_dropped_combinations(), workload.sigma


@pytest.mark.parametrize("n_people", SIZES)
def test_chase_repair(benchmark, n_people):
    root, broken, sigma = _broken_feed(n_people)
    result = benchmark(chase, root, broken, sigma)
    # Roughly one regenerated combination per person (collision-shrunk
    # groups may be unrepairable-by-excess and regenerate fewer).
    assert len(result.added) >= n_people * 0.8
    assert result.rounds <= 3
