"""E21 — satisfaction checking at data scale (Definition 4.1 in practice).

The membership algorithm reasons about *schemas*; a library user also
checks *data*. This experiment measures the Definition 4.1 checkers on
growing Σ-satisfying instances of the Pubcrawl shape:

* FD checking is one hash pass — linear in the instance;
* MVD checking hashes each X-group's projection pairs — linear as well
  (the cross-product *count* check, not materialisation);
* the corrected Theorem 4.4 oracle materialises the generalised join —
  still near-linear here but with a visibly larger constant.

The shape assertion: doubling the instance should roughly double each
checker's cost (fitted log-log slope ≈ 1, allowed up to 1.6 for hashing
noise).

Run:  pytest benchmarks/bench_satisfaction_scaling.py --benchmark-only
"""

import time

import pytest

from repro.dependencies import (
    parse_dependency,
    satisfies_fd,
    satisfies_mvd,
    satisfies_mvd_via_join,
)
from repro.workloads import pubcrawl_workload

SIZES = (100, 400, 1600)


def _workload(n_people, seed=23):
    """A Σ-satisfying pub-crawl instance with ~4 tuples per person."""
    workload = pubcrawl_workload(n_people, seed=seed)
    mvd = workload.sigma.mvds()[0]
    fd = parse_dependency(
        "Pubcrawl(Person) -> Pubcrawl(Visit[λ])", workload.root
    )
    return workload.root, workload.instance, fd, mvd


@pytest.mark.parametrize("n_people", SIZES)
def test_fd_checking(benchmark, n_people):
    root, instance, fd, _ = _workload(n_people)
    benchmark.extra_info["tuples"] = len(instance)
    assert benchmark(satisfies_fd, root, instance, fd)


@pytest.mark.parametrize("n_people", SIZES)
def test_mvd_checking(benchmark, n_people):
    root, instance, _, mvd = _workload(n_people)
    benchmark.extra_info["tuples"] = len(instance)
    assert benchmark(satisfies_mvd, root, instance, mvd)


@pytest.mark.parametrize("n_people", SIZES)
def test_corrected_lossless_join_oracle(benchmark, n_people):
    root, instance, _, mvd = _workload(n_people)
    assert benchmark(satisfies_mvd_via_join, root, instance, mvd)


def test_linearity_shape(benchmark):
    import numpy as np

    def sweep():
        rows = []
        for n_people in SIZES:
            root, instance, fd, mvd = _workload(n_people)
            start = time.perf_counter()
            satisfies_fd(root, instance, fd)
            fd_time = time.perf_counter() - start
            start = time.perf_counter()
            satisfies_mvd(root, instance, mvd)
            mvd_time = time.perf_counter() - start
            rows.append((len(instance), fd_time, mvd_time))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE21  satisfaction checking vs instance size")
    for tuples, fd_time, mvd_time in rows:
        print(
            f"  {tuples:6d} tuples:  FD {fd_time * 1e3:7.2f} ms   "
            f"MVD {mvd_time * 1e3:7.2f} ms"
        )
    sizes = [row[0] for row in rows]
    for label, index in (("FD", 1), ("MVD", 2)):
        slope = float(np.polyfit(
            np.log(sizes), np.log([max(row[index], 1e-9) for row in rows]), 1
        )[0])
        print(f"  {label} fitted log-log slope = {slope:.2f} (expected ≈ 1)")
        assert slope <= 1.6, (label, slope)
