"""Observability overhead: the disabled path must be (nearly) free.

The obs layer instruments every worklist-kernel run through
:func:`repro.core.closure.closure_of_masks_instrumented`, so the cost
of having the layer *present but disabled* — the default for every
caller that never installs an observer — is the difference between
that entry point and the raw kernel
:func:`repro.core.engine.closure_of_masks_fast`.  This benchmark pins
it down on the E7 adversarial FD chain (`_workloads.chain_problem`),
the same workload the throughput benchmark uses, and asserts the
acceptance bar: **<3% wall-clock overhead at scale 32 with sinks
disabled**.

For context the enabled paths are measured too (in-memory sink, JSONL
file sink); those are *not* under the 3% bar — turning tracing on
buys per-run spans and is allowed to cost what it costs.  The
JSONL-sink measurement doubles as the trace artifact: the file is
written to ``BENCH_obs_overhead_trace.jsonl`` at the repository root,
round-trip-validated with :func:`repro.obs.validate_trace`, and
uploaded by the CI benchmark-smoke job.

Results land in ``BENCH_obs_overhead.json``.

Run:  pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.closure import closure_of_masks_instrumented
from repro.core.engine import closure_of_masks_fast
from repro.obs import InMemorySink, JsonlSink, Observer, install, validate_trace

from _timing import ab_compare, best_of
from _workloads import chain_problem

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_obs_overhead.json"
TRACE_PATH = ROOT / "BENCH_obs_overhead_trace.jsonl"

SCALES = (16, 32)
HEADLINE_SCALE = 32
OVERHEAD_BUDGET_PCT = 3.0


def _measure(scale: int) -> dict:
    encoding, x_mask, fd_masks, mvd_masks = chain_problem(scale)

    # Same fixpoint through every path (and warm the memo caches so the
    # comparison isolates the wrapper, not cold-cache noise).
    raw = closure_of_masks_fast(encoding, x_mask, fd_masks, mvd_masks)
    via_obs = closure_of_masks_instrumented(encoding, x_mask, fd_masks, mvd_masks)
    assert raw == via_obs, scale

    raw_s, disabled_s, median_diff = ab_compare(
        closure_of_masks_fast, closure_of_masks_instrumented,
        (encoding, x_mask, fd_masks, mvd_masks),
    )

    with install(Observer([InMemorySink()])):
        memory_s = best_of(closure_of_masks_instrumented, encoding, x_mask,
                           fd_masks, mvd_masks)

    return {
        "scale": scale,
        "size": encoding.size,
        "sigma": len(fd_masks) + len(mvd_masks),
        "raw_kernel_s": raw_s,
        "obs_disabled_s": disabled_s,
        "obs_memory_sink_s": memory_s,
        # Headline: median of the paired per-round differences, which is
        # robust against the asymmetric scheduler spikes that can skew
        # independent minima by a few percent on shared machines.
        "overhead_disabled_pct": (median_diff / raw_s) * 100.0,
        "overhead_memory_sink_pct": (memory_s / raw_s - 1.0) * 100.0,
    }


def _write_trace_artifact() -> dict:
    """One traced headline-scale run, streamed to JSONL and validated."""
    encoding, x_mask, fd_masks, mvd_masks = chain_problem(HEADLINE_SCALE)
    start = time.perf_counter()
    with install(Observer([JsonlSink(str(TRACE_PATH))])):
        closure_of_masks_instrumented(encoding, x_mask, fd_masks, mvd_masks)
    jsonl_s = time.perf_counter() - start
    counts = validate_trace(str(TRACE_PATH))
    return {"path": TRACE_PATH.name, "jsonl_run_s": jsonl_s, **counts}


def test_obs_overhead_report(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure(scale) for scale in SCALES], rounds=1, iterations=1
    )
    trace = _write_trace_artifact()

    report = {
        "workload": "E7 adversarial FD chain (chain_problem)",
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        "rows": rows,
        "trace_artifact": trace,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print("\nObservability overhead on the E7 chain (best-of-N):")
    for row in rows:
        print(f"  scale={row['scale']:3d} |N|={row['size']:4d} "
              f"raw={row['raw_kernel_s'] * 1e3:7.3f}ms "
              f"disabled={row['obs_disabled_s'] * 1e3:7.3f}ms "
              f"({row['overhead_disabled_pct']:+5.2f}%) "
              f"memory-sink={row['obs_memory_sink_s'] * 1e3:7.3f}ms "
              f"({row['overhead_memory_sink_pct']:+5.2f}%)")
    print(f"trace artifact: {trace['path']} "
          f"({trace['spans']} spans, {trace['metrics']} metrics records)")
    print(f"report written to {JSON_PATH.name}")

    headline = next(r for r in rows if r["scale"] == HEADLINE_SCALE)
    assert headline["overhead_disabled_pct"] < OVERHEAD_BUDGET_PCT, headline
    assert trace["spans"] >= 1
