"""E9 — relational parity: Algorithm 5.1 restricted to flat schemas vs
the independent classical Beeri implementation.

The paper presents its algorithm as "a natural extension of Beeri's
algorithm".  On record-of-base schemas the two must produce identical
closures and dependency bases (asserted here on every run), and the
nested machinery should cost only a modest constant factor over the
specialised set-based code.

Run:  pytest benchmarks/bench_relational_parity.py --benchmark-only
"""

import random
import time

import pytest

from repro.attributes import BasisEncoding
from repro.core import compute_closure
from repro.relational import (
    RelFD,
    RelMVD,
    RelationSchema,
    relational_closure,
    relational_dependency_basis,
    sigma_to_nested,
    subattribute_to_subset,
    subset_to_subattribute,
)

WIDTHS = (6, 10, 14)


def _workload(width, seed=13, n_deps=6):
    rng = random.Random(seed)
    names = [f"A{i}" for i in range(width)]
    schema = RelationSchema(names)
    sigma_rel = []
    for _ in range(n_deps):
        lhs = set(rng.sample(names, rng.randint(1, max(1, width // 3))))
        rhs = set(rng.sample(names, rng.randint(1, max(1, width // 2))))
        maker = RelFD if rng.random() < 0.5 else RelMVD
        sigma_rel.append(maker(lhs, rhs))
    x = set(rng.sample(names, 2))
    return schema, sigma_rel, x


@pytest.mark.parametrize("width", WIDTHS)
def test_classical_beeri(benchmark, width):
    schema, sigma_rel, x = _workload(width)

    def run():
        return (
            relational_closure(schema, x, sigma_rel),
            relational_dependency_basis(schema, x, sigma_rel),
        )

    closure, basis = benchmark(run)
    assert x <= closure


@pytest.mark.parametrize("width", WIDTHS)
def test_nested_algorithm_on_flat_schema(benchmark, width):
    schema, sigma_rel, x = _workload(width)
    sigma_nested = sigma_to_nested(schema, sigma_rel)
    encoding = BasisEncoding(sigma_nested.root)
    x_attr = subset_to_subattribute(schema, x)

    result = benchmark(compute_closure, encoding, x_attr, sigma_nested)

    # Parity assertions: identical closure and dependency basis.
    assert subattribute_to_subset(schema, result.closure) == relational_closure(
        schema, x, sigma_rel
    )
    nested_basis = {
        subattribute_to_subset(schema, member)
        for member in result.dependency_basis()
    }
    assert nested_basis == set(relational_dependency_basis(schema, x, sigma_rel))


def test_overhead_factor_shape(benchmark):
    """Averaged over several random workloads per width: the ratio is a
    bounded constant, not a growing function of the width (individual
    workloads are noisy — a lucky dependency set can make either side's
    fixpoint trivially short)."""

    def sweep():
        rows = []
        for width in WIDTHS:
            classical_total = 0.0
            nested_total = 0.0
            for seed in (13, 29, 47, 61, 83):
                schema, sigma_rel, x = _workload(width, seed=seed)
                sigma_nested = sigma_to_nested(schema, sigma_rel)
                encoding = BasisEncoding(sigma_nested.root)
                x_attr = subset_to_subattribute(schema, x)

                start = time.perf_counter()
                for _ in range(20):
                    relational_closure(schema, x, sigma_rel)
                    relational_dependency_basis(schema, x, sigma_rel)
                classical_total += (time.perf_counter() - start) / 20

                start = time.perf_counter()
                for _ in range(20):
                    compute_closure(encoding, x_attr, sigma_nested)
                nested_total += (time.perf_counter() - start) / 20
            rows.append((width, classical_total / 5, nested_total / 5))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE9  classical Beeri vs nested algorithm on flat schemas")
    for width, classical, nested in rows:
        print(
            f"  width {width:2d}:  Beeri {classical * 1e6:8.1f} µs   "
            f"nested {nested * 1e6:8.1f} µs   factor {nested / classical:5.2f}x"
        )
    # Shape: same asymptotics — a bounded constant factor (compare the
    # >10^4x gaps of the naive baseline in E8), not growing with width.
    factors = [nested / classical for _, classical, nested in rows]
    assert max(factors) < 25, f"nested overhead exploded: {factors}"
    assert factors[-1] < 3 * max(factors[0], 1.0), "overhead grows with width"
