"""E6 (timing face) — the Section 4.2 witness construction.

Times building the two-tuple block-combination witness — the semantic
completeness oracle — including its built-in Σ-verification, across the
example schemas.  The instance has ``2^k`` tuples for ``k`` free blocks,
so cost is dominated by the verification pass.

Run:  pytest benchmarks/bench_witness_construction.py --benchmark-only
"""

import pytest

from repro import Schema
from repro.witness import build_witness


CASES = {
    "pubcrawl": (
        "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
        ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"],
        "Pubcrawl(Person)",
    ),
    "genome": (
        "Gene(Acc, Exons[Exon(Start, End)], Expr[Meas(Tissue, Level)], "
        "Curation(Src, Conf))",
        [
            "Gene(Acc) -> Gene(Exons[Exon(Start, End)])",
            "Gene(Acc) ->> Gene(Expr[Meas(Level)])",
        ],
        "Gene(Acc)",
    ),
    "independent_blocks": (
        "R(A, L1[B], L2[C], L3[D], E)",
        ["R(A) ->> R(L1[B])", "R(A) ->> R(L2[C])", "R(A) ->> R(L3[D])"],
        "R(A)",
    ),
}


@pytest.mark.parametrize("name", list(CASES))
def test_witness_with_verification(benchmark, name):
    root_text, sigma_texts, x_text = CASES[name]
    schema = Schema(root_text)
    sigma = schema.dependencies(*sigma_texts)
    x = schema.attribute(x_text)

    witness = benchmark(
        build_witness, sigma, x, encoding=schema.encoding, verify=True
    )
    assert len(witness.instance) == 1 << len(witness.free_blocks)


@pytest.mark.parametrize("name", list(CASES))
def test_witness_without_verification(benchmark, name):
    root_text, sigma_texts, x_text = CASES[name]
    schema = Schema(root_text)
    sigma = schema.dependencies(*sigma_texts)
    x = schema.attribute(x_text)

    witness = benchmark(
        build_witness, sigma, x, encoding=schema.encoding, verify=False
    )
    assert witness.instance
