"""Shared wall-clock measurement helpers for the benchmark suite.

Every benchmark that hand-rolls ``time.perf_counter()`` loops drifts
toward its own statistics; these helpers keep the suite on two agreed
conventions:

* **best-of / median-of** for single functions — ``best_of`` amortises
  an adaptive round count into a fixed wall budget and reports the
  minimum (the classic "fastest observed = least noise" estimator),
  while ``median_of`` is the robust choice for sub-microsecond
  primitives where the minimum underestimates steady-state cost.
* **paired comparison** for A/B claims — alternating rounds cancel the
  drift a sequential comparison is exposed to (cache warm-up,
  frequency scaling, noisy neighbours), and the *median of per-round
  differences/ratios* resists the asymmetric scheduler spikes that can
  skew independent minima by a few percent on shared machines.
"""

from __future__ import annotations

import time
from statistics import median


def time_once(function, *args) -> float:
    """One wall-clock timing of ``function(*args)`` in seconds."""
    start = time.perf_counter()
    function(*args)
    return time.perf_counter() - start


def best_of(function, *args, budget_s: float = 0.8) -> float:
    """Best-of-N wall time with an adaptive round count.

    The first (warm-up) call sizes the round count so the whole
    measurement stays near ``budget_s`` seconds, clamped to [5, 400]
    rounds.
    """
    first = time_once(function, *args)
    rounds = max(5, min(400, int(budget_s / max(first, 1e-9))))
    best = first
    for _ in range(rounds):
        best = min(best, time_once(function, *args))
    return best


def median_of(function, *args, repeats: int = 200) -> float:
    """Median wall time over a fixed number of repeats.

    Preferred over :func:`best_of` for primitives so fast that the
    minimum reflects timer granularity rather than the operation.
    """
    samples = sorted(time_once(function, *args) for _ in range(repeats))
    return samples[len(samples) // 2]


def ab_compare(fn_a, fn_b, args,
               budget_s: float = 1.5) -> tuple[float, float, float]:
    """Interleaved paired comparison of two equivalent functions.

    Returns ``(best_a, best_b, median_diff)`` where ``median_diff`` is
    median(t_b - t_a) over the paired rounds — the statistic to quote
    when claiming "B costs X% over A".
    """
    first = time_once(fn_a, *args)
    rounds = max(10, min(400, int(budget_s / (2 * max(first, 1e-9)))))
    times_a: list[float] = []
    times_b: list[float] = []
    for _ in range(rounds):
        times_a.append(time_once(fn_a, *args))
        times_b.append(time_once(fn_b, *args))
    diffs = [b - a for a, b in zip(times_a, times_b)]
    return min(times_a), min(times_b), median(diffs)


def paired_speedup(fn_slow, fn_fast, args=(), *,
                   rounds: int = 7) -> tuple[float, float, float]:
    """Interleaved paired speedup claim: how many times faster is B?

    Runs ``fn_slow`` and ``fn_fast`` alternately for ``rounds`` paired
    rounds and returns ``(median_slow, median_fast, median_ratio)``
    where ``median_ratio`` is the median of the per-round
    ``t_slow / t_fast`` ratios — a paired statistic, so a background
    spike that hits one round inflates one ratio, not the headline.
    """
    ratios: list[float] = []
    times_slow: list[float] = []
    times_fast: list[float] = []
    for _ in range(rounds):
        slow = time_once(fn_slow, *args)
        fast = time_once(fn_fast, *args)
        times_slow.append(slow)
        times_fast.append(fast)
        ratios.append(slow / max(fast, 1e-12))
    return median(times_slow), median(times_fast), median(ratios)
