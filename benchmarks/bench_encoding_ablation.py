"""E22 — ablation of the two design choices DESIGN.md calls out.

The library deliberately implements its algebra twice; this experiment
quantifies what each choice buys:

1. **Bitmask encoding vs structural recursion** for Algorithm 5.1 —
   `compute_closure` (Birkhoff masks) against `reference_closure`
   (Definition 3.8 recursion + Definition 4.11 possession).  Identical
   outputs are asserted; the measured gap is why the structural version
   is the *test oracle* and the encoded one the engine.
2. **Structural basis-poset construction vs pairwise ≤ comparison** for
   building a `BasisEncoding` — the O(Σ ideal sizes) recursion against
   the quadratic all-pairs `is_subattribute` sweep it replaced.

Run:  pytest benchmarks/bench_encoding_ablation.py --benchmark-only
"""

import pytest

from repro.attributes import BasisEncoding, is_subattribute
from repro.attributes.basis import basis, basis_poset
from repro.core import compute_closure, reference_closure

from _timing import median_of, time_once
from _workloads import sized_sigma

ALGORITHM_SCALES = (1, 2, 3)          # |N| = 4, 8, 12 (structural is slow)
CONSTRUCTION_SCALES = (8, 24, 64)     # |N| = 32, 96, 256


def _pairwise_poset(root):
    """The quadratic construction the structural one replaced."""
    elements = basis(root)
    below = [0] * len(elements)
    for i, lower in enumerate(elements):
        for j, upper in enumerate(elements):
            if is_subattribute(lower, upper):
                below[j] |= 1 << i
    return elements, tuple(below)


@pytest.mark.parametrize("scale", ALGORITHM_SCALES)
def test_algorithm_bitmask(benchmark, scale):
    encoding, sigma, x = sized_sigma(scale, 3)
    result = benchmark(compute_closure, encoding, x, sigma)
    assert result.passes >= 1


@pytest.mark.parametrize("scale", ALGORITHM_SCALES)
def test_algorithm_structural_reference(benchmark, scale):
    encoding, sigma, x = sized_sigma(scale, 3)

    closure_attr, blocks = benchmark.pedantic(
        reference_closure, args=(encoding.root, x, sigma),
        rounds=3, iterations=1,
    )
    # Ablation sanity: both implementations agree.
    fast = compute_closure(encoding, x, sigma)
    assert closure_attr == fast.closure
    assert blocks == frozenset(encoding.decode(m) for m in fast.blocks)


@pytest.mark.parametrize("scale", CONSTRUCTION_SCALES)
def test_construction_structural_poset(benchmark, scale):
    encoding, _, _ = sized_sigma(scale, 0)  # warm caches comparable
    root = encoding.root

    def build():
        basis_poset.__globals__["_POSET_CACHE"].clear()
        return BasisEncoding(root)

    built = benchmark(build)
    assert built.size == scale * 4


@pytest.mark.parametrize("scale", CONSTRUCTION_SCALES)
def test_construction_pairwise(benchmark, scale):
    encoding, _, _ = sized_sigma(scale, 0)
    elements, below = benchmark.pedantic(
        _pairwise_poset, args=(encoding.root,), rounds=3, iterations=1
    )
    # Ablation sanity: identical poset.
    assert below == encoding.below


def test_speedup_summary(benchmark):
    def sweep():
        rows = []
        for scale in ALGORITHM_SCALES:
            encoding, sigma, x = sized_sigma(scale, 3)
            fast = median_of(compute_closure, encoding, x, sigma, repeats=10)
            slow = time_once(reference_closure, encoding.root, x, sigma)
            rows.append(("algorithm", encoding.size, fast, slow))
        for scale in CONSTRUCTION_SCALES:
            encoding, _, _ = sized_sigma(scale, 0)
            basis_poset.__globals__["_POSET_CACHE"].clear()
            fast = time_once(BasisEncoding, encoding.root)
            slow = time_once(_pairwise_poset, encoding.root)
            rows.append(("construction", encoding.size, fast, slow))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE22  design-choice ablations (fast vs replaced alternative)")
    for kind, size, fast, slow in rows:
        print(
            f"  {kind:12} |N|={size:3d}:  kept {fast * 1e3:9.3f} ms   "
            f"alternative {slow * 1e3:9.3f} ms   speedup {slow / fast:7.1f}x"
        )
    # The kept designs must win, increasingly with size.
    algorithm_speedups = [s / f for k, _, f, s in rows if k == "algorithm"]
    construction_speedups = [s / f for k, _, f, s in rows if k == "construction"]
    assert algorithm_speedups[-1] > 10
    assert construction_speedups[-1] > 3
