"""E1 — Figure 1: the Brouwerian algebra of ``J[K(A, L[M(B, C)])]``.

Regenerates the figure's lattice (all 11 elements, their Hasse diagram)
and times the full construction plus an exhaustive verification of the
Brouwerian adjunction on it.  The assertions pin the element set to the
paper's; the timing shows figure-scale lattices are interactive-speed.

Run:  pytest benchmarks/bench_fig1_brouwerian_algebra.py --benchmark-only
"""

from repro.attributes import (
    is_subattribute,
    join,
    pseudo_difference,
    subattributes,
    unparse_abbreviated,
)
from repro.viz import ascii_levels, hasse_graph
from repro.workloads import FIGURE_1_ELEMENTS, figure_1_root


def build_lattice():
    root = figure_1_root()
    elements = list(subattributes(root))
    labels = {unparse_abbreviated(element, root) for element in elements}
    return root, elements, labels


def test_fig1_enumerate_lattice(benchmark):
    root, elements, labels = benchmark(build_lattice)
    assert labels == set(FIGURE_1_ELEMENTS)
    assert len(elements) == 11


def test_fig1_verify_brouwerian_adjunction(benchmark):
    root, elements, _ = build_lattice()

    def verify():
        checks = 0
        for a in elements:
            for b in elements:
                difference = pseudo_difference(root, a, b)
                for c in elements:
                    assert is_subattribute(difference, c) == is_subattribute(
                        a, join(root, b, c)
                    )
                    checks += 1
        return checks

    checks = benchmark(verify)
    assert checks == 11 ** 3


def test_fig1_hasse_diagram(benchmark):
    graph = benchmark(hasse_graph, figure_1_root())
    assert graph.number_of_nodes() == 11
    # The rendering has the paper's six levels (λ at the bottom).
    assert len(ascii_levels(graph).splitlines()) == 6
