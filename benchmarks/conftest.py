"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one experiment of EXPERIMENTS.md
(IDs E1-E15).  Workloads are seeded and deterministic so the reported
numbers are reproducible run to run; builders live in ``_workloads.py``.
"""

from __future__ import annotations

import pytest

from repro.attributes import BasisEncoding


@pytest.fixture(scope="session")
def pubcrawl_case():
    from repro.workloads import pubcrawl

    return pubcrawl()


@pytest.fixture(scope="session")
def example51_case():
    from repro.workloads import example_5_1

    fixture = example_5_1()
    return fixture, BasisEncoding(fixture.root)
