"""E7 — Theorem 6.4: the membership problem is ``O(|N|⁴ · |Σ|)``.

Two sweeps over the paper-shaped ``mixed_family`` workload (flat fields
alternating with list-of-record fields, ``|N| = 4·scale``):

* runtime vs ``|N|`` at fixed ``|Σ|`` — the fitted log–log slope must
  stay at or below the theorem's exponent 4 (in practice far below: the
  bound is a coarse worst case, and the paper itself calls its estimate
  "a rough estimate of the upper bound");
* runtime vs ``|Σ|`` at fixed ``|N|`` — the slope must be about linear.

The parametrised benchmarks produce the per-size rows (the "table"); the
two ``*_shape`` tests do their own sweep, print it, and assert the fitted
exponents, which is the reproduction's pass/fail criterion.

Run:  pytest benchmarks/bench_theorem64_scaling.py --benchmark-only
"""

import time

import pytest

from repro.core.closure import closure_of_masks

from _workloads import chain_problem, sized_problem

SCALES = (2, 4, 8, 16, 32)      # |N| = 8, 16, 32, 64, 128
SIGMA_SIZES = (2, 4, 8, 16)
FIXED_SIGMA = 6
FIXED_SCALE = 8                 # |N| = 32


def run_closure(problem):
    encoding, x_mask, fd_masks, mvd_masks = problem
    return closure_of_masks(encoding, x_mask, fd_masks, mvd_masks)


@pytest.mark.parametrize("scale", SCALES)
def test_scaling_in_n(benchmark, scale):
    problem = sized_problem(scale, FIXED_SIGMA)
    benchmark.extra_info["basis_size"] = problem[0].size
    closure_mask, blocks, passes = benchmark(run_closure, problem)
    assert passes >= 1
    assert blocks


@pytest.mark.parametrize("sigma_size", SIGMA_SIZES)
def test_scaling_in_sigma(benchmark, sigma_size):
    problem = sized_problem(FIXED_SCALE, sigma_size)
    benchmark.extra_info["sigma_size"] = sigma_size
    closure_mask, blocks, passes = benchmark(run_closure, problem)
    assert passes >= 1


SWEEP_SEEDS = (7, 21, 43, 65, 87)


def _median_runtime(problem, repeats=9):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_closure(problem)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def _mean_over_seeds(scale, sigma_size):
    """Average the median runtime over several random Σ draws — a single
    seed's Σ can be atypically easy (few REPEAT passes) or hard, which
    makes one-seed sweeps non-monotonic."""
    total = 0.0
    for seed in SWEEP_SEEDS:
        total += _median_runtime(sized_problem(scale, sigma_size, seed=seed))
    return total / len(SWEEP_SEEDS)


def _fit_loglog_slope(xs, ys):
    import numpy as np

    return float(np.polyfit(np.log(xs), np.log(ys), 1)[0])


def test_polynomial_shape_in_n(benchmark):
    """Deterministic worst case: a reversed FD chain covering the whole
    schema, |Σ| = |N|/4, forcing ~|Σ| REPEAT passes.  The theorem's
    envelope for this sweep is O(|N|⁴·|Σ|) = O(|N|⁵); the measured
    exponent must stay under it (and in practice sits around 2–3)."""

    def sweep():
        rows = []
        for scale in SCALES:
            problem = chain_problem(scale)
            rows.append((problem[0].size, _median_runtime(problem)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slope = _fit_loglog_slope([n for n, _ in rows], [t for _, t in rows])
    print("\nE7a  worst-case chain: runtime vs |N|  (|Σ| = |N|/4)")
    for n, t in rows:
        print(f"  |N| = {n:3d}   median = {t * 1e6:9.1f} µs")
    print(f"  fitted log-log slope = {slope:.2f}  (theorem envelope: 5)")
    benchmark.extra_info["slope"] = round(slope, 3)
    assert 0.8 <= slope <= 5.0, f"growth outside the polynomial envelope: {slope:.2f}"

    # Sanity: the chain really does drive the pass count with the size.
    encoding, x_mask, fd_masks, mvd_masks = chain_problem(SCALES[-1])
    _, _, passes = closure_of_masks(encoding, x_mask, fd_masks, mvd_masks)
    assert passes >= SCALES[-1] // 2


def test_linear_shape_in_sigma(benchmark):
    def sweep():
        rows = []
        for sigma_size in SIGMA_SIZES:
            rows.append((sigma_size, _mean_over_seeds(FIXED_SCALE, sigma_size)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slope = _fit_loglog_slope([s for s, _ in rows], [t for _, t in rows])
    print("\nE7b  runtime vs |Σ|  (|N| = %d)" % (FIXED_SCALE * 4))
    for s, t in rows:
        print(f"  |Σ| = {s:3d}   median = {t * 1e6:9.1f} µs")
    print(f"  fitted log-log slope = {slope:.2f}")
    print("  (the bound is |Σ| per pass; a richer Σ also triggers more")
    print("   REPEAT passes — at most |N| of them — so slopes up to ~2")
    print("   before saturation are within the theorem's envelope)")
    benchmark.extra_info["slope"] = round(slope, 3)
    assert slope <= 2.5, f"growth in |Σ| beyond the theorem envelope: {slope:.2f}"
