"""E2 — Figure 2 / Example 4.12: basis and possession machinery.

Regenerates the subattribute basis of ``K[L(M[N(A, B)], C)]`` with its
maximal/non-maximal split, verifies the possession claims of Example
4.12, and times the basis poset construction the algorithm's Ū step
relies on.

Run:  pytest benchmarks/bench_fig2_subattribute_basis.py --benchmark-only
"""

from repro.attributes import (
    BasisEncoding,
    basis,
    is_possessed_by,
    maximal_basis,
    unparse_abbreviated,
)
from repro.viz import basis_graph
from repro.workloads import example_4_12


def test_fig2_basis_construction(benchmark):
    root, _, _, _ = example_4_12()

    def build():
        return basis(root), maximal_basis(root)

    all_basis, maximal = benchmark(build)
    shown = {unparse_abbreviated(b, root) for b in all_basis}
    assert shown == {
        "K[λ]",
        "K[L(M[λ])]",
        "K[L(M[N(A)])]",
        "K[L(M[N(B)])]",
        "K[L(C)]",
    }
    assert len(maximal) == 3


def test_fig2_possession_queries(benchmark):
    root, x, possessed, not_possessed = example_4_12()

    def query():
        return (
            is_possessed_by(root, possessed, x),
            is_possessed_by(root, not_possessed, x),
        )

    yes, no = benchmark(query)
    assert yes and not no


def test_fig2_encoding_with_possession_masks(benchmark):
    root, x, _, _ = example_4_12()

    def build():
        encoding = BasisEncoding(root)
        return encoding, encoding.possessed(encoding.encode(x))

    encoding, possessed_mask = benchmark(build)
    shown = {
        unparse_abbreviated(encoding.basis[i], root)
        for i in range(encoding.size)
        if possessed_mask >> i & 1
    }
    # X possesses the inner list-length and both leaf attributes, but not
    # the outer length K[λ] (shared with the complement K[L(C)]).
    assert shown == {"K[L(M[λ])]", "K[L(M[N(A)])]", "K[L(M[N(B)])]"}


def test_fig2_basis_hasse_graph(benchmark):
    root, _, _, _ = example_4_12()
    graph = benchmark(basis_graph, root)
    assert graph.number_of_nodes() == 5
    maximal_count = sum(
        1 for _, data in graph.nodes(data=True) if data["maximal"]
    )
    assert maximal_count == 3
