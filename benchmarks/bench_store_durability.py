"""Cost of durability: WAL append overhead, recovery time, compaction.

Three questions about :mod:`repro.store`, answered in-process (no
sockets — the store rides the server's edit path, so the honest
baseline is that same edit path without a store):

* **What does the WAL cost per acknowledged edit?**  The server-side
  request stream (``commands.execute`` + generation bump, exactly what
  ``ReasoningServer._execute`` runs) is timed with and without a
  ``store.append`` per mutation, in interleaved paired rounds, for
  every fsync policy.  The workload is the deployment shape the WAL
  actually rides: a session over the paper's nested running example
  with a warm query cache, each round interleaving mutations (add +
  provenance-exact retract, WAL-logged) with implies probes (reads,
  never logged) at a 2:3 ratio.  The acceptance target is the
  *interval* policy (the default): median paired overhead ≤ 10%.
  ``always`` pays a real fsync per edit and is recorded, not
  asserted.

* **How does recovery scale with WAL length?**  Command-sourced
  recovery replays every record through the registry, so restart time
  is linear in the tail length; timed at three WAL sizes.

* **What does compaction buy at restart?**  The longest WAL is
  compacted (snapshot + fresh segment) and recovery is re-timed: the
  replay disappears, the snapshot load remains.

``BENCH_store_durability.json`` at the repository root records all
three.

Run:  pytest benchmarks/bench_store_durability.py -s
"""

from __future__ import annotations

import gc
import json
import shutil
import tempfile
import time
from pathlib import Path
from statistics import median

from repro.core import commands
from repro.serve.server import SessionManager
from repro.store import SessionStore

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_store_durability.json"

SCHEMA = "Pubcrawl(Person, Day, Visit[Stop(Drink(Beer, Pub), Snack(Food))])"
BASE_SIGMA = [
    "Pubcrawl(Person) ->> Pubcrawl(Visit[Stop(Drink(Pub))])",
    "Pubcrawl(Day) -> Pubcrawl(Person)",
    "Pubcrawl(Person) -> Pubcrawl(Visit[Stop(Snack(Food))])",
]
TOGGLE = "Pubcrawl(Person, Day) -> Pubcrawl(Visit[Stop(Drink(Beer))])"
PROBES = [
    "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
    "Pubcrawl(Visit[λ]) ->> Pubcrawl(Day)",
    "λ -> Pubcrawl(Visit[λ])",
]

EDIT_PAIRS = 150          # add+retract pairs per timed round
PAIRED_ROUNDS = 9         # interleaved off/on rounds per policy
OVERHEAD_TARGET_PCT = 10.0   # the documented goal for --fsync interval
OVERHEAD_ASSERT_PCT = 20.0   # the noise-tolerant hard bound
RECOVERY_SIZES = (100, 1000, 4000)   # WAL lengths for the replay curve
RECOVERY_REPEATS = 3


def _edit(manager, store, op, dependency):
    """One acknowledged mutation, the way the server runs it."""
    command = commands.from_wire(op, {"session": "bench",
                                      "dependency": dependency})
    managed = manager.peek("bench")
    outcome = commands.execute(command, managed.session)
    if outcome.mutated:
        managed.generation += 1
        if store is not None:
            store.append(op, {"session": "bench", "dependency": dependency})


def _probe(manager):
    for probe in PROBES:
        command = commands.from_wire(
            "implies", {"session": "bench", "dependency": probe})
        commands.execute(command, manager.peek("bench").session)


def _edit_round(manager, store, pairs=EDIT_PAIRS):
    started = time.perf_counter()
    for _ in range(pairs):
        _edit(manager, store, "add", TOGGLE)
        _edit(manager, store, "retract", TOGGLE)
        _probe(manager)
    return time.perf_counter() - started


def _measure_append_overhead():
    """Paired rounds of the edit path, WAL-off vs WAL-on, per policy."""
    rows = {}
    for policy in ("off", "interval", "always"):
        data_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
        try:
            manager = SessionManager()
            store = SessionStore(data_dir, fsync=policy,
                                 compact_records=10**9,
                                 compact_bytes=10**12)
            store.start(manager)
            manager.open("bench", SCHEMA, BASE_SIGMA)
            store.append("open", {"name": "bench", "schema": SCHEMA,
                                  "dependencies": BASE_SIGMA})
            _edit_round(manager, None, 20)    # warm both paths
            _edit_round(manager, store, 20)
            off_times, on_times = [], []
            for index in range(PAIRED_ROUNDS):
                # collect between rounds and alternate which side runs
                # first, so GC pauses and slow drift cancel out of the
                # paired ratios instead of always billing the WAL side
                gc.collect()
                if index % 2:
                    on_times.append(_edit_round(manager, store))
                    off_times.append(_edit_round(manager, None))
                else:
                    off_times.append(_edit_round(manager, None))
                    on_times.append(_edit_round(manager, store))
            store.close()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
        ratios = [on / off for off, on in zip(off_times, on_times)]
        pairs_s = median(off_times)
        rows[policy] = {
            "edit_pairs_per_round": EDIT_PAIRS,
            "rounds": PAIRED_ROUNDS,
            "baseline_edits_per_s": round(2 * EDIT_PAIRS / pairs_s, 1),
            "wal_edits_per_s": round(2 * EDIT_PAIRS / median(on_times), 1),
            "overhead_pct": round((median(ratios) - 1.0) * 100.0, 2),
        }
    return rows


def _build_wal(data_dir, records):
    """A store whose WAL holds ~``records`` add/retract records."""
    manager = SessionManager()
    store = SessionStore(data_dir, fsync="off", compact_records=10**9,
                         compact_bytes=10**12)
    store.start(manager)
    manager.open("bench", SCHEMA, BASE_SIGMA)
    store.append("open", {"name": "bench", "schema": SCHEMA,
                          "dependencies": BASE_SIGMA})
    while store.last_seq < records:
        _edit(manager, store, "add", TOGGLE)
        _edit(manager, store, "retract", TOGGLE)
    store.close()
    return manager


def _recovery_time(data_dir, repeats=RECOVERY_REPEATS):
    """Median wall time of a full recovery into a fresh manager."""
    times = []
    for _ in range(repeats):
        manager = SessionManager()
        store = SessionStore(data_dir, fsync="off")
        started = time.perf_counter()
        store.start(manager)
        times.append(time.perf_counter() - started)
        store.close()
    return median(times)


def _measure_recovery_and_compaction():
    curve = []
    compaction = None
    for records in RECOVERY_SIZES:
        data_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
        try:
            manager = _build_wal(data_dir, records)
            replay_s = _recovery_time(data_dir)
            row = {"wal_records": records,
                   "recovery_ms": round(replay_s * 1e3, 3)}
            curve.append(row)
            if records == max(RECOVERY_SIZES):
                store = SessionStore(data_dir, fsync="off")
                recovered = SessionManager()
                store.start(recovered)
                store.compact(recovered.snapshot_state())
                store.close()
                compact_s = _recovery_time(data_dir)
                compaction = {
                    "wal_records": records,
                    "uncompacted_ms": row["recovery_ms"],
                    "compacted_ms": round(compact_s * 1e3, 3),
                    "speedup": round(replay_s / max(compact_s, 1e-9), 2),
                }
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
    return curve, compaction


def test_store_durability_report(benchmark):
    def measure():
        curve, compaction = _measure_recovery_and_compaction()
        return {
            "append_overhead": _measure_append_overhead(),
            "recovery_curve": curve,
            "compaction": compaction,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)

    report = {"store_durability": row,
              "overhead_target_pct": OVERHEAD_TARGET_PCT,
              "overhead_assert_pct": OVERHEAD_ASSERT_PCT}
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n",
                         encoding="utf-8")

    overhead = row["append_overhead"]
    print(f"\nstore durability ({2 * EDIT_PAIRS} edits/round, "
          f"{PAIRED_ROUNDS} paired rounds):")
    for policy in ("off", "interval", "always"):
        stats = overhead[policy]
        print(f"  fsync={policy:8s} {stats['wal_edits_per_s']:9.1f} edits/s "
              f"({stats['overhead_pct']:+.2f}% median paired overhead)")
    for point in row["recovery_curve"]:
        print(f"  recover {point['wal_records']:5d} records: "
              f"{point['recovery_ms']:8.3f} ms")
    compaction = row["compaction"]
    print(f"  compacted restart: {compaction['compacted_ms']:.3f} ms vs "
          f"{compaction['uncompacted_ms']:.3f} ms "
          f"({compaction['speedup']:.1f}x)")
    print(f"report written to {JSON_PATH.name}")

    # Acceptance: the default policy's WAL append rides the edit path
    # for ≤10% paired-median overhead (the recorded goal; the hard
    # bound is generous because small CI boxes jitter paired rounds).
    assert overhead["interval"]["overhead_pct"] <= OVERHEAD_ASSERT_PCT, overhead
    # Replay is the linear term: the longest WAL cannot recover faster
    # than the shortest.
    times = [point["recovery_ms"] for point in row["recovery_curve"]]
    assert times[-1] >= times[0], row["recovery_curve"]
    # Compaction exists to delete the replay term from restart.
    assert compaction["speedup"] >= 1.5, compaction
