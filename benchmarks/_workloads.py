"""Deterministic workload builders shared by the benchmark modules."""

from __future__ import annotations

import random

from repro.attributes import BasisEncoding
from repro.workloads import mixed_family, random_sigma


def sized_problem(scale: int, sigma_size: int, seed: int = 7):
    """A closure problem on the paper-shaped family with ``|N| = 4·scale``.

    Returns ``(encoding, x_mask, fd_masks, mvd_masks)`` ready for the
    mask-level algorithm entry point (so benchmarks time the algorithm,
    not parsing or encoding construction).
    """
    root = mixed_family(scale)
    encoding = BasisEncoding(root)
    rng = random.Random(seed)
    sigma = random_sigma(rng, encoding, sigma_size, lhs_density=2 / encoding.size,
                         rhs_density=4 / encoding.size)
    fd_masks = [
        (encoding.encode(d.lhs), encoding.encode(d.rhs)) for d in sigma.fds()
    ]
    mvd_masks = [
        (encoding.encode(d.lhs), encoding.encode(d.rhs)) for d in sigma.mvds()
    ]
    x_mask = encoding.down_close(1)  # the first flat attribute
    return encoding, x_mask, fd_masks, mvd_masks


def sized_sigma(scale: int, sigma_size: int, seed: int = 7):
    """Same workload but as (encoding, DependencySet, x attribute)."""
    root = mixed_family(scale)
    encoding = BasisEncoding(root)
    rng = random.Random(seed)
    sigma = random_sigma(rng, encoding, sigma_size, lhs_density=2 / encoding.size,
                         rhs_density=4 / encoding.size)
    x = encoding.decode(encoding.down_close(1))
    return encoding, sigma, x


def chain_problem(scale: int):
    """A deterministic worst-case closure problem with ``|Σ| = scale``.

    On ``mixed_family(scale)`` (``|N| = 4·scale``), Σ is the FD chain

        A₁ → group₁ ⊔ A₂,  A₂ → group₂ ⊔ A₃,  …

    listed in REVERSE order, so each REPEAT pass absorbs only the first
    still-applicable link — the classic worst case driving the pass count
    to ~|Σ|.  Starting from ``X = A₁`` the closure is the whole schema.
    """
    from repro.attributes import parse_subattribute
    from repro.dependencies import DependencySet

    root = mixed_family(scale)
    encoding = BasisEncoding(root)
    texts = []
    for i in range(1, scale + 1):
        rhs_parts = [f"L{i}[D{i}(B{i}, C{i})]"]
        if i < scale:
            rhs_parts.append(f"A{i + 1}")
        texts.append(f"R(A{i}) -> R({', '.join(rhs_parts)})")
    texts.reverse()
    sigma = DependencySet.parse(root, texts)
    fd_masks = [(encoding.encode(d.lhs), encoding.encode(d.rhs)) for d in sigma.fds()]
    x_mask = encoding.encode(parse_subattribute("R(A1)", root))
    return encoding, x_mask, fd_masks, []
