"""Incremental Σ editing: one Session across a design pipeline vs fresh runs.

The workload is the §1.3 schema-design loop the Session architecture
targets, as one deterministic five-phase pipeline on a ≥16-dependency
random Σ over the paper-shaped ``mixed_family`` schema:

1. **minimal cover** — drop/test/re-add every member of Σ;
2. **redundancy audit** — re-verify every kept dependency is
   irredundant in the cover;
3. **synthesis grouping** — the closure of every cover FD's left-hand
   side (the Bernstein grouping step);
4. **stated-4NF check** — a superkey test per stated left-hand side;
5. **re-verification stream** — two more rounds of "is the cover still
   equivalent?" probes, the interactive-editing steady state.

Both paths run the same worklist kernel and are asserted to produce
identical covers and verdicts.  The *baseline* is the pre-Session
architecture: every membership verdict pays one fresh
:func:`compute_closure` against the then-current candidate Σ (no state
survives an edit).  The *session* path keeps one
:class:`repro.core.session.Session` alive through all five phases:
retraction evicts only provenance-hit entries, re-adds warm-start, and
phases 3–5 are mostly cache hits.

``BENCH_incremental_cover.json`` at the repository root records the
timings and the kernel-run counts; the shape test asserts the ≥2×
criterion.

Run:  pytest benchmarks/bench_incremental_cover.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.attributes import BasisEncoding
from repro.core import Session, compute_closure
from repro.core.engine import KernelStats
from repro.dependencies import DependencySet, FunctionalDependency
from repro.workloads import mixed_family

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_incremental_cover.json"

SCALE = 8           # mixed_family(8): |N| = 32, 8 attribute groups
CLUSTERS = 4        # 5 dependencies per cluster → |Σ| = 20 (≥ 16)
REVERIFY_ROUNDS = 2
SPEEDUP_TARGET = 2.0


def _workload():
    """A clustered 20-dependency Σ: the modular-schema editing scenario.

    Σ splits into :data:`CLUSTERS` independent clusters of 5
    dependencies, each over its own pair of attribute groups — the shape
    of a real composite schema, where editing one functional area does
    not disturb the others.  One FD per cluster is redundant (a
    transitivity consequence), so the cover sweep genuinely edits Σ.
    Provenance-exact retraction keeps the other clusters' cache entries
    live; the fresh-recompute baseline pays for them again after every
    edit.
    """
    root = mixed_family(SCALE)
    encoding = BasisEncoding(root)
    texts = []
    groups_per_cluster = SCALE // CLUSTERS
    for cluster in range(CLUSTERS):
        i = cluster * groups_per_cluster + 1   # first group of the cluster
        j = i + 1                              # second group
        texts.extend([
            f"R(A{i}) -> R(A{j})",
            f"R(A{j}) -> R(L{i}[D{i}(B{i}, λ)])",
            f"R(A{i}) -> R(L{i}[D{i}(B{i}, λ)])",   # redundant: transitivity
            f"R(A{j}) ->> R(L{j}[D{j}(B{j}, C{j})])",
            f"R(L{i}[λ]) -> R(A{i})",
        ])
    return encoding, DependencySet.parse(root, texts)


def _implies_fresh(encoding, candidate, dependency, stats=None) -> bool:
    """The pre-Session verdict: one stateless closure per question."""
    result = compute_closure(encoding, dependency.lhs, candidate, stats=stats)
    rhs_mask = encoding.encode(dependency.rhs)
    if isinstance(dependency, FunctionalDependency):
        return result.implies_fd_rhs(rhs_mask)
    return result.implies_mvd_rhs(rhs_mask)


def _baseline_pipeline(encoding, sigma, stats=None):
    """All five phases with a fresh closure per membership question."""
    root = sigma.root
    # 1. minimal cover (greedy, reversed insertion order — the same
    #    candidate sequence the Session path walks).
    kept = list(sigma)
    for dependency in reversed(list(sigma)):
        candidate = DependencySet(root, [d for d in kept if d != dependency])
        if _implies_fresh(encoding, candidate, dependency, stats):
            kept = list(candidate)
    cover = DependencySet(root, (d for d in sigma if d in set(kept)))

    # 2. redundancy audit of the cover.
    audit = []
    for dependency in cover:
        rest = DependencySet(root, [d for d in cover if d != dependency])
        audit.append(_implies_fresh(encoding, rest, dependency, stats))

    # 3. synthesis grouping: closure per cover-FD lhs.
    groups = []
    for dependency in cover.fds():
        result = compute_closure(encoding, dependency.lhs, cover, stats=stats)
        groups.append(result.closure_mask)

    # 4. stated-4NF: superkey test per stated lhs.
    superkeys = []
    for dependency in cover:
        result = compute_closure(encoding, dependency.lhs, cover, stats=stats)
        superkeys.append(result.closure_mask == encoding.full)

    # 5. re-verification stream.
    stream = []
    for _ in range(REVERIFY_ROUNDS):
        for dependency in sigma:
            stream.append(_implies_fresh(encoding, cover, dependency, stats))

    return cover, audit, groups, superkeys, stream


def _session_pipeline(encoding, sigma, stats=None):
    """The same five phases through one live Session."""
    from repro.core.membership import minimal_cover

    session = Session(sigma.root, sigma, encoding=encoding, stats=stats)
    # 1. the sweep leaves the session holding exactly the cover.
    cover = minimal_cover(sigma, session=session)

    # 2. audit: provenance-exact retraction keeps unrelated entries.
    audit = []
    for dependency in cover:
        session.retract(dependency)
        audit.append(session.implies(dependency))
        session.add(dependency)

    # 3. grouping closures — warm or cached by now.
    groups = []
    for dependency in cover.fds():
        result = session.result_for(dependency.lhs)
        groups.append(result.closure_mask)

    # 4. stated-4NF superkey tests.
    superkeys = [session.is_superkey(d.lhs) for d in cover]

    # 5. re-verification stream: steady-state hits.
    stream = []
    for _ in range(REVERIFY_ROUNDS):
        for dependency in sigma:
            stream.append(session.implies(dependency))

    return cover, audit, groups, superkeys, stream


def _best_of(fn, *args, budget_s: float = 1.0, setup=None) -> float:
    """Best-of-N wall time with an adaptive round count."""
    if setup is not None:
        setup()
    start = time.perf_counter()
    fn(*args)
    first = time.perf_counter() - start
    rounds = max(3, min(50, int(budget_s / max(first, 1e-9))))
    best = first
    for _ in range(rounds):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_incremental_cover_report(benchmark):
    encoding, sigma = _workload()

    def measure():
        baseline_stats = KernelStats()
        session_stats = KernelStats()
        base = _baseline_pipeline(encoding, sigma, baseline_stats)
        live = _session_pipeline(encoding, sigma, session_stats)
        assert set(base[0]) == set(live[0])   # identical covers
        assert base[1:] == live[1:]           # identical downstream verdicts

        baseline_s = _best_of(_baseline_pipeline, encoding, sigma,
                              setup=encoding.cache_clear)
        session_s = _best_of(_session_pipeline, encoding, sigma,
                             setup=encoding.cache_clear)
        return {
            "sigma_size": len(sigma),
            "cover_size": len(base[0]),
            "size": encoding.size,
            "reverify_rounds": REVERIFY_ROUNDS,
            "baseline_s": baseline_s,
            "session_s": session_s,
            "speedup": baseline_s / session_s,
            "baseline_kernel_runs": baseline_stats.runs,
            "session_kernel_runs": session_stats.runs,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)

    report = {"incremental_cover": row, "speedup_target": SPEEDUP_TARGET}
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"\nincremental cover pipeline (|Σ|={row['sigma_size']}, "
          f"cover={row['cover_size']}, |N|={row['size']}):")
    print(f"  per-candidate fresh: {row['baseline_s'] * 1e3:8.2f}ms "
          f"({row['baseline_kernel_runs']} kernel runs)")
    print(f"  live session:        {row['session_s'] * 1e3:8.2f}ms "
          f"({row['session_kernel_runs']} kernel runs)")
    print(f"  speedup: {row['speedup']:.1f}x")
    print(f"report written to {JSON_PATH.name}")

    assert row["speedup"] >= SPEEDUP_TARGET, row
