"""Read scale-out under WAL-shipping replication: routed QPS, lag, fences.

Three questions, answered against one in-process fleet (a store-backed
primary plus two tailing followers) over loopback:

* **What does routed reading cost per topology?**  The hot read
  workload (implies answered from the session closure cache) is driven
  through :class:`RoutedClient` with 0, 1 and 2 replicas attached.  All
  nodes share one machine and one interpreter, so this does *not*
  demonstrate linear scaling — it documents that fan-out routing works
  at full speed with zero failovers/redirects, and what a routed hop
  costs relative to the single-node path.

* **How far behind is a follower?**  For each of ``LAG_MUTATIONS``
  acknowledged mutations the benchmark measures the time from the
  primary's ack (which carries the WAL ``seq``) until the follower's
  ``applied_seq`` reaches it.  Long-poll shipping should keep p95 in
  the low milliseconds; the hard bound is generous for CI boxes.

* **What does the read fence cost when satisfied?**  Paired rounds of
  fenced (``min_seq`` at the primary's last ack) vs unfenced replica
  reads on a caught-up follower.  A satisfied fence is one integer
  comparison server-side; the recorded ``overhead_pct`` documents it.

``BENCH_replicate_scaleout.json`` at the repository root records all
three.

Run:  pytest benchmarks/bench_replicate_scaleout.py -s
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from pathlib import Path
from statistics import median, quantiles

from repro.replicate import RoutedClient
from repro.serve import Client, ReasoningServer, ServeConfig

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_replicate_scaleout.json"

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
HOT_PROBE = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"

READ_REQUESTS = 300      # hot reads per topology measurement
WARMUP = 30              # unmeasured reads before each timing
LAG_MUTATIONS = 40       # acked writes timed against the follower tail
FENCE_ROUNDS = 7         # interleaved fenced/unfenced paired rounds
FENCE_REQUESTS = 150     # replica reads per fence round
FENCE_ASSERT_PCT = 25.0  # noise-tolerant bound on fence overhead
LAG_ASSERT_P95_MS = 1500.0


@contextlib.contextmanager
def _served(**overrides):
    """One ReasoningServer on a background thread (the `_stopped` idiom)."""
    ready = threading.Event()
    box = {}

    def serve():
        async def main():
            config = ServeConfig(idle_ttl=None, workers=0,
                                 request_timeout=None, **overrides)
            async with ReasoningServer(config) as server:
                box["server"] = server
                box["loop"] = asyncio.get_running_loop()
                box["address"] = server.address
                ready.set()
                await server._stopped.wait()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=10), "server thread failed to start"
    try:
        yield box["address"], box["server"]
    finally:
        box["loop"].call_soon_threadsafe(
            lambda: asyncio.ensure_future(box["server"].shutdown()))
        thread.join(timeout=10)


@contextlib.contextmanager
def _fleet(tmp_path):
    """A store-backed primary plus two tailing followers."""
    with contextlib.ExitStack() as stack:
        (host, port), primary = stack.enter_context(
            _served(data_dir=str(tmp_path / "primary")))
        replicas, followers = [], []
        for index in (1, 2):
            (f_host, f_port), follower = stack.enter_context(
                _served(data_dir=str(tmp_path / f"follower{index}"),
                        replicate_from=f"{host}:{port}",
                        replica_id=f"bench-f{index}",
                        replicate_poll=0.2))
            replicas.append((f_host, f_port))
            followers.append(follower)
        yield (host, port), replicas, followers


def _catchup(followers, seq, budget=10.0):
    deadline = time.monotonic() + budget
    while any(f.replicator.applied_seq < seq for f in followers):
        assert time.monotonic() < deadline, "followers never caught up"
        time.sleep(0.01)


def _read_round(client, requests):
    """Time ``requests`` cache-hit implies calls; returns seconds."""
    started = time.perf_counter()
    for _ in range(requests):
        client.implies("bench", HOT_PROBE)
    return time.perf_counter() - started


def _measure_read_qps(primary_address, replica_addresses):
    """Routed hot-read QPS with 0, 1 and 2 replicas attached."""
    rows = {}
    for count in (0, 1, 2):
        with RoutedClient(primary_address,
                          replica_addresses[:count]) as client:
            _read_round(client, WARMUP)
            elapsed = _read_round(client, READ_REQUESTS)
            assert client.counters["routed.failover"] == 0, client.counters
            assert client.counters["routed.redirects"] == 0, client.counters
            if count:
                assert (client.counters["routed.replica_reads"]
                        == WARMUP + READ_REQUESTS), client.counters
        rows[f"replicas_{count}"] = round(READ_REQUESTS / elapsed, 1)
    rows["requests"] = READ_REQUESTS
    return rows


def _measure_lag(primary_address, follower):
    """Primary-ack → follower-applied latency per mutation, in ms."""
    lags_ms = []
    with Client.connect(*primary_address) as client:
        for _ in range(LAG_MUTATIONS):
            result = client.open("lag", SCHEMA, [MVD], replace=True)
            seq = result["seq"]
            started = time.perf_counter()
            while follower.replicator.applied_seq < seq:
                time.sleep(0.0002)
            lags_ms.append((time.perf_counter() - started) * 1000.0)
    cuts = quantiles(lags_ms, n=20)
    return {
        "mutations": LAG_MUTATIONS,
        "p50_ms": round(median(lags_ms), 3),
        "p95_ms": round(cuts[18], 3),
        "max_ms": round(max(lags_ms), 3),
    }


def _measure_fence_overhead(primary_address, replica_address, follower):
    """Paired rounds: fenced vs unfenced reads on a caught-up replica."""
    with RoutedClient(primary_address, [replica_address]) as fenced, \
            RoutedClient(primary_address, [replica_address],
                         fence=False) as unfenced:
        # a fresh mutation arms the fence at its acked WAL seq
        opened = fenced.open("bench", SCHEMA, [MVD], replace=True)
        assert fenced.min_seq == opened["seq"] > 0
        _catchup([follower], opened["seq"])
        _read_round(fenced, WARMUP)
        _read_round(unfenced, WARMUP)
        fenced_times, unfenced_times = [], []
        for _ in range(FENCE_ROUNDS):
            unfenced_times.append(_read_round(unfenced, FENCE_REQUESTS))
            fenced_times.append(_read_round(fenced, FENCE_REQUESTS))
        assert fenced.counters["routed.redirects"] == 0, fenced.counters
    ratios = [f / u for u, f in zip(unfenced_times, fenced_times)]
    return {
        "requests_per_round": FENCE_REQUESTS,
        "rounds": FENCE_ROUNDS,
        "unfenced_qps": round(FENCE_REQUESTS / median(unfenced_times), 1),
        "fenced_qps": round(FENCE_REQUESTS / median(fenced_times), 1),
        "overhead_pct": round((median(ratios) - 1.0) * 100.0, 3),
    }


def test_replicate_scaleout_report(benchmark, tmp_path):
    def measure():
        with _fleet(tmp_path) as (primary_address, replicas, followers):
            with Client.connect(*primary_address) as client:
                opened = client.open("bench", SCHEMA, [MVD])
            _catchup(followers, opened["seq"])
            return {
                "read_qps": _measure_read_qps(primary_address, replicas),
                "replication_lag": _measure_lag(primary_address,
                                                followers[0]),
                "fence_overhead": _measure_fence_overhead(
                    primary_address, replicas[0], followers[0]),
            }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)

    report = {"replicate_scaleout": row,
              "fence_assert_pct": FENCE_ASSERT_PCT,
              "lag_assert_p95_ms": LAG_ASSERT_P95_MS}
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    qps, lag, fence = (row["read_qps"], row["replication_lag"],
                       row["fence_overhead"])
    print(f"\nreplicate scale-out ({READ_REQUESTS} hot reads/topology):")
    for count in (0, 1, 2):
        print(f"  {count} replicas {qps[f'replicas_{count}']:8.1f} qps")
    print(f"  lag   p50 {lag['p50_ms']:.2f} ms, p95 {lag['p95_ms']:.2f} ms "
          f"over {lag['mutations']} mutations")
    print(f"  fence {fence['fenced_qps']:8.1f} qps fenced vs "
          f"{fence['unfenced_qps']:8.1f} unfenced "
          f"({fence['overhead_pct']:+.2f}% median paired overhead)")
    print(f"report written to {JSON_PATH.name}")

    # every topology served its whole workload (the asserts inside the
    # measurement guarantee zero failovers and zero redirects)
    assert all(qps[f"replicas_{n}"] > 0 for n in (0, 1, 2)), qps
    # long-poll shipping keeps the tail close; the bound is generous
    # because single-CPU CI boxes schedule the follower loop lazily
    assert lag["p95_ms"] <= LAG_ASSERT_P95_MS, lag
    # a satisfied min_seq fence is one integer comparison server-side
    assert fence["overhead_pct"] <= FENCE_ASSERT_PCT, fence
