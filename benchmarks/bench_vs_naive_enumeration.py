"""E8 — Algorithm 5.1 vs naive rule enumeration (§5 opening claim).

The paper motivates the membership algorithm by noting that enumerating
all derivable dependencies is "time consuming and therefore impractical".
This experiment quantifies that: on the same membership queries, the
polynomial algorithm is compared against the forward-chaining closure of
the Theorem 4.6 rule system.

Expected shape (the reproduction criterion): the algorithm wins by orders
of magnitude already at toy sizes, and the naive engine's cost explodes
with the schema while the algorithm's grows polynomially.

Run:  pytest benchmarks/bench_vs_naive_enumeration.py --benchmark-only
"""

import time

import pytest

from repro.attributes import BasisEncoding, parse_attribute
from repro.core import implies
from repro.dependencies import DependencySet, parse_dependency
from repro.inference import derive_closure

# Three growing flat schemas; the naive engine's element pool is all of
# Sub(N), so its work grows exponentially with the width.
# widths 3 and 4 only: at width 5 the naive engine already needs ~200 s
# for ONE query (measured; the algorithm needs ~20 µs) — the blow-up the
# paper predicts, but too slow to re-run on every benchmark invocation.
CASES = {
    "width3": ("R(A, B, C)", ["R(A) -> R(B)", "R(B) ->> R(C)"],
               "R(A) ->> R(C)"),
    "width4": ("R(A, B, C, D)", ["R(A) -> R(B)", "R(B) ->> R(C)"],
               "R(A) ->> R(C, D)"),
}


def _build(name):
    root_text, sigma_texts, target_text = CASES[name]
    root = parse_attribute(root_text)
    sigma = DependencySet.parse(root, sigma_texts)
    target = parse_dependency(target_text, root)
    return root, sigma, target


@pytest.mark.parametrize("name", list(CASES))
def test_algorithm51_membership(benchmark, name):
    root, sigma, target = _build(name)
    encoding = BasisEncoding(root)
    verdict = benchmark(implies, sigma, target, encoding=encoding)
    assert verdict


@pytest.mark.parametrize("name", list(CASES))
def test_naive_enumeration_membership(benchmark, name):
    root, sigma, target = _build(name)

    def naive():
        return target in derive_closure(sigma, target=target)

    # One round: the whole point is that this is slow.
    assert benchmark.pedantic(naive, rounds=1, iterations=1)


def test_speedup_and_blowup_shape(benchmark):
    def sweep():
        rows = []
        for name in CASES:
            root, sigma, target = _build(name)
            encoding = BasisEncoding(root)

            start = time.perf_counter()
            for _ in range(5):
                implies(sigma, target, encoding=encoding)
            fast = (time.perf_counter() - start) / 5

            start = time.perf_counter()
            derive_closure(sigma, target=target)
            naive = time.perf_counter() - start

            rows.append((name, encoding.size, fast, naive))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE8  Algorithm 5.1 vs naive enumeration")
    for name, size, fast, naive in rows:
        print(
            f"  {name:7} |N|={size}:  algorithm {fast * 1e6:8.1f} µs   "
            f"naive {naive * 1e3:9.2f} ms   speedup {naive / fast:8.0f}x"
        )
    # Shape assertions: the algorithm always wins, by a growing factor.
    speedups = [naive / fast for _, _, fast, naive in rows]
    assert all(s > 10 for s in speedups)
    assert speedups[-1] > speedups[0], "naive blow-up not visible"
