"""Compiled-plan throughput: one compilation, many membership queries.

The perf claim behind :mod:`repro.core.plan` is that a long-lived
session answering a *stream* of membership queries against one large Σ
should not pay per-query for work that depends only on ``(encoding,
Σ)``.  This benchmark pins that down on a 200-dependency random Σ
(`_workloads.sized_sigma`):

* **baseline** — one cold plan-less
  :func:`repro.core.engine.closure_of_masks_fast` run per query, the
  cost every stateless caller pays today;
* **planned** — a :class:`repro.core.session.Session` whose compiled
  plan (inverted requeue index, folded duplicates, Ū=0 constants) and
  monotone closure-interval cache answer the same stream.

The stream is adversarially favourable to *neither* exact caching nor
cold computes: a handful of seed left-hand sides plus, for each seed,
supersets ``X`` with ``seed ≤ X ≤ seed⁺`` — exactly the shape the
interval rule (``X'⁺ = X⁺`` whenever ``X' ≤ X ≤ X'⁺``) resolves
without touching the kernel.  Identical answers are asserted
query-by-query before anything is timed.

Headline (asserted): **≥ 3x paired-median speedup** for the planned
session over the per-query baseline, plus the requeue-scan savings of
the inverted index (``KernelStats.requeue_scanned`` plan-on vs
plan-off) and the interval-hit rate.  Results land in
``BENCH_plan_throughput.json``.

Run:  pytest benchmarks/bench_plan_throughput.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.engine import KernelStats, closure_of_masks_fast
from repro.core.plan import compile_plan
from repro.core.session import Session

from _timing import paired_speedup, time_once
from _workloads import sized_sigma

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_plan_throughput.json"

SCALE = 12            # |N| = 48
SIGMA_SIZE = 200      # the "large Σ" the plan amortises over
SEEDS = 6             # cold left-hand sides in the stream
VARIANTS_PER_SEED = 40
SPEEDUP_FLOOR = 3.0


def _build():
    encoding, sigma, _ = sized_sigma(SCALE, SIGMA_SIZE)
    fd_masks = [(encoding.encode(d.lhs), encoding.encode(d.rhs))
                for d in sigma.fds()]
    mvd_masks = [(encoding.encode(d.lhs), encoding.encode(d.rhs))
                 for d in sigma.mvds()]

    # Seed LHSs spread over the basis; for each, superset variants
    # inside [seed, seed⁺] so the interval rule (not exact hits) is
    # what answers the warm part of the stream.
    stream: list[int] = []
    step = max(1, encoding.size // SEEDS)
    for s in range(SEEDS):
        seed = encoding.down_close(1 << (s * step))
        closure, _, _ = closure_of_masks_fast(
            encoding, seed, fd_masks, mvd_masks
        )
        stream.append(seed)
        gained = [i for i in range(encoding.size)
                  if (closure >> i) & 1 and not (seed >> i) & 1]
        for k, bit in enumerate(gained):
            if k >= VARIANTS_PER_SEED:
                break
            stream.append(seed | encoding.down_close(1 << bit))
    return encoding, sigma, fd_masks, mvd_masks, stream


def _measure() -> dict:
    encoding, sigma, fd_masks, mvd_masks, stream = _build()

    compile_s = time_once(compile_plan, encoding, fd_masks, mvd_masks)
    session = Session(encoding.root, sigma, encoding=encoding)
    plan = session.plan

    # Same answers through both paths, query by query.
    for mask in stream:
        cold, _, _ = closure_of_masks_fast(encoding, mask, fd_masks, mvd_masks)
        assert session.closure_mask_for(mask) == cold, format(mask, "#x")

    def baseline():
        for mask in stream:
            closure_of_masks_fast(encoding, mask, fd_masks, mvd_masks)

    def planned():
        session.cache_clear()
        for mask in stream:
            session.closure_mask_for(mask)

    base_s, plan_s, speedup = paired_speedup(baseline, planned)

    # Interval-hit rate of the last planned round (cache_clear resets
    # the counters, so this is exactly one stream's worth).
    info = session.cache_info().plan
    answered = info.exact_hits + info.interval_hits + info.misses

    # Requeue-scan savings of the inverted index, same stream, cold
    # kernel runs on both sides so only the plan differs.
    stats_off, stats_on = KernelStats(), KernelStats()
    for mask in stream:
        closure_of_masks_fast(encoding, mask, fd_masks, mvd_masks,
                              stats=stats_off)
        closure_of_masks_fast(encoding, mask, fd_masks, mvd_masks,
                              stats=stats_on, plan=plan)

    return {
        "sigma": len(fd_masks) + len(mvd_masks),
        "folded": len(plan),
        "size": encoding.size,
        "stream": len(stream),
        "plan_compile_s": compile_s,
        "baseline_stream_s": base_s,
        "planned_stream_s": plan_s,
        "paired_median_speedup": speedup,
        "interval_hits": info.interval_hits,
        "interval_hit_rate": info.interval_hits / answered if answered else 0.0,
        "requeue_scanned_plan_off": stats_off.requeue_scanned,
        "requeue_scanned_plan_on": stats_on.requeue_scanned,
        "requeue_scan_savings_pct": (
            100.0 * (1.0 - stats_on.requeue_scanned
                     / max(stats_off.requeue_scanned, 1))
        ),
    }


def test_plan_throughput_report(benchmark):
    row = benchmark.pedantic(_measure, rounds=1, iterations=1)

    report = {
        "workload": f"random Σ ({SIGMA_SIZE} deps) membership stream "
                    f"(sized_sigma scale={SCALE})",
        "speedup_floor": SPEEDUP_FLOOR,
        **row,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print("\nCompiled-plan membership-stream throughput:")
    print(f"  |Σ|={row['sigma']} (folded {row['folded']}) |N|={row['size']} "
          f"stream={row['stream']} queries")
    print(f"  compile once: {row['plan_compile_s'] * 1e3:.3f} ms")
    print(f"  baseline {row['baseline_stream_s'] * 1e3:9.3f} ms   "
          f"planned {row['planned_stream_s'] * 1e3:9.3f} ms   "
          f"speedup {row['paired_median_speedup']:6.1f}x (paired median)")
    print(f"  interval hits: {row['interval_hits']} "
          f"({row['interval_hit_rate'] * 100:.1f}% of stream)")
    print(f"  requeue positions scanned: {row['requeue_scanned_plan_off']} -> "
          f"{row['requeue_scanned_plan_on']} "
          f"({row['requeue_scan_savings_pct']:.1f}% saved)")
    print(f"report written to {JSON_PATH.name}")

    assert row["paired_median_speedup"] >= SPEEDUP_FLOOR, row
    assert row["interval_hits"] > 0, row
    assert (row["requeue_scanned_plan_on"]
            <= row["requeue_scanned_plan_off"]), row
