"""E11 — Theorem 4.4: the MVD checkers and the generalised join.

Times the two MVD satisfaction checkers — the definitional cross-product
criterion and the (corrected) lossless-join oracle — plus the raw
generalised join, on pub-crawl-shaped instances of growing size.  The
reproduction criterion is agreement of the verdicts (asserted) and the
definitional checker winning on cost (it avoids materialising the join).

Run:  pytest benchmarks/bench_lossless_join.py --benchmark-only
"""

import pytest

from repro.dependencies import (
    lossless_binary_decomposition,
    satisfies_mvd,
    satisfies_mvd_via_join,
)
from repro.workloads import pubcrawl_workload

SIZES = (4, 16, 64)


def _instance(n_people, seed=3):
    """A pub-crawl instance satisfying the MVD: per person, all
    combinations of two beer orders and two pub orders."""
    workload = pubcrawl_workload(n_people, seed=seed)
    return workload.root, workload.instance, workload.sigma.mvds()[0]


@pytest.mark.parametrize("n_people", SIZES)
def test_definitional_checker(benchmark, n_people):
    root, instance, mvd = _instance(n_people)
    assert benchmark(satisfies_mvd, root, instance, mvd)


@pytest.mark.parametrize("n_people", SIZES)
def test_lossless_join_checker(benchmark, n_people):
    root, instance, mvd = _instance(n_people)
    assert benchmark(satisfies_mvd_via_join, root, instance, mvd)


@pytest.mark.parametrize("n_people", SIZES)
def test_raw_generalised_join(benchmark, n_people):
    root, instance, mvd = _instance(n_people)
    assert benchmark(lossless_binary_decomposition, root, instance, mvd)


@pytest.mark.parametrize("n_people", SIZES)
def test_checkers_agree_on_violations(benchmark, n_people):
    root, instance, mvd = _instance(n_people)
    # Break the cross product: drop one combination tuple.
    broken = frozenset(list(instance)[1:])

    def verdicts():
        return (
            satisfies_mvd(root, broken, mvd),
            satisfies_mvd_via_join(root, broken, mvd),
        )

    definitional, via_join = benchmark(verdicts)
    assert definitional == via_join
