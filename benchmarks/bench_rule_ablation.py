"""E16 — rule-redundancy ablation (the §7 "minimal rule sets" question).

The paper's conclusion: "The inference rules from Theorem 4.6 are expected
to be redundant.  A detailed study of minimal sets of inference rules …
was outside the scope of this paper."  This experiment performs the
empirical half of that study: over a corpus of randomized small inputs,
each rule is removed in turn and the closure recomputed; a rule whose
removal never shrinks any closure is a redundancy candidate, a rule whose
removal loses consequences is load-bearing.

Reproduction criterion (asserted): the three *derived-looking* MVD rules
(join, meet, pseudo-difference) are redundant on the whole corpus, while
complementation, the FD core, implication and — on list schemas — the
mixed meet rule are load-bearing.

Run:  pytest benchmarks/bench_rule_ablation.py --benchmark-only
"""

import random

import pytest

from repro.attributes import BasisEncoding, parse_attribute
from repro.dependencies import DependencySet
from repro.inference import rule_ablation
from repro.workloads import random_sigma

CORPUS_ROOTS = (
    "R(A, B, C)",                 # the relational case
    "R(A, L[B])",                 # one list: lengths appear
    "R(A, L[D(B, C)])",           # a record split inside a list
)
SEEDS = (3, 17, 51)


def _corpus():
    cases = []
    for root_text in CORPUS_ROOTS:
        root = parse_attribute(root_text)
        encoding = BasisEncoding(root)
        for seed in SEEDS:
            sigma = random_sigma(
                random.Random(seed), encoding, 2,
                lhs_density=0.3, rhs_density=0.4,
            )
            cases.append((root_text, sigma))
        # plus one canonical list MVD that exercises the mixed meet rule
        if "[" in root_text:
            cases.append(
                (root_text, DependencySet.parse(root, [_canonical_mvd(root_text)]))
            )
    return cases


def _canonical_mvd(root_text):
    return {
        "R(A, L[B])": "R(A) ->> R(L[λ])",
        "R(A, L[D(B, C)])": "R(A) ->> R(L[D(B)])",
    }[root_text]


def test_ablation_study(benchmark):
    def study():
        lost_by_rule: dict[str, int] = {}
        incomplete = 0
        for _, sigma in _corpus():
            for report in rule_ablation(sigma, max_dependencies=100_000):
                if not report.exhausted:
                    incomplete += 1
                    continue
                lost_by_rule[report.rule] = lost_by_rule.get(report.rule, 0) + len(
                    report.lost
                )
        return lost_by_rule, incomplete

    lost_by_rule, incomplete = benchmark.pedantic(study, rounds=1, iterations=1)
    print("\nE16  rule ablation over the corpus (total lost dependencies)")
    for rule, lost in sorted(lost_by_rule.items(), key=lambda kv: -kv[1]):
        verdict = "load-bearing" if lost else "redundancy candidate"
        print(f"  {rule:32} lost {lost:5d}   {verdict}")
    if incomplete:
        print(f"  ({incomplete} ablation runs hit the budget and were skipped)")

    # The derived MVD rules are never load-bearing:
    for name in (
        "multi-valued join",
        "multi-valued meet",
        "multi-valued pseudo-difference",
    ):
        assert lost_by_rule.get(name, 0) == 0, name
    # Complementation and the FD core are essential somewhere:
    for name in ("MVD complementation", "FD reflexivity axiom"):
        assert lost_by_rule.get(name, 0) > 0, name
    # The paper's new rule is essential on list schemas:
    assert lost_by_rule.get("mixed meet", 0) > 0


@pytest.mark.parametrize("root_text", CORPUS_ROOTS)
def test_single_ablation_cost(benchmark, root_text):
    root = parse_attribute(root_text)
    encoding = BasisEncoding(root)
    sigma = random_sigma(random.Random(3), encoding, 2,
                         lhs_density=0.3, rhs_density=0.4)
    reports = benchmark.pedantic(
        rule_ablation, args=(sigma,), kwargs={"max_dependencies": 100_000},
        rounds=1, iterations=1,
    )
    assert len(reports) == 13
