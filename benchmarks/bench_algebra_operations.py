"""E10 — Section 6 operation complexity micro-benchmarks.

The paper's complexity analysis budgets the primitive operations as:
``⊔``/``⊓``/``≤`` linear in ``|N|``, ``∸`` and ``(·)^C`` quadratic, and
the ``Ū`` inner computation cubic.  (The bitmask encoding makes the
linear ones effectively word operations — even better than budgeted.)
This module times each primitive over growing ``|N|`` and asserts the
growth stays at or below the budgeted exponent.

Run:  pytest benchmarks/bench_algebra_operations.py --benchmark-only
"""

import pytest

from _timing import median_of
from _workloads import sized_problem

SCALES = (4, 16, 64)  # |N| = 16, 64, 256


def _setup(scale):
    encoding, x_mask, _, _ = sized_problem(scale, 0)
    half = encoding.down_close(sum(1 << i for i in range(0, encoding.size, 2)))
    other = encoding.down_close(sum(1 << i for i in range(0, encoding.size, 3)))
    return encoding, half, other


@pytest.mark.parametrize("scale", SCALES)
def test_join_meet_le(benchmark, scale):
    encoding, half, other = _setup(scale)

    def run():
        return (
            encoding.join(half, other),
            encoding.meet(half, other),
            encoding.le(half, other),
        )

    benchmark(run)


@pytest.mark.parametrize("scale", SCALES)
def test_pseudo_difference(benchmark, scale):
    encoding, half, other = _setup(scale)
    benchmark(encoding.pseudo_difference, half, other)


@pytest.mark.parametrize("scale", SCALES)
def test_complement(benchmark, scale):
    encoding, half, _ = _setup(scale)
    benchmark(encoding.complement, half)


@pytest.mark.parametrize("scale", SCALES)
def test_double_complement(benchmark, scale):
    encoding, half, _ = _setup(scale)
    benchmark(encoding.double_complement, half)


@pytest.mark.parametrize("scale", SCALES)
def test_possessed(benchmark, scale):
    encoding, half, _ = _setup(scale)
    benchmark(encoding.possessed, half)


def test_growth_exponents(benchmark):
    import numpy as np

    budgets = {
        # paper budget exponents (the encoding often beats them)
        "pseudo_difference": 2,
        "complement": 2,
        "double_complement": 2,
        "possessed": 2,
    }

    def sweep():
        table = {}
        for scale in SCALES:
            encoding, half, other = _setup(scale)
            table.setdefault("pseudo_difference", []).append(
                (encoding.size, median_of(encoding.pseudo_difference, half, other))
            )
            table.setdefault("complement", []).append(
                (encoding.size, median_of(encoding.complement, half))
            )
            table.setdefault("double_complement", []).append(
                (encoding.size, median_of(encoding.double_complement, half))
            )
            table.setdefault("possessed", []).append(
                (encoding.size, median_of(encoding.possessed, half))
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE10  primitive-operation growth (paper budget in parentheses)")
    for name, rows in table.items():
        xs = [n for n, _ in rows]
        ys = [max(t, 1e-9) for _, t in rows]
        slope = float(np.polyfit(np.log(xs), np.log(ys), 1)[0])
        cells = "   ".join(f"|N|={n}: {t * 1e9:7.0f} ns" for n, t in rows)
        print(f"  {name:18} ({budgets[name]}): slope {slope:5.2f}   {cells}")
        assert slope <= budgets[name] + 0.5, (name, slope)
