"""E15 — normalisation as an application of the membership algorithm (§7).

Times the schema-design toolchain built on Algorithm 5.1 — 4NF checking,
candidate-key search, minimal covers and lossless decomposition — on the
library's example schemas and on the scaled paper-shaped family.

Run:  pytest benchmarks/bench_normalization.py --benchmark-only
"""

import pytest

from repro import Schema
from repro.core import minimal_cover
from repro.normalization import candidate_keys, decompose_4nf, is_in_4nf

from _workloads import sized_sigma


@pytest.fixture(scope="module")
def genome():
    schema = Schema(
        "Gene(Acc, Exons[Exon(Start, End)], Expr[Meas(Tissue, Level)], "
        "Curation(Src, Conf))"
    )
    sigma = schema.dependencies(
        "Gene(Acc) -> Gene(Exons[Exon(Start, End)])",
        "Gene(Acc) ->> Gene(Expr[Meas(Level)])",
        "Gene(Curation(Src)) -> Gene(Curation(Conf))",
    )
    return schema, sigma


def test_4nf_check_stated(benchmark, genome):
    schema, sigma = genome
    assert not benchmark(
        is_in_4nf, sigma, encoding=schema.encoding, exhaustive=False
    )


def test_4nf_check_exhaustive(benchmark, genome):
    schema, sigma = genome
    assert not benchmark(
        is_in_4nf, sigma, encoding=schema.encoding, exhaustive=True
    )


def test_candidate_key_search(benchmark, genome):
    schema, sigma = genome
    keys = benchmark(candidate_keys, sigma, encoding=schema.encoding)
    assert keys


def test_decomposition(benchmark, genome):
    schema, sigma = genome
    decomposition = benchmark(decompose_4nf, sigma, encoding=schema.encoding)
    assert len(decomposition.components) == 4


def test_minimal_cover_on_redundant_set(benchmark, genome):
    schema, _ = genome
    redundant = schema.dependencies(
        "Gene(Acc) -> Gene(Exons[Exon(Start, End)])",
        "Gene(Acc) -> Gene(Exons[Exon(Start)])",     # implied
        "Gene(Acc) -> Gene(Exons[λ])",               # implied
        "Gene(Acc) ->> Gene(Expr[Meas(Level)])",
        "Gene(Acc) ->> Gene(Expr[Meas(Tissue)], Exons[Exon(Start, End)], "
        "Curation(Src, Conf))",                      # the complement: implied
    )
    cover = benchmark(minimal_cover, redundant, encoding=schema.encoding)
    assert len(cover) < len(redundant)


@pytest.mark.parametrize("scale", (2, 4, 8))
def test_decomposition_scaling(benchmark, scale):
    encoding, sigma, _ = sized_sigma(scale, 4)
    decomposition = benchmark(decompose_4nf, sigma, encoding=encoding)
    assert decomposition.components


def test_synthesis(benchmark, genome):
    from repro.normalization import synthesize

    schema, sigma = genome
    result = benchmark(synthesize, sigma, encoding=schema.encoding)
    assert result.components
    from repro.normalization import is_superkey

    assert is_superkey(sigma, result.key_component)
