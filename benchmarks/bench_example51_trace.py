"""E5 — Example 5.1 / Figures 3–4: the full Algorithm 5.1 run.

Times the algorithm on the paper's own worked input (|N| = 14, |Σ| = 3),
with and without trace recording, asserting the exact final state the
paper prints (the per-state equality lives in
``tests/integration/test_example_5_1.py``).

Run:  pytest benchmarks/bench_example51_trace.py --benchmark-only
"""

from repro.core import TraceRecorder, compute_closure


def test_example51_closure(benchmark, example51_case):
    fixture, encoding = example51_case
    x = fixture.x()

    result = benchmark(compute_closure, encoding, x, fixture.sigma)
    assert result.passes == 3
    assert result.closure == next(iter(fixture.resolve((fixture.closure_text,))))
    assert set(result.dependency_basis()) == fixture.resolve(
        fixture.dependency_basis_texts
    )


def test_example51_closure_with_trace(benchmark, example51_case):
    fixture, encoding = example51_case
    x = fixture.x()

    def traced():
        recorder = TraceRecorder()
        compute_closure(encoding, x, fixture.sigma, trace=recorder)
        return recorder

    recorder = benchmark(traced)
    assert len(recorder.states_after_each_change()) == 3  # the paper's steps


def test_example51_membership_queries(benchmark, example51_case):
    from repro.attributes import parse_subattribute
    from repro.core import implies
    from repro.dependencies import FD, MVD

    fixture, encoding = example51_case
    x = fixture.x()
    inside = parse_subattribute("L1(L2[L3[L4(A)]])", fixture.root)
    block = parse_subattribute("L1(L5[L6(D)])", fixture.root)

    def decide():
        return (
            implies(fixture.sigma, FD(x, inside), encoding=encoding),
            implies(fixture.sigma, MVD(x, block), encoding=encoding),
            implies(fixture.sigma, FD(x, block), encoding=encoding),
        )

    fd_in, mvd_in, fd_out = benchmark(decide)
    assert fd_in and mvd_in and not fd_out
