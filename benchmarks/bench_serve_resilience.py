"""Cost of the resilience layer: retry-wrapper overhead and QPS under
injected overload.

Two questions, answered against one in-process server over loopback:

* **What does the retry wrapper cost when nothing fails?**  The hot
  path (implies on an already-closed left-hand side, answered from the
  session cache) is driven through the plain blocking
  :class:`Client` and through :class:`RetryingClient` in interleaved
  paired rounds (:func:`_timing.paired_speedup` convention).  The
  wrapper's fast path is one breaker check and one ``try`` — the
  recorded ``overhead_pct`` targets <1%; the hard assertion allows
  generous scheduler noise on small CI boxes.

* **What does seeded chaos cost?**  The same hot workload against a
  server injecting ``overloaded`` on ~10% of implies requests
  (a seeded :class:`FaultPlan`, so every run injects identically).
  Each injected rejection costs a round-trip plus one jittered backoff
  sleep; the recorded QPS ratio documents how gracefully throughput
  degrades while every request still succeeds.

``BENCH_serve_resilience.json`` at the repository root records both.

Run:  pytest benchmarks/bench_serve_resilience.py -s
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random
import threading
import time
from pathlib import Path
from statistics import median

from repro.serve import (
    CircuitBreaker,
    Client,
    FaultPlan,
    ReasoningServer,
    RetryingClient,
    RetryPolicy,
    ServeConfig,
)

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve_resilience.json"

SCHEMA = "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
MVD = "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
HOT_PROBE = "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"

HOT_REQUESTS = 400       # hot-path requests per timed round
PAIRED_ROUNDS = 9        # interleaved plain/retrying rounds
CHAOS_REQUESTS = 300     # hot requests under the 10% overload plan
OVERHEAD_TARGET_PCT = 1.0    # the documented goal for the fast path
OVERHEAD_ASSERT_PCT = 10.0   # the noise-tolerant hard bound

CHAOS_PLAN = {
    "seed": 7,
    "rules": [{"op": "implies", "kind": "error", "code": "overloaded",
               "p": 0.1}],
}


@contextlib.contextmanager
def _served(fault_plan=None):
    ready = threading.Event()
    box = {}

    def serve():
        async def main():
            config = ServeConfig(idle_ttl=None, workers=0,
                                 request_timeout=None, fault_plan=fault_plan)
            async with ReasoningServer(config) as server:
                box["server"] = server
                box["loop"] = asyncio.get_running_loop()
                box["address"] = server.address
                ready.set()
                await server._stopped.wait()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=10), "server thread failed to start"
    try:
        yield box["address"], box["server"]
    finally:
        box["loop"].call_soon_threadsafe(
            lambda: asyncio.ensure_future(box["server"].shutdown()))
        thread.join(timeout=10)


def _retrying(host, port):
    return RetryingClient.connect(
        host, port,
        policy=RetryPolicy(max_retries=10, base_delay=0.0005,
                           max_delay=0.005, deadline=60.0),
        breaker=CircuitBreaker(failure_threshold=10**6),
        rng=random.Random(0))


def _hot_round(client, requests=HOT_REQUESTS):
    """Time ``requests`` cache-hit implies calls; returns seconds."""
    started = time.perf_counter()
    for _ in range(requests):
        client.implies("bench", HOT_PROBE)
    return time.perf_counter() - started


def _measure_overhead():
    """Interleaved paired rounds: plain client vs retry wrapper."""
    with _served() as ((host, port), _server):
        with Client.connect(host, port) as plain, \
                _retrying(host, port) as wrapped:
            plain.open("bench", SCHEMA, [MVD])
            plain.implies("bench", HOT_PROBE)  # warm the session cache
            _hot_round(plain, 50)              # warm both code paths
            _hot_round(wrapped, 50)
            plain_times, wrapped_times = [], []
            for _ in range(PAIRED_ROUNDS):
                plain_times.append(_hot_round(plain))
                wrapped_times.append(_hot_round(wrapped))
            ratios = [w / p for p, w in zip(plain_times, wrapped_times)]
            assert not wrapped.counters, "no retries may fire fault-free"
    plain_s, wrapped_s = median(plain_times), median(wrapped_times)
    return {
        "requests_per_round": HOT_REQUESTS,
        "rounds": PAIRED_ROUNDS,
        "plain_qps": round(HOT_REQUESTS / plain_s, 1),
        "retrying_qps": round(HOT_REQUESTS / wrapped_s, 1),
        "overhead_pct": round((median(ratios) - 1.0) * 100.0, 3),
    }


def _measure_chaos_degradation():
    """Hot-path QPS with ~10% of implies answered ``overloaded``."""

    def qps(fault_plan):
        with _served(fault_plan) as ((host, port), server):
            with _retrying(host, port) as client:
                client.open("bench", SCHEMA, [MVD])
                client.implies("bench", HOT_PROBE)
                elapsed = _hot_round(client, CHAOS_REQUESTS)
                injected = server.counters["serve.fault.injected"]
                retries = client.counters["client.retry.attempts"]
        return round(CHAOS_REQUESTS / elapsed, 1), injected, retries

    fault_free_qps, _, _ = qps(None)
    chaos_qps, injected, retries = qps(
        FaultPlan.from_json(json.dumps(CHAOS_PLAN)))
    return {
        "requests": CHAOS_REQUESTS,
        "injected_overloads": injected,
        "client_retries": retries,
        "fault_free_qps": fault_free_qps,
        "chaos_qps": chaos_qps,
        "qps_ratio": round(chaos_qps / fault_free_qps, 3),
    }


def test_serve_resilience_report(benchmark):
    def measure():
        return {
            "hot_path_overhead": _measure_overhead(),
            "chaos_degradation": _measure_chaos_degradation(),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)

    report = {"serve_resilience": row,
              "overhead_target_pct": OVERHEAD_TARGET_PCT,
              "overhead_assert_pct": OVERHEAD_ASSERT_PCT,
              "chaos_plan": CHAOS_PLAN}
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    overhead = row["hot_path_overhead"]
    chaos = row["chaos_degradation"]
    print(f"\nserve resilience ({HOT_REQUESTS} hot requests/round, "
          f"{PAIRED_ROUNDS} paired rounds):")
    print(f"  plain    {overhead['plain_qps']:8.1f} qps")
    print(f"  retrying {overhead['retrying_qps']:8.1f} qps "
          f"({overhead['overhead_pct']:+.2f}% median paired overhead, "
          f"target <{OVERHEAD_TARGET_PCT:.0f}%)")
    print(f"  chaos    {chaos['chaos_qps']:8.1f} qps vs "
          f"{chaos['fault_free_qps']:8.1f} fault-free "
          f"(ratio {chaos['qps_ratio']:.3f}, "
          f"{chaos['injected_overloads']} injected, "
          f"{chaos['client_retries']} retries)")
    print(f"report written to {JSON_PATH.name}")

    # The wrapper's fault-free fast path must be within noise of the
    # plain client (the <1% goal is recorded; the bound is generous
    # because single-CPU CI boxes jitter loopback round-trips).
    assert overhead["overhead_pct"] <= OVERHEAD_ASSERT_PCT, overhead
    # Chaos bit and was healed: every request succeeded anyway.
    assert chaos["injected_overloads"] > 0, chaos
    assert chaos["client_retries"] >= chaos["injected_overloads"], chaos
    # 10% rejections with sub-millisecond backoff must not collapse
    # throughput — half the fault-free rate is already conservative.
    assert chaos["qps_ratio"] >= 0.3, chaos
