"""Membership throughput: worklist kernel + batch API vs the pre-PR paths.

Two workloads, matching the experiments the optimisation targets:

* **E7 (Theorem 6.4 scaling)** — the deterministic adversarial FD chain
  (`_workloads.chain_problem`), whose reversed firing order drives the
  naive kernel's REPEAT count to ~|Σ|; the worklist kernel re-fires only
  dependencies whose inputs changed.  Kernels are timed head-to-head at
  several sizes with the encoding memo caches cleared before each
  measurement (the pre-PR kernel had no memo layer at all, so warm
  caches would flatter the baseline, not the candidate).

* **E19-style query throughput** — a 60-query stream over 3 distinct
  left-hand sides (the `bench_reasoner_cache.py` shape) on the |N| = 48
  `mixed_family(12)` schema with a 24-dependency random Σ, answered the
  pre-PR way (one stateless naive-kernel closure per query, encoding
  memo caches cleared per query — the pre-PR encoding had no memo
  layer, and in-run warmth still flatters this baseline, so measured
  speedups are *under*-estimates) and through
  :class:`repro.batch.BulkReasoner` (one worklist closure per distinct
  LHS, everything else from the cache).  The original small Gene-schema
  stream is per-query-overhead bound (parse/validate dominates both
  paths), which is why the throughput criterion is assessed at a scale
  where closures carry the cost.

The measured speedups, together with the worklist kernel's
instrumentation counters, are written to
``BENCH_membership_throughput.json`` at the repository root; the shape
test asserts the ≥3× reproduction criterion on both workloads.

Run:  pytest benchmarks/bench_membership_throughput.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.batch import BulkReasoner
from repro.core.closure import closure_of_masks, compute_closure
from repro.core.engine import KernelStats, closure_of_masks_fast

from _workloads import chain_problem, sized_sigma

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_membership_throughput.json"

CHAIN_SCALES = (16, 24, 32)
SPEEDUP_TARGET = 3.0


def _best_of(fn, *args, budget_s: float = 0.5, setup=None) -> float:
    """Best-of-N wall time with an adaptive round count."""
    if setup is not None:
        setup()
    start = time.perf_counter()
    fn(*args)
    first = time.perf_counter() - start
    rounds = max(3, min(200, int(budget_s / max(first, 1e-9))))
    best = first
    for _ in range(rounds):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _measure_chain(stats: KernelStats) -> list[dict]:
    rows = []
    for scale in CHAIN_SCALES:
        encoding, x_mask, fd_masks, mvd_masks = chain_problem(scale)
        naive = closure_of_masks(encoding, x_mask, fd_masks, mvd_masks)
        fast = closure_of_masks_fast(encoding, x_mask, fd_masks, mvd_masks,
                                     stats=stats)
        assert naive[0] == fast[0] and naive[1] == fast[1], scale

        clear = encoding.cache_clear
        naive_s = _best_of(closure_of_masks, encoding, x_mask, fd_masks,
                           mvd_masks, setup=clear)
        fast_s = _best_of(closure_of_masks_fast, encoding, x_mask, fd_masks,
                          mvd_masks, setup=clear)
        rows.append({
            "scale": scale,
            "size": encoding.size,
            "naive_s": naive_s,
            "worklist_s": fast_s,
            "speedup": naive_s / fast_s,
        })
    return rows


def _e19_workload():
    """60 queries over 3 distinct LHSs on the |N| = 48 random-Σ schema."""
    from repro.dependencies.dependency import (
        FunctionalDependency,
        MultivaluedDependency,
    )

    encoding, sigma, _ = sized_sigma(12, 24)
    lhs_masks = [
        encoding.down_close(1),
        encoding.down_close(1 << (encoding.size // 2)),
        encoding.down_close((1 << (encoding.size - 1)) | 1),
    ]
    rhs_masks = [
        encoding.down_close(((1 << (3 + 2 * k)) - 1) & encoding.full)
        for k in range(10)
    ]
    queries = []
    for lhs_mask in lhs_masks:
        lhs = encoding.decode(lhs_mask)
        for rhs_mask in rhs_masks:
            rhs = encoding.decode(rhs_mask)
            queries.append((FunctionalDependency(lhs, rhs), lhs_mask, rhs_mask))
            queries.append((MultivaluedDependency(lhs, rhs), lhs_mask, rhs_mask))
    return encoding, sigma, queries


def _measure_throughput() -> dict:
    from repro import Schema
    from repro.dependencies.dependency import FunctionalDependency

    encoding, sigma, queries = _e19_workload()

    def baseline() -> int:
        # Pre-PR shape: one stateless naive-kernel closure per query.
        # The per-query cache_clear models the pre-PR encoding, which
        # had no memo layer (in-run warmth still makes this baseline
        # faster than the real pre-PR code, so the speedup reported
        # here is an under-estimate).
        answered = 0
        for dependency, lhs_mask, rhs_mask in queries:
            encoding.cache_clear()
            result = compute_closure(encoding, lhs_mask, sigma, kernel="naive")
            if isinstance(dependency, FunctionalDependency):
                answered += result.implies_fd_rhs(rhs_mask)
            else:
                answered += result.implies_mvd_rhs(rhs_mask)
        return answered

    schema = Schema(encoding.root)

    def batched() -> int:
        bulk = BulkReasoner(schema, sigma)
        return sum(bulk.implies_all([q for q, _, _ in queries]))

    assert baseline() == batched()
    baseline_s = _best_of(baseline)
    batch_s = _best_of(batched, setup=encoding.cache_clear)
    return {
        "queries": len(queries),
        "distinct_lhs": len({lhs_mask for _, lhs_mask, _ in queries}),
        "size": encoding.size,
        "baseline_s": baseline_s,
        "batch_s": batch_s,
        "speedup": baseline_s / batch_s,
        "batch_queries_per_s": len(queries) / batch_s,
    }


def test_membership_throughput_report(benchmark):
    stats = KernelStats()

    def sweep():
        return _measure_chain(stats), _measure_throughput()

    chain_rows, throughput = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = {
        "experiments": {"e7_chain": chain_rows, "e19_throughput": throughput},
        "speedup_target": SPEEDUP_TARGET,
        "kernel_stats": stats.as_dict(),
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print("\nE7 chain (naive kernel vs worklist kernel, cold memo caches):")
    for row in chain_rows:
        print(f"  scale={row['scale']:3d} |N|={row['size']:4d} "
              f"naive={row['naive_s'] * 1e3:8.2f}ms "
              f"worklist={row['worklist_s'] * 1e3:8.2f}ms "
              f"speedup={row['speedup']:5.1f}x")
    print(f"E19 throughput ({throughput['queries']} queries, "
          f"{throughput['distinct_lhs']} distinct LHSs): "
          f"stateless-naive={throughput['baseline_s'] * 1e3:.2f}ms "
          f"batch={throughput['batch_s'] * 1e3:.2f}ms "
          f"speedup={throughput['speedup']:.1f}x")
    print(f"report written to {JSON_PATH.name}")

    # The reproduction criterion: ≥3× on the headline size of each
    # workload (smaller chain scales have less re-firing to elide).
    assert chain_rows[-1]["speedup"] >= SPEEDUP_TARGET, chain_rows
    assert throughput["speedup"] >= SPEEDUP_TARGET, throughput
