"""Compiled Σ plans: one-time dependency compilation for Algorithm 5.1.

Every closure run needs the same per-Σ structure: the FDs-then-MVDs
dependency array, the relevance mask ``SubB(U) ∪ SubB(V)`` per
dependency, and the per-dependency right-hand-side constants the firing
rules recompute on every productive pass.  All of it is invariant for
the life of a ``(encoding, Σ)`` pair, so :func:`compile_plan` derives it
**once** into a :class:`CompiledPlan` — a frozen, picklable artifact the
worklist kernel (:func:`repro.core.engine.closure_of_masks_fast`),
:class:`repro.core.session.Session`, the :mod:`repro.batch` pool workers
and the :mod:`repro.serve` offload workers all consume.

The plan holds three things:

1. **Folded dependency arrays.**  Σ in the kernels' FDs-then-MVDs firing
   order with *exact duplicates* (same ``(U, V)`` masks, same kind)
   folded to their first occurrence.  Duplicates cannot change the
   fixpoint — Algorithm 5.1's output is the semantic ``(X⁺, DepB(X))``
   and ``Σ`` is logically a set — so firing each distinct dependency
   once per dirty wave is bit-identical on ``(X⁺, DB, passes)``.  The
   ``origin`` remap (folded position → first original index) keeps
   ``ClosureResult.fired`` provenance in the *original* Σ indexing, and
   ``folded_of`` (original index → folded position) maps warm-start
   pending lists the other way.

2. **The inverted requeue index.**  ``requeue_masks[bit]`` is an int
   bitmask over folded positions of every dependency whose relevance
   mask contains that basis bit.  The kernel's requeue step ORs the
   masks of the dirty bits and wakes exactly those positions —
   ``O(popcount(dirty))`` index lookups instead of the ``O(|Σ|)``
   ``enumerate(relevance)`` scan per dirty event.

3. **Per-dependency Ū = 0 constants.**  When ``Ū = λ`` (the common case
   once ``X_new`` covers a left-hand side), ``Ṽ = V ∸ λ`` and everything
   the firing derives from it is a per-dependency constant: the FD
   rule's RHS double-complement and its ``MaxB(Ṽ^CC)`` singleton blocks
   (with their non-CC-closed *suspects*), and the MVD rule's mixed-meet
   overlap ``Ṽ ⊓ Ṽ^C``.

Every field is an ``int`` or a tuple built in deterministic order, so
compiling the same Σ twice produces **byte-identical pickles** — the
property the serve workers' ``(epoch, generation)`` memo and the CI
determinism smoke rely on.

:class:`ClosureIntervalCache` rides on top: a bounded
``x_mask → closure_mask`` memo that can answer a *miss* ``X`` without
any kernel run whenever some cached ``X'`` satisfies ``X' ≤ X ≤ X'⁺``.
The closure operator of a fixed Σ is extensive, monotone and idempotent
(it is the algebraic closure operator of Proposition 4.10), so::

    X' ≤ X        ⇒  X'⁺ ≤ X⁺        (monotone)
    X  ≤ X'⁺      ⇒  X⁺  ≤ X'⁺⁺ = X'⁺ (monotone + idempotent)

forces ``X⁺ = X'⁺``.  The rule is valid for everything derived from
``X⁺`` alone — FD membership, closures, superkey tests — but **not**
for the dependency basis: ``DepB(X) ⊇ SubB(X⁺)`` also depends on the
block partition of ``X`` itself (``DB`` distinguishes ``X`` from ``X'``
even when their closures coincide), so blocks are only served on
exact-mask hits, which the session's result cache already handles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple, Sequence

from ..attributes.encoding import BasisEncoding, iter_bits
from ..obs import get_observer

__all__ = [
    "ClosureIntervalCache",
    "CompiledPlan",
    "PlanCacheInfo",
    "compile_plan",
]


class CompiledPlan:
    """Frozen per-``(encoding, Σ)`` compilation artifact (see module doc).

    Attributes
    ----------
    encoding:
        The :class:`BasisEncoding` the masks are relative to (pickles as
        its root; tables are rebuilt on unpickle).
    fd_masks / mvd_masks:
        The *original* (unfolded) ``(lhs, rhs)`` mask pairs, in Σ order —
        what :func:`repro.core.closure._as_mask_sigma` would produce.
    deps:
        Folded ``(u, v, is_fd)`` triples, FDs first, first-occurrence
        order.
    fd_count:
        Number of folded FD positions (``deps[:fd_count]`` are FDs).
    origin:
        Folded position → first original FDs-then-MVDs index (provenance
        remap).
    folded_of:
        Original FDs-then-MVDs index → folded position (warm-start
        pending remap).
    requeue_masks:
        Per basis bit, an int bitmask over folded positions whose
        relevance mask ``u | v`` contains the bit.
    rhs_tilde:
        Per folded position, ``V ∸ λ`` — the Ṽ of a Ū = 0 firing.
    rhs_dc:
        Per folded FD position, ``Ṽ^CC`` (``None`` for MVDs).
    rhs_singletons:
        Per folded FD position, the ``MaxB(Ṽ^CC)`` singleton block masks
        the firing inserts (``None`` for MVDs).
    rhs_suspects:
        The non-CC-closed subset of ``rhs_singletons`` — blocks the next
        FD firing must re-normalise (``None`` for MVDs).
    rhs_overlap:
        Per folded MVD position, the mixed-meet overlap ``Ṽ ⊓ Ṽ^C``
        (``None`` for FDs).
    """

    __slots__ = (
        "encoding", "fd_masks", "mvd_masks", "deps", "fd_count",
        "origin", "folded_of", "requeue_masks", "rhs_tilde", "rhs_dc",
        "rhs_singletons", "rhs_suspects", "rhs_overlap",
    )

    def __init__(self, encoding: BasisEncoding,
                 fd_masks: tuple, mvd_masks: tuple, deps: tuple,
                 fd_count: int, origin: tuple, folded_of: tuple,
                 requeue_masks: tuple, rhs_tilde: tuple, rhs_dc: tuple,
                 rhs_singletons: tuple, rhs_suspects: tuple,
                 rhs_overlap: tuple) -> None:
        self.encoding = encoding
        self.fd_masks = fd_masks
        self.mvd_masks = mvd_masks
        self.deps = deps
        self.fd_count = fd_count
        self.origin = origin
        self.folded_of = folded_of
        self.requeue_masks = requeue_masks
        self.rhs_tilde = rhs_tilde
        self.rhs_dc = rhs_dc
        self.rhs_singletons = rhs_singletons
        self.rhs_suspects = rhs_suspects
        self.rhs_overlap = rhs_overlap

    # Plans are conceptually immutable; pickling rebuilds through
    # __init__ with the all-tuple state, so equal plans pickle to equal
    # bytes (the encoding contributes only its root).
    def __reduce__(self):
        return (CompiledPlan, tuple(getattr(self, name)
                                    for name in self.__slots__))

    @property
    def fd_total(self) -> int:
        """Number of *original* (unfolded) FDs."""
        return len(self.fd_masks)

    @property
    def mvd_total(self) -> int:
        """Number of *original* (unfolded) MVDs."""
        return len(self.mvd_masks)

    @property
    def sigma_size(self) -> int:
        """``|Σ|`` before folding."""
        return len(self.fd_masks) + len(self.mvd_masks)

    def __len__(self) -> int:
        """Number of folded firing positions."""
        return len(self.deps)

    def _constants_memo(self) -> dict:
        """``(u, v, is_fd) → per-dep constants`` for incremental reuse."""
        memo = {}
        for position, key in enumerate(self.deps):
            memo[key] = (self.rhs_tilde[position], self.rhs_dc[position],
                         self.rhs_singletons[position],
                         self.rhs_suspects[position],
                         self.rhs_overlap[position])
        return memo

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(|Σ|={self.sigma_size}, folded={len(self.deps)}, "
            f"fds={self.fd_total}, mvds={self.mvd_total}, "
            f"size={self.encoding.size})"
        )


def _dep_constants(encoding: BasisEncoding, v_mask: int, is_fd: bool):
    """The Ū = 0 firing constants for one dependency."""
    v_tilde = encoding.pseudo_difference(v_mask, 0)
    if not is_fd:
        overlap = v_tilde & encoding.complement(v_tilde)
        return (v_tilde, None, None, None, overlap)
    dc = encoding.double_complement(v_tilde)
    singletons = []
    suspects = []
    below = encoding.below
    for index in iter_bits(encoding.maximal_of(dc)):
        singleton = below[index]
        singletons.append(singleton)
        if encoding.double_complement(singleton) != singleton:
            suspects.append(singleton)
    return (v_tilde, dc, tuple(singletons), tuple(suspects), None)


def compile_plan(encoding: BasisEncoding,
                 fd_masks: Sequence[tuple[int, int]],
                 mvd_masks: Sequence[tuple[int, int]],
                 *, reuse: CompiledPlan | None = None) -> CompiledPlan:
    """Compile ``(encoding, Σ)`` mask tables into a :class:`CompiledPlan`.

    ``reuse`` makes recompilation incremental: per-dependency constants
    are carried over from a previous plan for every ``(u, v, kind)``
    that survives the edit, so a ``Session.add``/``retract`` recompile
    only derives constants for the dependencies it actually changed
    (the index arrays are rebuilt — they are cheap ``O(|Σ| · popcount)``
    integer work).  Emits a ``plan.compile`` span and a ``plan.compiles``
    counter when an observer is installed.
    """
    obs = get_observer()
    if not obs.enabled:
        return _compile(encoding, fd_masks, mvd_masks, reuse)
    with obs.span("plan.compile", size=encoding.size,
                  sigma=len(fd_masks) + len(mvd_masks),
                  fds=len(fd_masks), mvds=len(mvd_masks),
                  incremental=reuse is not None) as span:
        plan = _compile(encoding, fd_masks, mvd_masks, reuse)
        span.set(folded=len(plan.deps))
    obs.metrics.add("plan.compiles")
    return plan


def _compile(encoding: BasisEncoding,
             fd_masks: Sequence[tuple[int, int]],
             mvd_masks: Sequence[tuple[int, int]],
             reuse: CompiledPlan | None) -> CompiledPlan:
    memo = reuse._constants_memo() if reuse is not None else {}

    deps: list[tuple[int, int, bool]] = []
    origin: list[int] = []
    folded_of: list[int] = []
    seen: dict[tuple[int, int, bool], int] = {}
    fd_count = 0

    pairs = [(u, v, True) for (u, v) in fd_masks]
    pairs += [(u, v, False) for (u, v) in mvd_masks]
    for index, key in enumerate(pairs):
        position = seen.get(key)
        if position is None:
            position = len(deps)
            seen[key] = position
            deps.append(key)
            origin.append(index)
            if key[2]:
                fd_count += 1
        folded_of.append(position)

    requeue_masks = [0] * encoding.size
    for position, (u, v, _is_fd) in enumerate(deps):
        bit = 1 << position
        for i in iter_bits(u | v):
            requeue_masks[i] |= bit

    rhs_tilde: list[int] = []
    rhs_dc: list[int | None] = []
    rhs_singletons: list[tuple[int, ...] | None] = []
    rhs_suspects: list[tuple[int, ...] | None] = []
    rhs_overlap: list[int | None] = []
    for key in deps:
        constants = memo.get(key)
        if constants is None:
            constants = _dep_constants(encoding, key[1], key[2])
        v_tilde, dc, singletons, suspects, overlap = constants
        rhs_tilde.append(v_tilde)
        rhs_dc.append(dc)
        rhs_singletons.append(singletons)
        rhs_suspects.append(suspects)
        rhs_overlap.append(overlap)

    return CompiledPlan(
        encoding,
        tuple(tuple(pair) for pair in fd_masks),
        tuple(tuple(pair) for pair in mvd_masks),
        tuple(deps), fd_count, tuple(origin), tuple(folded_of),
        tuple(requeue_masks), tuple(rhs_tilde), tuple(rhs_dc),
        tuple(rhs_singletons), tuple(rhs_suspects), tuple(rhs_overlap),
    )


class PlanCacheInfo(NamedTuple):
    """Counters of one :class:`ClosureIntervalCache`."""

    exact_hits: int
    interval_hits: int
    misses: int
    entries: int


class ClosureIntervalCache:
    """Bounded ``x_mask → closure_mask`` memo with interval answering.

    :meth:`lookup` serves an exact-mask hit directly, otherwise scans
    for a cached ``X'`` with ``X' ≤ X ≤ X'⁺`` — which forces
    ``X⁺ = X'⁺`` by monotonicity + idempotence of the closure operator
    (module doc).  Entries must all be fixpoints of the *current* Σ:
    the owner clears the cache on every Σ edit (closures grow on ``add``
    and shrink on ``retract``, so stale entries are wrong in both
    directions).  Counters survive :meth:`clear` (they describe the
    session's lifetime traffic) and reset with :meth:`reset`.

    Eviction is LRU on exact hits, FIFO otherwise, bounded by
    ``maxsize`` entries; the interval scan is ``O(entries)`` per miss,
    so the bound also caps the scan cost.
    """

    __slots__ = ("maxsize", "exact_hits", "interval_hits", "misses",
                 "_entries")

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self.exact_hits = 0
        self.interval_hits = 0
        self.misses = 0
        self._entries: OrderedDict[int, int] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, x_mask: int) -> int | None:
        """``X⁺`` if the cache can answer ``x_mask``, else ``None``."""
        entries = self._entries
        cached = entries.get(x_mask)
        if cached is not None:
            self.exact_hits += 1
            entries.move_to_end(x_mask)
            get_observer().add("plan.cache.exact_hits")
            return cached
        for x_prime, x_prime_plus in entries.items():
            # X' ≤ X ≤ X'⁺  ⇒  X⁺ = X'⁺ (monotone + idempotent).
            if not (x_prime & ~x_mask) and not (x_mask & ~x_prime_plus):
                self.interval_hits += 1
                get_observer().add("plan.cache.interval_hits")
                return x_prime_plus
        self.misses += 1
        get_observer().add("plan.cache.misses")
        return None

    def store(self, x_mask: int, closure_mask: int) -> None:
        """Record the fixpoint ``x_mask⁺ = closure_mask``."""
        entries = self._entries
        entries[x_mask] = closure_mask
        entries.move_to_end(x_mask)
        while len(entries) > self.maxsize:
            entries.popitem(last=False)

    def discard(self, x_mask: int) -> None:
        """Forget one entry (the owner evicted the full result for it)."""
        self._entries.pop(x_mask, None)

    def clear(self) -> None:
        """Drop the entries (Σ edited); counters keep accumulating."""
        self._entries.clear()

    def reset(self) -> None:
        """Drop entries *and* counters (the ``cache_clear`` contract)."""
        self.clear()
        self.exact_hits = 0
        self.interval_hits = 0
        self.misses = 0

    def info(self) -> PlanCacheInfo:
        return PlanCacheInfo(self.exact_hits, self.interval_hits,
                             self.misses, len(self._entries))

    def __repr__(self) -> str:
        return (
            f"ClosureIntervalCache(entries={len(self._entries)}, "
            f"exact_hits={self.exact_hits}, "
            f"interval_hits={self.interval_hits}, misses={self.misses})"
        )
