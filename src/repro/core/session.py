"""Session: the first-class ``(N, Σ, encoding, engine, caches)`` object.

Section 1.3 of the paper names iterative schema design — equivalence
checking, redundancy elimination, minimal covers — as the payoff of the
membership algorithm.  All of those workflows *edit* Σ: they drop a
candidate dependency, re-ask a few membership questions, and either keep
the smaller set or put the dependency back.  Before this module every
edit meant a fresh kernel run per query; a :class:`Session` instead owns
the Σ lifecycle and keeps its per-left-hand-side closure cache **live
across edits** using two pieces of kernel support
(:mod:`repro.core.engine` / :mod:`repro.core.closure`):

* **Warm starts** — :meth:`Session.add` keeps every cached
  ``(X⁺, DB)``.  The next query for a cached ``X`` resumes the monotone
  fixpoint from the cached state with only the *new* dependencies in the
  worklist, which is sound because the cached state is the fixpoint of
  the old Σ (a subset of the new one) and Algorithm 5.1's fixpoint is
  reached from any intermediate state between ``X`` and ``X⁺``.

* **Provenance-tracked retraction** — every cached result records which
  Σ-members actually *fired productively* into it (``ClosureResult.fired``).
  :meth:`Session.retract` evicts exactly the entries whose provenance
  contains the retracted dependency: an absent dependency only ever
  fired as a no-op (``Ṽ = λ`` or an identity rewrite), so the run
  without it reaches the identical fixpoint and the cached result is
  still correct.  A redundancy sweep over Σ therefore shares one cache
  across *all* candidate covers instead of recomputing per candidate —
  see ``benchmarks/bench_incremental_cover.py`` for the measured effect.

The engine is picked from the :mod:`repro.core.engines` registry and can
be switched mid-session (:meth:`set_engine`); engines without warm-start
support (the structural ``reference`` oracle) silently fall back to cold
recomputes, so every engine answers every query correctly.

:class:`repro.reasoner.Reasoner` is a thin façade over a Session with
``label="reasoner"`` (preserving its historical counter names and span
names); :mod:`repro.core.membership` and :mod:`repro.normalization`
drive retraction sessions internally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from ..attributes.encoding import BasisEncoding
from ..attributes.nested import NestedAttribute
from ..attributes.parser import parse_attribute, parse_subattribute
from ..attributes.printer import unparse
from ..dependencies.dependency import (
    Dependency,
    FunctionalDependency,
    MultivaluedDependency,
    parse_dependency,
)
from ..dependencies.sigma import DependencySet
from ..obs import get_observer
from .closure import ClosureResult
from .engine import KernelStats
from .engines import Engine, get_engine
from .plan import ClosureIntervalCache, CompiledPlan, PlanCacheInfo, compile_plan

__all__ = ["Session", "SessionCacheInfo"]


class SessionCacheInfo(tuple):
    """Session cache statistics; compares and unpacks as ``(computed, hits)``.

    Mirrors :class:`repro.reasoner.ReasonerCacheInfo` (the façade builds
    one from the other) and adds the incremental-editing counters:
    ``warm_starts`` (queries resumed from a smaller-Σ fixpoint),
    ``invalidations`` (entries evicted by :meth:`Session.retract`
    because the retracted dependency was in their provenance) and
    ``retained`` (entries that survived a retraction because it was
    not).  ``plan`` carries the session's
    :class:`~repro.core.plan.PlanCacheInfo` — the closure-interval-cache
    counters (exact/interval/miss).
    """

    def __new__(cls, computed: int, hits: int, *, warm_starts: int = 0,
                evictions: int = 0, invalidations: int = 0, retained: int = 0,
                maxsize: int | None = None, engine: str = "worklist",
                encoding=None, kernel: KernelStats | None = None,
                plan: PlanCacheInfo | None = None,
                ) -> "SessionCacheInfo":
        self = super().__new__(cls, (computed, hits))
        self.warm_starts = warm_starts
        self.evictions = evictions
        self.invalidations = invalidations
        self.retained = retained
        self.maxsize = maxsize
        self.engine = engine
        self.encoding = encoding
        self.kernel = kernel
        self.plan = plan
        return self

    @property
    def computed(self) -> int:
        return self[0]

    @property
    def hits(self) -> int:
        return self[1]

    def __repr__(self) -> str:
        return (
            f"SessionCacheInfo(computed={self[0]}, hits={self[1]}, "
            f"warm_starts={self.warm_starts}, evictions={self.evictions}, "
            f"invalidations={self.invalidations}, retained={self.retained}, "
            f"maxsize={self.maxsize}, engine={self.engine!r})"
        )


class _CacheEntry:
    """One cached left-hand side.

    ``provenance`` is the set of Σ-members (as :class:`Dependency`
    objects, *not* indices — indices shift when Σ changes because the
    kernels fire FDs before MVDs) that productively fired into
    ``result``.  ``sigma_keys`` is the Σ snapshot the result is current
    for; dependencies added since then are exactly
    ``Σ − sigma_keys`` and form the pending worklist of the next warm
    start.
    """

    __slots__ = ("result", "provenance", "sigma_keys")

    def __init__(self, result: ClosureResult, provenance: set[Dependency],
                 sigma_keys: set[Dependency]) -> None:
        self.result = result
        self.provenance = provenance
        self.sigma_keys = sigma_keys


class Session:
    """A mutable-Σ reasoning session with an incrementally-maintained cache.

    Parameters
    ----------
    root:
        The ambient nested attribute ``N`` (object or paper notation).
    sigma:
        Initial dependencies — a :class:`DependencySet`, or an iterable
        of dependency objects / ``"X -> Y"`` texts.
    engine:
        Engine name from :func:`repro.core.engines.available_engines`
        (``None`` → the registry default, normally ``"worklist"``).
    encoding:
        Optional pre-built :class:`BasisEncoding` to share (validated
        against ``root``).
    maxsize:
        Optional LRU cap on cached left-hand sides.
    stats:
        Optional external :class:`KernelStats` accumulator; a private
        one is created when omitted.
    label:
        Prefix for observability counter/span names (``"session"`` by
        default; the Reasoner façade passes ``"reasoner"`` to keep its
        historical ``reasoner.*`` telemetry).

    Example
    -------
    >>> from repro.core.session import Session
    >>> s = Session("Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
    ...             ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"])
    >>> s.implies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])")
    True
    >>> s.add("Pubcrawl(Visit[λ]) -> Pubcrawl(Person)")
    True
    >>> s.implies("Pubcrawl(Visit[λ]) ->> Pubcrawl(Visit[Drink(Pub)])")
    True
    >>> s.retract("Pubcrawl(Visit[λ]) -> Pubcrawl(Person)").display(s.root)
    'Pubcrawl(Visit[λ]) -> Pubcrawl(Person)'
    >>> len(s.sigma)
    1
    """

    def __init__(self, root: NestedAttribute | str,
                 sigma: DependencySet | Iterable = (), *,
                 engine: str | None = None,
                 encoding: BasisEncoding | None = None,
                 maxsize: int | None = None,
                 stats: KernelStats | None = None,
                 label: str = "session") -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be None or >= 1, got {maxsize!r}")
        self.root = parse_attribute(root) if isinstance(root, str) else root
        self.encoding = BasisEncoding.of(self.root, encoding)
        self.maxsize = maxsize
        self.kernel_stats = stats if stats is not None else KernelStats()
        self._label = label
        self._engine = get_engine(engine)
        self._deps: list[Dependency] = []
        self._dep_set: set[Dependency] = set()
        # Plan + interval-cache state must exist before the initial adds
        # below: add() invalidates views on every insertion.
        self._plan: CompiledPlan | None = None
        self._plan_reuse: CompiledPlan | None = None
        self._interval = ClosureIntervalCache()
        for dependency in sigma:
            self.add(dependency)
        self._entries: OrderedDict[int, _CacheEntry] = OrderedDict()
        self._hits = 0
        self._warm_starts = 0
        self._evictions = 0
        self._invalidations = 0
        self._retained = 0
        self._tables: tuple[list[tuple[int, int]], list[tuple[int, int]],
                            list[Dependency]] | None = None
        self._sigma_view: DependencySet | None = None

    # -- parsing helpers -----------------------------------------------------

    def attribute(self, x: NestedAttribute | str) -> NestedAttribute:
        """Resolve (possibly abbreviated) subattribute notation."""
        if isinstance(x, NestedAttribute):
            return x
        return parse_subattribute(x, self.root)

    def dependency(self, dependency: Dependency | str) -> Dependency:
        """Parse one ``"X -> Y"`` / ``"X ->> Y"`` dependency."""
        if isinstance(dependency, (FunctionalDependency, MultivaluedDependency)):
            return dependency
        return parse_dependency(dependency, self.root)

    # -- Σ views -------------------------------------------------------------

    @property
    def sigma(self) -> DependencySet:
        """The current Σ as an immutable :class:`DependencySet` snapshot."""
        if self._sigma_view is None:
            self._sigma_view = DependencySet(self.root, self._deps)
        return self._sigma_view

    @property
    def dependencies(self) -> tuple[Dependency, ...]:
        """The current Σ members in insertion order."""
        return tuple(self._deps)

    def __len__(self) -> int:
        return len(self._deps)

    def snapshot_state(self) -> dict:
        """The session's durable state as plain JSON-ready strings.

        The exact encoding :mod:`repro.store` snapshots persist: the
        schema as its canonical unparse and Σ as member displays in
        insertion order — both re-parse through the same code paths a
        wire ``open`` uses, so a recovered session is bit-identical to
        the live one it snapshots.
        """
        return {"schema": unparse(self.root),
                "dependencies": [dependency.display(self.root)
                                 for dependency in self._deps],
                "engine": self._engine.name}

    def __contains__(self, dependency: Dependency) -> bool:
        return dependency in self._dep_set

    # -- engine --------------------------------------------------------------

    @property
    def engine(self) -> Engine:
        """The engine answering this session's queries."""
        return self._engine

    def set_engine(self, name: str | None) -> Engine:
        """Switch engines mid-session; returns the new engine.

        Cached results stay valid (all engines are bit-identical); only
        warm-start behaviour changes with the engine's capability.
        """
        self._engine = get_engine(name)
        return self._engine

    # -- Σ editing -----------------------------------------------------------

    def add(self, dependency: Dependency | str) -> bool:
        """Add a dependency to Σ; returns False if already present.

        No cache entry is dropped: each one records its Σ snapshot
        (``sigma_keys``) and the next query against it warm-starts the
        fixpoint with the missing dependencies as the pending worklist.
        """
        dependency = self.dependency(dependency)
        dependency.validate(self.root)
        if dependency in self._dep_set:
            return False
        self._deps.append(dependency)
        self._dep_set.add(dependency)
        self._invalidate_views()
        obs = get_observer()
        if obs.enabled:
            with obs.span(f"{self._label}.add",
                          dependency=dependency.display(self.root),
                          sigma=len(self._deps)):
                pass
        return True

    def retract(self, dependency: Dependency | str) -> Dependency:
        """Remove a dependency from Σ; returns the removed member.

        Eviction is provenance-exact: an entry is dropped iff the
        retracted dependency productively fired into its cached result.
        All other entries are *retained* — their fixpoint provably does
        not depend on the retracted member — and merely forget it from
        their Σ snapshot (so a later re-add shows up as pending again).

        Raises
        ------
        ValueError
            If the dependency is not a member of Σ.
        """
        dependency = self.dependency(dependency)
        if dependency not in self._dep_set:
            raise ValueError(
                f"the dependency {dependency.display(self.root)} "
                f"is not a member of Σ"
            )
        self._deps.remove(dependency)
        self._dep_set.discard(dependency)
        self._invalidate_views()
        evicted = 0
        retained = 0
        for mask in list(self._entries):
            entry = self._entries[mask]
            if dependency in entry.provenance:
                del self._entries[mask]
                evicted += 1
            else:
                entry.sigma_keys.discard(dependency)
                retained += 1
        self._invalidations += evicted
        self._retained += retained
        obs = get_observer()
        if obs.enabled:
            obs.add(f"{self._label}.cache.invalidations", evicted)
            with obs.span(f"{self._label}.retract",
                          dependency=dependency.display(self.root),
                          sigma=len(self._deps)) as span:
                span.set(evicted=evicted, retained=retained)
        return dependency

    def _invalidate_views(self) -> None:
        self._tables = None
        self._sigma_view = None
        # The compiled plan is stale, but its per-dependency constants
        # survive for every Σ-member the edit kept: stash it so the next
        # compile is incremental.  Interval entries are fixpoints of the
        # *old* Σ — wrong in both directions (closures grow on add,
        # shrink on retract) — so they are dropped outright.
        if self._plan is not None:
            self._plan_reuse = self._plan
            self._plan = None
        self._interval.clear()

    def _mask_tables(self) -> tuple[list[tuple[int, int]],
                                    list[tuple[int, int]], list[Dependency]]:
        """``(fd_masks, mvd_masks, ordered)`` for the current Σ.

        ``ordered`` lists Σ in the kernels' FDs-then-MVDs firing order,
        so a kernel-reported firing index ``i`` names ``ordered[i]`` —
        the per-call index↔Dependency mapping that keeps provenance
        valid across Σ edits (raw indices shift when an FD is added
        after MVDs exist).
        """
        tables = self._tables
        if tables is None:
            encode = self.encoding.encode
            fds = [d for d in self._deps if isinstance(d, FunctionalDependency)]
            mvds = [d for d in self._deps
                    if not isinstance(d, FunctionalDependency)]
            fd_masks = [(encode(d.lhs), encode(d.rhs)) for d in fds]
            mvd_masks = [(encode(d.lhs), encode(d.rhs)) for d in mvds]
            tables = (fd_masks, mvd_masks, fds + mvds)
            self._tables = tables
        return tables

    @property
    def plan(self) -> CompiledPlan:
        """The session's :class:`CompiledPlan` for the current Σ.

        Compiled lazily on first use after an edit; recompilation is
        incremental — per-dependency constants are reused from the
        previous plan for every Σ-member the edit kept (see
        :func:`repro.core.plan.compile_plan`).  The batch pool and the
        serve offload workers ship this object, pickled, once per
        ``(session, epoch, generation)``.
        """
        plan = self._plan
        if plan is None:
            fd_masks, mvd_masks, _ = self._mask_tables()
            plan = compile_plan(self.encoding, fd_masks, mvd_masks,
                                reuse=self._plan_reuse)
            self._plan = plan
            self._plan_reuse = None
        return plan

    # -- the cache -----------------------------------------------------------

    def result_for(self, x: NestedAttribute | str) -> ClosureResult:
        """The (cached, possibly warm-started) result for left-hand side ``x``."""
        return self.result_for_mask(self.encoding.encode(self.attribute(x)))

    def result_for_mask(self, mask: int) -> ClosureResult:
        """Mask-level :meth:`result_for` (the batch API's entry point)."""
        entry = self._entries.get(mask)
        if entry is not None:
            if entry.sigma_keys == self._dep_set:
                self._hits += 1
                self._entries.move_to_end(mask)
                get_observer().add(f"{self._label}.cache.hits")
                return entry.result
            if self._engine.supports_warm_start:
                return self._resume(mask, entry)
            # The engine cannot resume a fixpoint; recompute cold (the
            # fresh result replaces the stale entry below).
        return self._compute(mask)

    def _run(self, mask: int, fired: set[int], warm_start, *, warm: bool,
             counter: str) -> tuple[int, frozenset[int], int]:
        fd_masks, mvd_masks, _ = self._mask_tables()
        plan = self.plan if self._engine.supports_plan else None
        obs = get_observer()
        if not obs.enabled:
            return self._engine.run(
                self.encoding, mask, fd_masks, mvd_masks,
                stats=self.kernel_stats, fired=fired, warm_start=warm_start,
                plan=plan,
            )
        obs.add(counter)
        with obs.span(f"{self._label}.query", lhs=format(mask, "#x"),
                      cached=False, engine=self._engine.name, warm=warm):
            return self._engine.run(
                self.encoding, mask, fd_masks, mvd_masks,
                stats=self.kernel_stats, fired=fired, warm_start=warm_start,
                plan=plan,
            )

    def _resume(self, mask: int, entry: _CacheEntry) -> ClosureResult:
        """Warm-start: extend the cached fixpoint by the pending Σ-members."""
        _fd_masks, _mvd_masks, ordered = self._mask_tables()
        pending = [i for i, d in enumerate(ordered)
                   if d not in entry.sigma_keys]
        self._warm_starts += 1
        fired: set[int] = set()
        cached = entry.result
        closure_mask, blocks, passes = self._run(
            mask, fired, (cached.closure_mask, cached.blocks, pending),
            warm=True, counter=f"{self._label}.cache.warm_starts",
        )
        result = ClosureResult(self.encoding, mask, closure_mask, blocks,
                               passes, frozenset(fired))
        entry.result = result
        # Everything that fired during the resume — pending members and
        # re-dirtied old ones alike — joins the provenance; the original
        # provenance stays (those firings shaped the state we resumed
        # from).
        entry.provenance.update(ordered[i] for i in fired)
        entry.sigma_keys = set(self._dep_set)
        self._entries.move_to_end(mask)
        self._interval.store(mask, result.closure_mask)
        return result

    def _compute(self, mask: int) -> ClosureResult:
        _fd_masks, _mvd_masks, ordered = self._mask_tables()
        fired: set[int] = set()
        closure_mask, blocks, passes = self._run(
            mask, fired, None,
            warm=False, counter=f"{self._label}.cache.misses",
        )
        result = ClosureResult(self.encoding, mask, closure_mask, blocks,
                               passes, frozenset(fired))
        provenance = {ordered[i] for i in fired}
        self._store(mask, _CacheEntry(result, provenance, set(self._dep_set)))
        return result

    def _store(self, mask: int, entry: _CacheEntry) -> None:
        self._entries[mask] = entry
        self._entries.move_to_end(mask)
        # Every freshly computed (or seeded) fixpoint also feeds the
        # interval cache — it is current for today's Σ by construction.
        self._interval.store(mask, entry.result.closure_mask)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                evicted_mask, _ = self._entries.popitem(last=False)
                # Keep the interval memo in lockstep with the bounded
                # result cache: an evicted LHS must be recomputed, not
                # answered from a memo the maxsize was meant to bound.
                self._interval.discard(evicted_mask)
                self._evictions += 1
                get_observer().add(f"{self._label}.cache.evictions")

    # -- prefetch hooks (the batch API) ---------------------------------------

    def is_cached(self, mask: int) -> bool:
        """Whether ``mask`` has a cache entry current for today's Σ."""
        entry = self._entries.get(mask)
        return entry is not None and entry.sigma_keys == self._dep_set

    def cached_masks(self) -> frozenset[int]:
        """The cached left-hand-side masks (current and stale alike)."""
        return frozenset(self._entries)

    def seed(self, mask: int, result: ClosureResult,
             fired: Iterable[int] | None = None) -> None:
        """Install an externally computed result (process-pool prefetch).

        ``fired`` carries the kernel's provenance indices in the current
        FDs-then-MVDs order; when the caller cannot supply one (nor does
        ``result.fired``), the conservative "all of Σ" provenance keeps
        retraction sound.
        """
        _fd_masks, _mvd_masks, ordered = self._mask_tables()
        if fired is None:
            fired = result.fired
        if fired is None:
            provenance = set(ordered)
        else:
            provenance = {ordered[i] for i in fired}
        self._store(mask, _CacheEntry(result, provenance, set(self._dep_set)))

    # -- queries -------------------------------------------------------------

    def closure_mask_for(self, mask: int) -> int:
        """``X⁺`` as a mask, answered as cheaply as possible.

        Resolution order: the full result cache (exact hit, current Σ —
        normal hit accounting), then the closure-interval cache (a
        cached ``X'`` with ``X' ≤ X ≤ X'⁺`` forces ``X⁺ = X'⁺`` without
        any kernel run), then a real computation.  Only closure-derived
        queries — FD membership, :meth:`closure`, :meth:`is_superkey` —
        may route through here: interval hits produce no blocks, and
        ``DepB(X)`` depends on ``X`` itself, not only on ``X⁺``, so
        basis queries always take :meth:`result_for_mask`.
        """
        entry = self._entries.get(mask)
        if entry is not None and entry.sigma_keys == self._dep_set:
            self._hits += 1
            self._entries.move_to_end(mask)
            get_observer().add(f"{self._label}.cache.hits")
            return entry.result.closure_mask
        cached = self._interval.lookup(mask)
        if cached is not None:
            return cached
        return self.result_for_mask(mask).closure_mask

    def implies(self, dependency: Dependency | str) -> bool:
        """Decide ``Σ ⊨ σ`` using the per-LHS cache (Proposition 4.10)."""
        dependency = self.dependency(dependency)
        dependency.validate(self.root)
        rhs_mask = self.encoding.encode(dependency.rhs)
        if isinstance(dependency, FunctionalDependency):
            # Σ ⊨ X → Y iff Y ≤ X⁺: closure-derived, interval-eligible.
            lhs_mask = self.encoding.encode(dependency.lhs)
            return rhs_mask & ~self.closure_mask_for(lhs_mask) == 0
        return self.result_for(dependency.lhs).implies_mvd_rhs(rhs_mask)

    def closure(self, x: NestedAttribute | str) -> NestedAttribute:
        """The attribute-set closure ``X⁺``."""
        mask = self.encoding.encode(self.attribute(x))
        return self.encoding.decode(self.closure_mask_for(mask))

    def dependency_basis(self, x: NestedAttribute | str
                         ) -> tuple[NestedAttribute, ...]:
        """The dependency basis ``DepB(X)``."""
        return self.result_for(x).dependency_basis()

    def is_superkey(self, x: NestedAttribute | str) -> bool:
        """Whether ``Σ ⊨ X → N``."""
        mask = self.encoding.encode(self.attribute(x))
        return self.closure_mask_for(mask) == self.encoding.full

    def implied_mvd_rhs_masks(self, x: NestedAttribute | str) -> frozenset[int]:
        """All DepB member masks — the generators of ``Dep(X)``."""
        return self.result_for(x).dependency_basis_masks()

    # -- statistics ----------------------------------------------------------

    def cache_info(self) -> SessionCacheInfo:
        """``(cached left-hand sides, hits)`` plus the incremental counters."""
        return SessionCacheInfo(
            len(self._entries), self._hits,
            warm_starts=self._warm_starts,
            evictions=self._evictions,
            invalidations=self._invalidations,
            retained=self._retained,
            maxsize=self.maxsize,
            engine=self._engine.name,
            encoding=self.encoding.cache_info(),
            kernel=self.kernel_stats,
            plan=self._interval.info(),
        )

    def cache_clear(self, *, encoding: bool = False) -> None:
        """Drop all cached results and reset the counters.

        Follows the library-wide contract (keyword-only flags, resets
        exactly what ``cache_info()`` reports, ``encoding=True``
        cascades to :meth:`BasisEncoding.cache_clear`).
        """
        self._entries.clear()
        self._hits = 0
        self._warm_starts = 0
        self._evictions = 0
        self._invalidations = 0
        self._retained = 0
        self._interval.reset()
        self.kernel_stats.reset()
        if encoding:
            self.encoding.cache_clear()

    def describe_stats(self) -> str:
        """Readable counter dump for the CLI/shell ``stats`` surfaces.

        The first/kernel/encoding lines keep the exact historical
        :meth:`repro.reasoner.Reasoner.describe_stats` format (the shell
        prints this through the façade); the ``session`` line adds the
        incremental-editing counters.
        """
        info = self.cache_info()
        kernel = info.kernel
        head_line = (
            f"{self._label}: computed={info.computed} hits={info.hits} "
            f"evictions={info.evictions}"
        )
        if info.maxsize is not None:
            head_line += f" maxsize={info.maxsize}"
        session_line = (
            f"session:  engine={info.engine} |Σ|={len(self._deps)} "
            f"warm_starts={info.warm_starts} "
            f"invalidations={info.invalidations} retained={info.retained}"
        )
        plan = info.plan
        plan_line = (
            f"plan:     exact_hits={plan.exact_hits} "
            f"interval_hits={plan.interval_hits} misses={plan.misses} "
            f"entries={plan.entries}"
        )
        kernel_line = (
            f"kernel:   runs={kernel.runs} passes={kernel.passes} "
            f"firings={kernel.firings} requeues={kernel.requeues} "
            f"scanned={kernel.requeue_scanned} "
            f"skipped={kernel.skipped_firings} "
            f"u_bar_lookups={kernel.u_bar_lookups} "
            f"u_bar_blocks={kernel.u_bar_blocks} "
            f"splits={kernel.block_splits} rewrites={kernel.db_rewrites}"
        )
        ops = ", ".join(
            f"{op}={hits}/{hits + misses}"
            for op, (hits, misses, _size, _maxsize)
            in sorted(info.encoding.items())
        )
        encoding_line = (
            f"encoding: {ops} (hit rate {info.encoding.hit_rate():.1%})"
        )
        return "\n".join((head_line, session_line, plan_line, kernel_line,
                          encoding_line))

    def __repr__(self) -> str:
        return (
            f"Session(root={self.root}, |Σ|={len(self._deps)}, "
            f"engine={self._engine.name!r}, cached={len(self._entries)}, "
            f"hits={self._hits})"
        )
