"""Step-by-step tracing of Algorithm 5.1 (reproduces Figures 3 and 4).

The paper walks Example 5.1 through the algorithm, printing after each
dependency application the new ``X_new`` and ``DB_new``; Figure 3 shows
the initial state and Figure 4 the final one.  A :class:`TraceRecorder`
passed to :func:`repro.core.closure.compute_closure` captures exactly
those states, and :meth:`TraceRecorder.render` prints them in the paper's
layout so the reproduction can be compared side by side with the text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dependencies.dependency import Dependency

if TYPE_CHECKING:  # pragma: no cover
    from ..attributes.encoding import BasisEncoding

__all__ = ["TraceRecorder", "TraceStep"]


@dataclass(frozen=True)
class TraceStep:
    """State after applying one dependency of Σ.

    Attributes
    ----------
    pass_number:
        1-based REPEAT-UNTIL iteration.
    dependency:
        The Σ-dependency applied (``None`` when the caller did not pass
        labels, e.g. in mask-level benchmarks).
    is_fd:
        Whether the FD loop (``True``) or the MVD loop produced this step.
    v_tilde:
        The reduced right-hand side ``Ṽ = V ∸ Ū`` (mask); ``0`` means the
        dependency was already absorbed and nothing happened.
    changed:
        Whether the state actually moved.
    x_new / db_new:
        The state after the step.
    """

    pass_number: int
    dependency: Dependency | None
    is_fd: bool
    v_tilde: int
    changed: bool
    x_new: int
    db_new: frozenset[int]


@dataclass
class TraceRecorder:
    """Collects the full state history of one Algorithm 5.1 run."""

    encoding: "BasisEncoding | None" = None
    initial_x: int = 0
    initial_db: frozenset[int] = frozenset()
    steps: list[TraceStep] = field(default_factory=list)
    final_x: int = 0
    final_db: frozenset[int] = frozenset()

    # -- hooks called by the algorithm -------------------------------------

    def initial(self, encoding: "BasisEncoding", x_mask: int,
                db: frozenset[int]) -> None:
        self.encoding = encoding
        self.initial_x = x_mask
        self.initial_db = db

    def step(self, pass_number: int, dependency: Dependency | None, is_fd: bool,
             v_tilde: int, changed: bool, x_new: int, db_new: frozenset[int]) -> None:
        self.steps.append(
            TraceStep(pass_number, dependency, is_fd, v_tilde, changed, x_new, db_new)
        )

    def final(self, x_mask: int, db: frozenset[int]) -> None:
        self.final_x = x_mask
        self.final_db = db

    # -- views ---------------------------------------------------------------

    @property
    def passes(self) -> int:
        """Number of REPEAT-UNTIL iterations recorded."""
        return max((step.pass_number for step in self.steps), default=0)

    def states_after_each_change(self) -> list[TraceStep]:
        """Only the steps where the state moved — the paper lists these."""
        return [step for step in self.steps if step.changed]

    def state_after(self, pass_number: int, dependency: Dependency) -> TraceStep:
        """The recorded state right after a given dependency application."""
        for step in self.steps:
            if step.pass_number == pass_number and step.dependency == dependency:
                return step
        raise KeyError(
            f"no trace step for pass {pass_number} and dependency {dependency}"
        )

    # -- rendering -------------------------------------------------------------

    def _describe_db(self, db: frozenset[int]) -> str:
        assert self.encoding is not None
        return "{" + "; ".join(
            self.encoding.describe(mask) for mask in sorted(db)
        ) + "}"

    def render(self) -> str:
        """The full trace in the paper's Example 5.1 layout."""
        if self.encoding is None:
            return "(empty trace)"
        encoding = self.encoding
        lines = [
            "Initialisation:",
            f"  X_new  = {encoding.describe(self.initial_x)}",
            f"  DB_new = {self._describe_db(self.initial_db)}",
        ]
        current_pass = 0
        for step in self.steps:
            if step.pass_number != current_pass:
                current_pass = step.pass_number
                lines.append(f"Pass {current_pass} through the REPEAT UNTIL loop:")
            arrow = "→" if step.is_fd else "↠"
            label = (
                step.dependency.display(encoding.root)
                if step.dependency is not None
                else f"({arrow} dependency)"
            )
            if not step.changed:
                lines.append(f"  {label}: no changes")
                continue
            lines.append(f"  {label}:")
            lines.append(f"    Ṽ      = {encoding.describe(step.v_tilde)}")
            lines.append(f"    X_new  = {encoding.describe(step.x_new)}")
            lines.append(f"    DB_new = {self._describe_db(step.db_new)}")
        lines.append("Final state:")
        lines.append(f"  X+     = {encoding.describe(self.final_x)}")
        lines.append(f"  DB     = {self._describe_db(self.final_db)}")
        return "\n".join(lines)
