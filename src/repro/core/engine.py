"""Worklist-driven kernel for Algorithm 5.1 — the performance layer.

The naive transcription in :mod:`repro.core.closure` mirrors the paper's
REPEAT-UNTIL shape exactly: every pass re-fires *all* of Σ and every
``Ū`` computation re-scans *all* of ``DB_new``.  That is the right shape
for reproducing Figures 3–4 step by step, but it wastes exactly the
structure that change-driven implementations of Beeri-style membership
algorithms exploit:

* **Owner index.**  ``Ū`` asks which blocks possess a basis attribute of
  ``U`` that is not yet in ``X_new``.  Possession only changes when a
  block changes, so the kernel maintains a basis-bit → owning-blocks
  index and answers ``Ū`` with one lookup per candidate bit
  (``O(popcount)``) instead of a full ``DB_new`` scan.

* **Dirty-set worklist.**  A dependency's firing is a deterministic
  function of ``(X_new, DB_new)``; re-firing it can only produce a new
  state if, since its last firing, either ``X_new`` gained bits of its
  left-hand side (shrinking ``Ū``'s candidates), or a block owning such
  bits changed (changing ``Ū``), or a block straddling its last ``Ṽ``
  appeared (re-violating the split/normalisation condition — such a
  block always possesses a bit of ``SubB(V)``).  All three are covered
  by marking, on every state change, the added closure bits and the
  possessed bits of every removed/added block as *dirty*, and re-queuing
  exactly the dependencies whose ``SubB(U) ∪ SubB(V)`` meets the dirty
  bits.  An empty worklist is therefore equivalent to the pseudocode's
  full no-change pass, and the kernel terminates in the same fixpoint —
  bit-identical ``(X⁺, DB)`` — while firing each dependency only when
  its inputs may actually have changed.

The REPEAT structure survives as *generations*: the initial queue (all
of Σ, FDs first — the paper's order) is generation 1, dependencies
re-queued during generation ``g`` run in generation ``g + 1``.  The
generation count is reported as ``passes`` for API compatibility; like
the naive pass count it is bounded by the number of state changes
(Theorem 6.3's termination argument).

A :class:`repro.core.plan.CompiledPlan` (optional ``plan=`` argument)
replaces the per-run Σ set-up with one-time compiled structure: the
folded dependency arrays, an *inverted* requeue index (basis bit →
bitmask of dependency positions) that turns the per-dirty-event
``O(|Σ|)`` relevance scan into ``O(popcount(dirty))`` lookups plus one
walk of exactly the woken positions, and per-dependency ``Ū = 0``
constants that skip the RHS derivations entirely once a left-hand side
is covered.  The plan path wakes positions in the same ascending order
the scan would and fires the same folded dependency exactly when the
scan would fire any of its duplicates first, so ``(X⁺, DB, passes)`` —
and ``fired`` provenance, via the plan's ``origin`` remap — are
bit-identical with the plan on or off.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Sequence

from ..attributes.encoding import BasisEncoding, iter_bits

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan ← engine)
    from .plan import CompiledPlan

__all__ = ["KernelStats", "closure_of_masks_fast"]


class KernelStats:
    """Opt-in instrumentation counters for the closure kernels.

    One instance can be threaded through many runs (e.g. a Reasoner's
    lifetime); counters accumulate until :meth:`reset`.
    """

    __slots__ = (
        "runs",
        "passes",
        "firings",
        "requeues",
        "requeue_scanned",
        "skipped_firings",
        "u_bar_lookups",
        "u_bar_blocks",
        "block_splits",
        "db_rewrites",
        "dirty_bits",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.runs = 0
        self.passes = 0
        self.firings = 0
        self.requeues = 0
        self.requeue_scanned = 0
        self.skipped_firings = 0
        self.u_bar_lookups = 0
        self.u_bar_blocks = 0
        self.block_splits = 0
        self.db_rewrites = 0
        self.dirty_bits = 0

    def merge(self, other: "KernelStats") -> None:
        """Fold another instance's counters into this one.

        The observability layer runs each closure with a private
        per-run instance (for span attribution) and merges it into the
        caller's accumulator afterwards, so both views count each event
        exactly once.
        """
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"KernelStats({inner})"


def closure_of_masks_fast(
    encoding: BasisEncoding,
    x_mask: int,
    fd_masks: Sequence[tuple[int, int]],
    mvd_masks: Sequence[tuple[int, int]],
    *,
    stats: KernelStats | None = None,
    fired: set[int] | None = None,
    warm_start: tuple[int, Iterable[int], Sequence[int]] | None = None,
    plan: "CompiledPlan | None" = None,
) -> tuple[int, frozenset[int], int]:
    """Worklist kernel for Algorithm 5.1; returns ``(X⁺, DB, passes)``.

    Drop-in replacement for the mask-level naive kernel
    :func:`repro.core.closure.closure_of_masks` (same inputs, same
    outputs, no trace support — tracing wants the pass-by-pass shape).

    Parameters
    ----------
    fired:
        Optional caller-supplied set collecting **provenance**: the
        index (position in the FDs-then-MVDs firing order) of every
        dependency whose firing *changed* ``(X_new, DB_new)``.  A
        dependency absent from ``fired`` only ever fired as a no-op, so
        removing it from Σ replays the identical run — the invariant
        :class:`repro.core.session.Session` uses for cache retention.
    warm_start:
        Optional ``(x_plus, blocks, pending)`` resume state.  Instead of
        initialising from ``X``, the kernel starts at the supplied
        fixpoint of a *smaller* Σ (same left-hand side ``x_mask``) and
        seeds the worklist with only the ``pending`` dependency indices
        — the ones added since that fixpoint was computed.  Because the
        algorithm is a monotone fixpoint computation and the old
        dependencies cannot fire productively at their own fixpoint
        (they are re-queued if the new ones dirty their inputs), the
        result is the same ``(X⁺, DB)`` as a cold run over the full Σ.
    plan:
        Optional :class:`repro.core.plan.CompiledPlan` compiled from the
        *same* ``(encoding, fd_masks, mvd_masks)``.  When supplied, the
        dependency arrays, the inverted requeue index and the ``Ū = 0``
        constants come from the plan instead of being re-derived, and
        exact duplicates in Σ fire once per wave (module doc).  ``fired``
        still collects original Σ indices (the plan's ``origin`` remap)
        and ``warm_start`` pending lists are still original indices
        (mapped through ``folded_of``).
    """
    pseudo_difference = encoding.pseudo_difference
    double_complement = encoding.double_complement
    possessed = encoding.possessed
    below = encoding.below

    use_plan = plan is not None
    if use_plan:
        if (plan.fd_total != len(fd_masks)
                or plan.mvd_total != len(mvd_masks)):
            raise ValueError(
                "compiled plan does not match the supplied Σ: plan has "
                f"{plan.fd_total} FDs / {plan.mvd_total} MVDs, call has "
                f"{len(fd_masks)} / {len(mvd_masks)}"
            )
        # Folded arrays and compiled indexes (module doc, plan.py).
        deps: Sequence[tuple[int, int, bool]] = plan.deps
        origin = plan.origin
        requeue_masks = plan.requeue_masks
        rhs_tilde = plan.rhs_tilde
        rhs_singletons = plan.rhs_singletons
        rhs_suspects = plan.rhs_suspects
        rhs_overlap = plan.rhs_overlap
        relevance: Sequence[int] = ()
    else:
        # Dependencies in the paper's firing order: FDs first, then MVDs.
        deps = [(u, v, True) for (u, v) in fd_masks] + [
            (u, v, False) for (u, v) in mvd_masks
        ]
        # Relevance mask per dependency: dirty bits meeting it trigger a
        # re-fire.
        relevance = [u | v for (u, v, _) in deps]
    n_deps = len(deps)

    x_new = x_mask

    # DB_new := MaxB(X^CC) ∪ {X^C}, with the owner index built alongside.
    # A basis bit can be possessed by several blocks at once (blocks are
    # down-closed and overlap in lower elements; a shared bit whose whole
    # up-set lies inside each of them is possessed by all), so the index
    # maps each bit to a *set* of owning blocks.  The aggregate ``owned``
    # mask answers the common all-or-nothing cases of ``Ū`` with one AND
    # before any per-bit work.
    db: set[int] = set()
    owners: dict[int, set[int]] = {}
    owned = 0  # union of the possessed masks of all blocks

    def add_block(w: int) -> int:
        """Insert block ``w``; returns its possessed mask."""
        nonlocal owned
        db.add(w)
        p = possessed(w)
        owned |= p
        for i in iter_bits(p):
            bucket = owners.get(i)
            if bucket is None:
                owners[i] = {w}
            else:
                bucket.add(w)
        return p

    def remove_block(w: int) -> int:
        """Remove block ``w``; returns its possessed mask."""
        nonlocal owned
        db.discard(w)
        p = possessed(w)
        for i in iter_bits(p):
            bucket = owners.get(i)
            if bucket is not None:
                bucket.discard(w)
                if not bucket:
                    owned &= ~(1 << i)
        return p

    if warm_start is None:
        for index in iter_bits(encoding.maximal_of(double_complement(x_mask))):
            add_block(below[index])
        x_complement = encoding.complement(x_mask)
        if x_complement:
            add_block(x_complement)
    else:
        x_new = warm_start[0]
        for w in warm_start[1]:
            add_block(w)

    # Blocks that are possibly *not* CC-closed.  The naive FD step maps
    # every block through ``(W ∸ Ṽ)^CC``, which is the identity on
    # CC-closed blocks untouched by ``Ṽ`` but *normalises* the others —
    # and both the initial blocks (``X^C``, ``MaxB(X^CC)`` singletons)
    # and the singletons an FD rewrite adds can fail to be CC-closed
    # (their generator need not be maximal in ``N``).  To stay
    # bit-identical, the next FD firing must rewrite these suspects even
    # when no possessed bit of theirs meets ``Ṽ``.
    suspects: set[int] = {w for w in db if double_complement(w) != w}

    def u_bar(u_mask: int) -> int:
        candidates = u_mask & ~x_new & owned
        if not candidates:
            return 0
        if stats is not None:
            stats.u_bar_lookups += 1
        # A block owning several candidate bits appears in several
        # buckets; visit each distinct owner exactly once.
        seen: set[int] = set()
        get = owners.get
        for i in iter_bits(candidates):
            bucket = get(i)
            if bucket:
                seen.update(bucket)
        result = 0
        for w in seen:
            result |= w
        if stats is not None:
            stats.u_bar_blocks += len(seen)
        return result

    # Worklist: initially every dependency, in order (or, on warm
    # starts, only the pending ones); generations mirror the naive
    # REPEAT passes for reporting purposes.
    if warm_start is None:
        queue: deque[int] = deque(range(n_deps))
    elif use_plan:
        # Pending entries are original Σ indices; map them onto folded
        # positions, deduplicating while preserving first-seen order.
        folded_of = plan.folded_of
        pending: list[int] = []
        pending_mask = 0
        for index in warm_start[2]:
            position = folded_of[index]
            bit = 1 << position
            if not pending_mask & bit:
                pending_mask |= bit
                pending.append(position)
        queue = deque(pending)
    else:
        queue = deque(warm_start[2])
    if use_plan:
        queued_mask = 0  # int bitmask over folded positions
        for position in queue:
            queued_mask |= 1 << position
    else:
        queued = [False] * n_deps
        for position in queue:
            queued[position] = True
    passes = 1
    firings = 0
    requeues = 0
    scanned = 0
    splits = 0
    rewrites = 0
    skipped = 0
    dirty_total = 0
    track_dirty = stats is not None
    generation_left = len(queue)  # firings left in the current generation

    while queue:
        if generation_left == 0:
            passes += 1
            generation_left = len(queue)
        generation_left -= 1

        position = queue.popleft()
        if use_plan:
            queued_mask &= ~(1 << position)
        else:
            queued[position] = False
        u_mask, v_mask, is_fd = deps[position]
        firings += 1

        ub = u_bar(u_mask)
        # Ū = λ is the steady state once X_new covers the LHS; the plan
        # carries Ṽ = V ∸ λ (and everything derived from it) precomputed.
        zero_u = use_plan and not ub
        v_tilde = rhs_tilde[position] if zero_u else pseudo_difference(v_mask, ub)
        if not v_tilde:
            skipped += 1
            continue

        dirty = 0
        changed = False
        if is_fd:
            dirty |= v_tilde & ~x_new
            x_new |= v_tilde
            # DB_new := {(W ∸ Ṽ)^CC ≠ λ} ∪ MaxB(Ṽ^CC) singletons.  Only
            # blocks owning a bit of Ṽ can change (an untouched block is
            # CC-closed with all its possessed bits outside Ṽ, so it is
            # its own survivor); the rewrite is computed as a set diff so
            # a block that merely round-trips (removed and re-created,
            # e.g. a singleton of Ṽ's own maximal) produces no dirt.
            touched: set[int] = set()
            for i in iter_bits(v_tilde & owned):
                bucket = owners.get(i)
                if bucket:
                    touched.update(bucket)
            if suspects:
                touched.update(w for w in suspects if w in db)
                suspects.clear()
            replacement: set[int] = set()
            for w in touched:
                survivor = double_complement(pseudo_difference(w, v_tilde))
                if survivor:
                    replacement.add(survivor)
            if zero_u:
                replacement.update(rhs_singletons[position])
                suspects.update(rhs_suspects[position])
            else:
                for index in iter_bits(
                    encoding.maximal_of(double_complement(v_tilde))
                ):
                    singleton = below[index]
                    replacement.add(singleton)
                    if double_complement(singleton) != singleton:
                        suspects.add(singleton)
            removed = touched - replacement
            added_blocks = replacement - db
            if removed or added_blocks:
                rewrites += 1
                for w in removed:
                    dirty |= remove_block(w)
                for w in added_blocks:
                    dirty |= add_block(w)
                changed = True
            if dirty:
                changed = True
        else:
            # X_new := X_new ⊔ (Ṽ ⊓ Ṽ^C) — the mixed meet rule.
            overlap = (
                rhs_overlap[position] if zero_u
                else v_tilde & encoding.complement(v_tilde)
            )
            dirty |= overlap & ~x_new
            x_new |= overlap
            # Split exactly the blocks straddling Ṽ; a straddling block
            # owns a bit of Ṽ, so the owner index locates them all.
            straddling: set[int] = set()
            for i in iter_bits(v_tilde & owned):
                bucket = owners.get(i)
                if bucket:
                    straddling.update(bucket)
            for w in straddling:
                inside = double_complement(v_tilde & w)
                if inside and inside != w:
                    splits += 1
                    changed = True
                    dirty |= remove_block(w)
                    dirty |= add_block(inside)
                    outside = double_complement(pseudo_difference(w, v_tilde))
                    if outside:
                        dirty |= add_block(outside)
            if dirty:
                changed = True

        if changed and fired is not None:
            fired.add(origin[position] if use_plan else position)
        if dirty:
            if track_dirty:
                dirty_total += dirty.bit_count()
            if use_plan:
                # Inverted index: OR the position-masks of the dirty
                # bits, drop the already-queued, wake the rest in
                # ascending order — exactly the positions (and order)
                # the plan-less relevance scan below would enqueue.
                wake = 0
                for i in iter_bits(dirty):
                    wake |= requeue_masks[i]
                scanned += wake.bit_count()
                wake &= ~queued_mask
                queued_mask |= wake
                for other in iter_bits(wake):
                    queue.append(other)
                    requeues += 1
            else:
                scanned += n_deps
                for other, mask in enumerate(relevance):
                    if mask & dirty and not queued[other]:
                        queued[other] = True
                        queue.append(other)
                        requeues += 1

    if stats is not None:
        stats.runs += 1
        stats.passes += passes
        stats.firings += firings
        stats.requeues += requeues
        stats.requeue_scanned += scanned
        stats.skipped_firings += skipped
        stats.block_splits += splits
        stats.db_rewrites += rewrites
        stats.dirty_bits += dirty_total

    return x_new, frozenset(db), passes
