"""Structural reference implementation of Algorithm 5.1.

This re-implements the paper's pseudocode *without* the bitmask encoding,
operating directly on :class:`~repro.attributes.nested.NestedAttribute`
values with the recursive Brouwerian operations of
:mod:`repro.attributes.lattice` and the quantified possession test of
Definition 4.11.  It is deliberately slow and deliberately written from
the definitions rather than from the encoding — the differential property
suite runs it against :func:`repro.core.closure.compute_closure` on random
inputs, so a bug would have to be introduced *twice, in two different
formalisms*, to go unnoticed.
"""

from __future__ import annotations

from typing import Iterable

from ..attributes.basis import basis_of_element, is_possessed_by_definition, maximal_basis
from ..attributes.lattice import (
    complement,
    double_complement,
    join,
    join_all,
    meet,
    pseudo_difference,
)
from ..attributes.nested import NestedAttribute
from ..attributes.subattribute import bottom, is_subattribute
from ..dependencies.dependency import Dependency, FunctionalDependency
from ..dependencies.sigma import DependencySet

__all__ = ["reference_closure", "reference_dependency_basis"]


def reference_closure(
    root: NestedAttribute,
    x: NestedAttribute,
    sigma: DependencySet | Iterable[Dependency],
) -> tuple[NestedAttribute, frozenset[NestedAttribute]]:
    """Algorithm 5.1 on structural attributes: ``(X⁺, final DB_new)``."""
    lam = bottom(root)
    maximal = set(maximal_basis(root))

    def max_basis_of(element: NestedAttribute) -> list[NestedAttribute]:
        return [j for j in maximal if is_subattribute(j, element)]

    dependencies = list(sigma)
    fd_list = [d for d in dependencies if isinstance(d, FunctionalDependency)]
    mvd_list = [d for d in dependencies if not isinstance(d, FunctionalDependency)]

    x_new = x
    db: set[NestedAttribute] = set(max_basis_of(double_complement(root, x)))
    x_comp = complement(root, x)
    if x_comp != lam:
        db.add(x_comp)

    def u_bar(u: NestedAttribute) -> NestedAttribute:
        contributing = []
        for w in db:
            for u_prime in basis_of_element(root, u):
                if is_subattribute(u_prime, x_new):
                    continue
                if is_possessed_by_definition(root, u_prime, w):
                    contributing.append(w)
                    break
        return join_all(root, contributing)

    while True:
        x_old = x_new
        db_old = frozenset(db)

        for dependency in fd_list:
            v_tilde = pseudo_difference(root, dependency.rhs, u_bar(dependency.lhs))
            if v_tilde != lam:
                x_new = join(root, x_new, v_tilde)
                new_db: set[NestedAttribute] = set()
                for w in db:
                    survivor = double_complement(root, pseudo_difference(root, w, v_tilde))
                    if survivor != lam:
                        new_db.add(survivor)
                new_db.update(max_basis_of(double_complement(root, v_tilde)))
                db = new_db

        for dependency in mvd_list:
            v_tilde = pseudo_difference(root, dependency.rhs, u_bar(dependency.lhs))
            if v_tilde != lam:
                x_new = join(root, x_new, meet(root, v_tilde, complement(root, v_tilde)))
                for w in list(db):
                    inside = double_complement(root, meet(root, v_tilde, w))
                    if inside != lam and inside != w:
                        db.discard(w)
                        db.add(inside)
                        outside = double_complement(
                            root, pseudo_difference(root, w, v_tilde)
                        )
                        if outside != lam:
                            db.add(outside)

        if x_new == x_old and frozenset(db) == db_old:
            break

    return x_new, frozenset(db)


def reference_dependency_basis(
    root: NestedAttribute,
    x: NestedAttribute,
    sigma: DependencySet | Iterable[Dependency],
) -> frozenset[NestedAttribute]:
    """``DepB_alg(X) = SubB(X⁺) ∪ DB_new`` from the reference run."""
    x_plus, db = reference_closure(root, x, sigma)
    members = set(db)
    members.update(basis_of_element(root, x_plus))
    return frozenset(members)
