"""Algorithm 5.1: attribute-set closure and dependency basis.

This module transcribes the paper's pseudocode block-for-block over the
bitmask basis encoding of :mod:`repro.attributes.encoding`::

    Input:  N ∈ NA, X ∈ Sub(N), set Σ of FDs and MVDs on N
    Output: X⁺_alg and DepB_alg(X)

    X_new  := X
    DB_new := MaxB(X^CC) ∪ {X^C}
    REPEAT
        X_old := X_new;  DB_old := DB_new
        FOR each U → V ∈ Σ DO                          -- FD loop
            Ū := ⊔{W ∈ DB_new | ∃U'. U' possessed by W, U' ≰ X_new, U' ≤ U}
            Ṽ := V ∸ Ū
            IF Ṽ ≠ λ THEN
                X_new  := X_new ⊔ Ṽ
                DB_new := {(W ∸ Ṽ)^CC | W ∈ DB_new, (W ∸ Ṽ)^CC ≠ λ}
                          ∪ MaxB(Ṽ^CC)
        FOR each U ↠ V ∈ Σ DO                          -- MVD loop
            Ū, Ṽ as above
            IF Ṽ ≠ λ THEN
                X_new := X_new ⊔ (Ṽ ⊓ Ṽ^C)             -- mixed meet rule
                FOR each W ∈ DB_new DO
                    IF (Ṽ ⊓ W)^CC ∉ {λ, W} THEN
                        DB_new := (DB_new − {W}) ∪ {(Ṽ⊓W)^CC, (W∸Ṽ)^CC}
    UNTIL X_new = X_old AND DB_new = DB_old
    X⁺_alg        := X_new
    DepB_alg(X)   := SubB(X⁺_alg) ∪ DB_new

Everything is an ``int`` mask over ``SubB(N)``; a *block* of ``DB_new`` is
the (down-closed) mask of a join of maximal basis attributes.  In the FD
loop, blocks touched by ``Ṽ`` lose the corresponding maximal basis
attributes (``(W ∸ Ṽ)^CC``) and the right-hand side's maximal attributes
become *singleton* blocks (they are now functionally determined, hence
mutually independent).  In the MVD loop, blocks straddling ``Ṽ`` split
into the inside and outside parts, and the *non-maximal* overlap
``Ṽ ⊓ Ṽ^C`` (list lengths shared between a part and its complement) is
added to the closure — the operational face of the mixed meet rule.

Termination (Theorem 6.3): every state change refines the partition
``{MaxB(W) | W ∈ DB_new}`` of ``MaxB(N)`` or enlarges ``X_new``, so the
outer loop runs at most ``|SubB(N)|`` times; the overall complexity is
``O(|N|⁴ · |Σ|)`` (Theorem 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..attributes.encoding import BasisEncoding, iter_bits
from ..attributes.nested import NestedAttribute
from ..dependencies.dependency import Dependency, FunctionalDependency
from ..dependencies.sigma import DependencySet
from ..obs import get_observer
from .engine import KernelStats, closure_of_masks_fast
from .trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .plan import CompiledPlan

__all__ = [
    "ClosureResult",
    "compute_closure",
    "closure_of_masks",
    "closure_of_masks_instrumented",
]


@dataclass(frozen=True)
class ClosureResult:
    """The output ``(X⁺_alg, DepB_alg(X))`` of Algorithm 5.1.

    Attributes
    ----------
    encoding:
        The basis encoding of the ambient attribute ``N``.
    x_mask:
        The input ``X`` as a mask.
    closure_mask:
        ``X⁺`` as a mask.
    blocks:
        The final ``DB_new``: masks of the multi-valued blocks ``X^M``
        (joins of maximal basis attributes).
    passes:
        Number of REPEAT-UNTIL iterations executed (including the final
        no-change pass).
    fired:
        Optional **provenance**: the indices (in Σ's FDs-then-MVDs
        firing order) of the dependencies whose firing productively
        changed the state during the run.  ``None`` when the kernel was
        not asked to record provenance.  A dependency outside ``fired``
        only ever fired as a no-op, so the result is independent of its
        presence in Σ — the invariant behind
        :meth:`repro.core.session.Session.retract` cache retention.
    """

    encoding: BasisEncoding
    x_mask: int
    closure_mask: int
    blocks: frozenset[int]
    passes: int
    fired: frozenset[int] | None = None

    # -- decoded views ----------------------------------------------------

    @property
    def x(self) -> NestedAttribute:
        """The input ``X`` as an attribute."""
        return self.encoding.decode(self.x_mask)

    @property
    def closure(self) -> NestedAttribute:
        """The attribute-set closure ``X⁺`` as an attribute."""
        return self.encoding.decode(self.closure_mask)

    def dependency_basis_masks(self) -> frozenset[int]:
        """``DepB(X) = SubB(X⁺) ∪ X^M`` as element masks.

        Each basis attribute of ``X⁺`` contributes its principal ideal;
        duplicates between the two parts collapse (a block fully inside
        ``X⁺`` may coincide with a principal ideal).

        The frozenset is computed once and cached on the result: the 4NF
        checker, the decomposer and ``implies_mvd_rhs`` all re-query it
        for the same result object.
        """
        cached = self.__dict__.get("_depb_masks")
        if cached is not None:
            return cached
        members = set(self.blocks)
        for index in iter_bits(self.closure_mask):
            members.add(self.encoding.below[index])
        masks = frozenset(members)
        # Direct __dict__ store: the dataclass is frozen, but caching a
        # derived value does not change its identity or equality.
        self.__dict__["_depb_masks"] = masks
        return masks

    def dependency_basis(self) -> tuple[NestedAttribute, ...]:
        """The dependency basis as attributes, deterministically ordered."""
        masks = sorted(self.dependency_basis_masks())
        return tuple(self.encoding.decode(mask) for mask in masks)

    # -- membership tests (Proposition 4.10) -------------------------------

    def implies_fd_rhs(self, rhs_mask: int) -> bool:
        """``Σ ⊨ X → Y`` iff ``Y ≤ X⁺``."""
        return rhs_mask & ~self.closure_mask == 0

    def implies_mvd_rhs(self, rhs_mask: int) -> bool:
        """``Σ ⊨ X ↠ Y`` iff ``Y`` is a join of dependency-basis elements.

        Greedy check: the union of all basis elements lying below ``Y``
        must reproduce ``Y`` exactly.
        """
        union = 0
        for member in self.dependency_basis_masks():
            if member & ~rhs_mask == 0:
                union |= member
        return union == rhs_mask

    def describe(self) -> str:
        """Readable summary in paper notation."""
        encoding = self.encoding
        basis_lines = "; ".join(
            encoding.describe(mask) for mask in sorted(self.dependency_basis_masks())
        )
        return (
            f"X       = {encoding.describe(self.x_mask)}\n"
            f"X+      = {encoding.describe(self.closure_mask)}\n"
            f"DepB(X) = {{{basis_lines}}}"
        )


def _as_mask_sigma(encoding: BasisEncoding,
                   sigma: DependencySet | Iterable[Dependency]) -> tuple[
                       list[tuple[int, int]], list[tuple[int, int]]]:
    """Split Σ into FD and MVD ``(lhs_mask, rhs_mask)`` lists, in order."""
    fd_masks: list[tuple[int, int]] = []
    mvd_masks: list[tuple[int, int]] = []
    for dependency in sigma:
        pair = (encoding.encode(dependency.lhs), encoding.encode(dependency.rhs))
        if isinstance(dependency, FunctionalDependency):
            fd_masks.append(pair)
        else:
            mvd_masks.append(pair)
    return fd_masks, mvd_masks


def compute_closure(
    encoding: BasisEncoding,
    x: NestedAttribute | int,
    sigma: DependencySet | Iterable[Dependency],
    *,
    trace: TraceRecorder | None = None,
    kernel: str = "auto",
    stats: KernelStats | None = None,
    plan: "CompiledPlan | None" = None,
) -> ClosureResult:
    """Run Algorithm 5.1 for ``X`` with respect to ``Σ``.

    Parameters
    ----------
    encoding:
        The basis encoding of the ambient attribute ``N``.
    x:
        The attribute ``X ∈ Sub(N)`` (or its mask).
    sigma:
        The dependencies; FDs are processed before MVDs within each pass,
        each group in the order given — matching the paper's two FOR
        loops and making traces reproducible.
    trace:
        Optional recorder capturing every state transition (used to
        reproduce Figures 3 and 4).  Tracing forces the naive kernel,
        whose passes are the paper's REPEAT passes.
    kernel:
        ``"auto"`` (the registry's default engine — normally the
        worklist kernel — unless tracing), or any engine name from
        :func:`repro.core.engines.available_engines` (``"worklist"``,
        ``"naive"``, ``"reference"``).  All engines return bit-identical
        ``(X⁺, DB)``; the worklist kernel only re-fires dependencies
        whose inputs may have changed (see :mod:`repro.core.engine`).
    stats:
        Optional :class:`~repro.core.engine.KernelStats` accumulating
        instrumentation counters across runs.
    plan:
        Optional :class:`~repro.core.plan.CompiledPlan` compiled from
        the *same* ``(encoding, Σ)``.  When supplied (and not tracing),
        the mask tables come from the plan — Σ is not re-encoded — and
        plan-aware engines consume the compiled arrays directly.
        Results are bit-identical with the plan on or off.
    """
    # Local import: ``engines`` registers adapters over this module's
    # kernels, so the dependency must point engines → closure only.
    from .engines import get_engine

    x_mask = x if isinstance(x, int) else encoding.encode(x)
    if plan is not None and trace is None:
        fd_masks: Sequence[tuple[int, int]] = plan.fd_masks
        mvd_masks: Sequence[tuple[int, int]] = plan.mvd_masks
    else:
        fd_masks, mvd_masks = _as_mask_sigma(encoding, sigma)

    if trace is not None:
        if kernel not in ("auto", "naive"):
            raise ValueError("tracing requires the naive kernel (kernel='naive')")
        dependencies = list(sigma)
        fd_dependencies = [
            d for d in dependencies if isinstance(d, FunctionalDependency)
        ]
        mvd_dependencies = [
            d for d in dependencies if not isinstance(d, FunctionalDependency)
        ]
        fired: set[int] = set()
        closure_mask, blocks, passes = closure_of_masks(
            encoding,
            x_mask,
            fd_masks,
            mvd_masks,
            trace=trace,
            fd_labels=fd_dependencies,
            mvd_labels=mvd_dependencies,
            fired=fired,
        )
        return ClosureResult(
            encoding, x_mask, closure_mask, blocks, passes, frozenset(fired)
        )

    engine = get_engine(None if kernel == "auto" else kernel)
    fired = set()
    closure_mask, blocks, passes = engine.run(
        encoding, x_mask, fd_masks, mvd_masks, stats=stats, fired=fired,
        plan=plan,
    )
    return ClosureResult(
        encoding, x_mask, closure_mask, blocks, passes, frozenset(fired)
    )


def closure_of_masks_instrumented(
    encoding: BasisEncoding,
    x_mask: int,
    fd_masks: Sequence[tuple[int, int]],
    mvd_masks: Sequence[tuple[int, int]],
    *,
    stats: KernelStats | None = None,
    fired: set[int] | None = None,
    warm_start: tuple[int, Iterable[int], Sequence[int]] | None = None,
    plan: "CompiledPlan | None" = None,
) -> tuple[int, frozenset[int], int]:
    """The worklist kernel behind the observability layer.

    With the default (disabled) observer this *is*
    :func:`~repro.core.engine.closure_of_masks_fast` plus one enabled
    check — the overhead benchmark holds that to <3% on the E7 chain.
    With an enabled observer each run gets a ``closure.compute`` span
    whose attributes carry the per-run :class:`KernelStats` counters
    and the encoding-cache traffic, and the session-level metrics
    accumulate the same quantities (see docs/OBSERVABILITY.md).  The
    per-run counters are folded into the caller's ``stats`` afterwards,
    so ``KernelStats`` accumulators and the metrics layer each count
    every event exactly once.
    """
    obs = get_observer()
    if not obs.enabled:
        return closure_of_masks_fast(encoding, x_mask, fd_masks, mvd_masks,
                                     stats=stats, fired=fired,
                                     warm_start=warm_start, plan=plan)

    run_stats = KernelStats()
    hits_before, misses_before = encoding.cache_totals()
    with obs.span(
        "closure.compute",
        lhs=format(x_mask, "#x"),
        size=encoding.size,
        sigma=len(fd_masks) + len(mvd_masks),
        fds=len(fd_masks),
        mvds=len(mvd_masks),
        kernel="worklist",
        plan=plan is not None,
    ) as span:
        closure_mask, blocks, passes = closure_of_masks_fast(
            encoding, x_mask, fd_masks, mvd_masks, stats=run_stats,
            fired=fired, warm_start=warm_start, plan=plan,
        )
        hits_after, misses_after = encoding.cache_totals()
        cache_hits = hits_after - hits_before
        cache_misses = misses_after - misses_before
        span.set(
            passes=passes,
            firings=run_stats.firings,
            requeues=run_stats.requeues,
            requeue_scanned=run_stats.requeue_scanned,
            skipped_firings=run_stats.skipped_firings,
            u_bar_lookups=run_stats.u_bar_lookups,
            u_bar_blocks=run_stats.u_bar_blocks,
            block_splits=run_stats.block_splits,
            db_rewrites=run_stats.db_rewrites,
            dirty_bits=run_stats.dirty_bits,
            blocks=len(blocks),
            encoding_cache_hits=cache_hits,
            encoding_cache_misses=cache_misses,
        )

    metrics = obs.metrics
    metrics.add("closure.runs")
    metrics.add("closure.passes", passes)
    metrics.add("closure.firings", run_stats.firings)
    metrics.add("closure.requeues", run_stats.requeues)
    metrics.add("closure.requeue_scanned", run_stats.requeue_scanned)
    metrics.add("closure.skipped_firings", run_stats.skipped_firings)
    metrics.add("closure.u_bar_lookups", run_stats.u_bar_lookups)
    metrics.add("closure.u_bar_blocks", run_stats.u_bar_blocks)
    metrics.add("closure.block_splits", run_stats.block_splits)
    metrics.add("closure.db_rewrites", run_stats.db_rewrites)
    metrics.add("closure.dirty_bits", run_stats.dirty_bits)
    metrics.add("encoding.cache.hits", cache_hits)
    metrics.add("encoding.cache.misses", cache_misses)
    metrics.observe("closure.passes_per_run", passes)
    metrics.observe("closure.firings_per_run", run_stats.firings)

    if stats is not None:
        stats.merge(run_stats)
    return closure_mask, blocks, passes


def closure_of_masks(
    encoding: BasisEncoding,
    x_mask: int,
    fd_masks: Sequence[tuple[int, int]],
    mvd_masks: Sequence[tuple[int, int]],
    *,
    trace: TraceRecorder | None = None,
    fd_labels: Sequence[Dependency] | None = None,
    mvd_labels: Sequence[Dependency] | None = None,
    fired: set[int] | None = None,
    initial: tuple[int, Iterable[int]] | None = None,
) -> tuple[int, frozenset[int], int]:
    """Mask-level core of Algorithm 5.1; returns ``(X⁺, DB, passes)``.

    Separated from :func:`compute_closure` so the scaling benchmarks can
    time the algorithm without attribute-encoding overhead.  ``fired``
    optionally collects the FDs-then-MVDs indices of productive firings
    (provenance, mirroring the worklist kernel's parameter); ``initial``
    optionally seeds ``(X_new, DB_new)`` from a previously computed
    fixpoint of a smaller Σ with the same left-hand side, which the
    REPEAT loop then extends to the fixpoint of the full Σ.
    """
    x_new = x_mask

    # DB_new := MaxB(X^CC) ∪ {X^C}
    db: set[int] = set()
    if initial is None:
        for index in iter_bits(encoding.maximal_of(encoding.double_complement(x_mask))):
            db.add(encoding.below[index])
        x_complement = encoding.complement(x_mask)
        if x_complement:
            db.add(x_complement)
    else:
        x_new = initial[0]
        db.update(initial[1])

    if trace is not None:
        trace.initial(encoding, x_new, frozenset(db))

    def u_bar(u_mask: int) -> int:
        """``Ū``: join of blocks owning a relevant basis attribute of U.

        A block ``W`` contributes iff some ``U'`` is possessed by ``W``,
        not yet in ``X_new``, and lies in ``SubB(U)``.
        """
        result = 0
        candidates = u_mask & ~x_new
        if not candidates:
            return 0
        for w in db:
            if encoding.possessed(w) & candidates:
                result |= w
        return result

    passes = 0
    while True:
        passes += 1
        # State changes are monotone (X_new only grows, DB only refines),
        # so per-step change flags are an exact substitute for the
        # pseudocode's ``X_new = X_old AND DB_new = DB_old`` — without
        # snapshotting ``frozenset(db)`` twice per pass.
        pass_changed = False

        # -- FD loop -----------------------------------------------------
        for position, (u_mask, v_mask) in enumerate(fd_masks):
            v_tilde = encoding.pseudo_difference(v_mask, u_bar(u_mask))
            changed = False
            if v_tilde:
                changed = bool(v_tilde & ~x_new)
                x_new |= v_tilde
                new_db: set[int] = set()
                for w in db:
                    survivor = encoding.double_complement(
                        encoding.pseudo_difference(w, v_tilde)
                    )
                    if survivor:
                        new_db.add(survivor)
                for index in iter_bits(
                    encoding.maximal_of(encoding.double_complement(v_tilde))
                ):
                    new_db.add(encoding.below[index])
                if new_db != db:
                    changed = True
                db = new_db
            pass_changed = pass_changed or changed
            if changed and fired is not None:
                fired.add(position)
            if trace is not None:
                label = fd_labels[position] if fd_labels else None
                trace.step(passes, label, True, v_tilde, changed, x_new, frozenset(db))

        # -- MVD loop ----------------------------------------------------
        for position, (u_mask, v_mask) in enumerate(mvd_masks):
            v_tilde = encoding.pseudo_difference(v_mask, u_bar(u_mask))
            changed = False
            if v_tilde:
                # X_new := X_new ⊔ (Ṽ ⊓ Ṽ^C)  — the mixed meet rule.
                overlap = v_tilde & encoding.complement(v_tilde)
                if overlap & ~x_new:
                    changed = True
                x_new |= overlap
                for w in list(db):
                    inside = encoding.double_complement(v_tilde & w)
                    if inside and inside != w:
                        changed = True
                        db.discard(w)
                        db.add(inside)
                        outside = encoding.double_complement(
                            encoding.pseudo_difference(w, v_tilde)
                        )
                        if outside:
                            db.add(outside)
            pass_changed = pass_changed or changed
            if changed and fired is not None:
                fired.add(len(fd_masks) + position)
            if trace is not None:
                label = mvd_labels[position] if mvd_labels else None
                trace.step(passes, label, False, v_tilde, changed, x_new, frozenset(db))

        if not pass_changed:
            break

    if trace is not None:
        trace.final(x_new, frozenset(db))
    return x_new, frozenset(db), passes
