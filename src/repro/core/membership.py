"""The membership (finite implication) decision API.

Proposition 4.10 reduces membership to the outputs of Algorithm 5.1:

* ``Σ ⊨ X → Y``  iff  ``Y ≤ X⁺``,
* ``Σ ⊨ X ↠ Y``  iff  ``Y`` is the join of some subset of ``DepB(X)``.

On top of :func:`implies` the module offers the applications the paper
motivates in Section 1.3: deciding the **equivalence** of two dependency
sets and detecting/eliminating **redundant** dependencies — "a
significant step towards automated database schema design".

All functions accept an optional pre-built
:class:`~repro.attributes.encoding.BasisEncoding`; building one is
``O(|N|²)`` and worth reusing across calls (the :class:`repro.Schema`
facade does this automatically).
"""

from __future__ import annotations

import warnings
from typing import Iterable

from ..attributes.encoding import BasisEncoding
from ..attributes.nested import NestedAttribute
from ..dependencies.dependency import Dependency, FunctionalDependency, MultivaluedDependency
from ..dependencies.sigma import DependencySet
from .closure import ClosureResult, compute_closure

__all__ = [
    "closure",
    "dependency_basis",
    "implies",
    "implies_every",
    "implies_all",
    "equivalent",
    "is_redundant",
    "minimal_cover",
]


def _encoding_for(root: NestedAttribute,
                  encoding: BasisEncoding | None) -> BasisEncoding:
    # Retained as a module-local spelling of the centralized helper.
    return BasisEncoding.of(root, encoding)


def closure(sigma: DependencySet, x: NestedAttribute,
            *, encoding: BasisEncoding | None = None) -> NestedAttribute:
    """The attribute-set closure ``X⁺ = ⊔{Y | X → Y ∈ Σ⁺}``.

    Example
    -------
    >>> from repro.attributes import parse_attribute, parse_subattribute
    >>> from repro.dependencies import DependencySet
    >>> N = parse_attribute("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    >>> sigma = DependencySet.parse(
    ...     N, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"])
    >>> X = parse_subattribute("Pubcrawl(Person)", N)
    >>> from repro.attributes import unparse_abbreviated
    >>> unparse_abbreviated(closure(sigma, X), N)  # mixed meet at work
    'Pubcrawl(Person, Visit[λ])'
    """
    enc = _encoding_for(sigma.root, encoding)
    return compute_closure(enc, x, sigma).closure


def dependency_basis(sigma: DependencySet, x: NestedAttribute,
                     *, encoding: BasisEncoding | None = None) -> tuple[NestedAttribute, ...]:
    """The dependency basis ``DepB(X)`` with respect to ``Σ``."""
    enc = _encoding_for(sigma.root, encoding)
    return compute_closure(enc, x, sigma).dependency_basis()


def analyse(sigma: DependencySet, x: NestedAttribute,
            *, encoding: BasisEncoding | None = None) -> ClosureResult:
    """Run Algorithm 5.1 once and keep the full result for many queries."""
    enc = _encoding_for(sigma.root, encoding)
    return compute_closure(enc, x, sigma)


def implies(sigma: DependencySet, dependency: Dependency,
            *, encoding: BasisEncoding | None = None) -> bool:
    """Decide ``Σ ⊨ σ`` (the membership problem, Theorem 6.4).

    Runs in ``O(|N|⁴ · |Σ|)`` time in the paper's size measure
    ``|N| = |SubB(N)|``.
    """
    dependency.validate(sigma.root)
    enc = _encoding_for(sigma.root, encoding)
    result = compute_closure(enc, dependency.lhs, sigma)
    rhs_mask = enc.encode(dependency.rhs)
    if isinstance(dependency, FunctionalDependency):
        return result.implies_fd_rhs(rhs_mask)
    if isinstance(dependency, MultivaluedDependency):
        return result.implies_mvd_rhs(rhs_mask)
    raise TypeError(f"not a dependency: {dependency!r}")  # pragma: no cover


def implies_every(sigma: DependencySet, dependencies: Iterable[Dependency],
                  *, encoding: BasisEncoding | None = None) -> bool:
    """Whether ``Σ`` implies **every** given dependency (one boolean).

    Dependencies sharing a left-hand side reuse a single Algorithm 5.1
    run.  Formerly named ``implies_all``; renamed to resolve the
    collision with :func:`repro.batch.implies_all`, which answers the
    same kind of batch with one verdict *per query* (and optional
    process-pool fan-out) instead of a single conjunction.
    """
    enc = _encoding_for(sigma.root, encoding)
    results: dict[NestedAttribute, ClosureResult] = {}
    for dependency in dependencies:
        dependency.validate(sigma.root)
        result = results.get(dependency.lhs)
        if result is None:
            result = compute_closure(enc, dependency.lhs, sigma)
            results[dependency.lhs] = result
        rhs_mask = enc.encode(dependency.rhs)
        if isinstance(dependency, FunctionalDependency):
            if not result.implies_fd_rhs(rhs_mask):
                return False
        else:
            if not result.implies_mvd_rhs(rhs_mask):
                return False
    return True


def implies_all(sigma: DependencySet, dependencies: Iterable[Dependency],
                *, encoding: BasisEncoding | None = None) -> bool:
    """Deprecated alias of :func:`implies_every`.

    Kept for one release so existing imports keep working; prefer
    :func:`implies_every` (boolean conjunction) or
    :func:`repro.batch.implies_all` (per-query verdicts).
    """
    warnings.warn(
        "repro.core.membership.implies_all was renamed to implies_every "
        "(repro.batch.implies_all is the per-query batch API)",
        DeprecationWarning,
        stacklevel=2,
    )
    return implies_every(sigma, dependencies, encoding=encoding)


def equivalent(first: DependencySet, second: DependencySet,
               *, encoding: BasisEncoding | None = None,
               engine: str | None = None) -> bool:
    """Whether two dependency sets over the same root imply each other.

    This is the "equivalence of two sets of dependencies" application the
    paper names in Section 1.3.  Each direction runs over a
    :class:`~repro.core.session.Session` sharing one encoding, so
    left-hand sides common to both sets pay their closure once per
    direction at most.
    """
    if first.root != second.root:
        return False
    from .session import Session

    enc = _encoding_for(first.root, encoding)
    forward = Session(first.root, first, encoding=enc, engine=engine)
    if not all(forward.implies(d) for d in second):
        return False
    backward = Session(second.root, second, encoding=enc, engine=engine)
    return all(backward.implies(d) for d in first)


def is_redundant(sigma: DependencySet, dependency: Dependency,
                 *, encoding: BasisEncoding | None = None,
                 engine: str | None = None,
                 session=None) -> bool:
    """Whether ``σ ∈ Σ`` already follows from the *other* dependencies.

    With a :class:`~repro.core.session.Session` supplied (its Σ must
    equal ``sigma``), the check retracts ``σ``, asks the question, and
    re-adds ``σ`` — provenance keeps every cache entry whose result did
    not depend on ``σ``, so a sweep over Σ shares one cache across all
    candidates instead of recomputing per candidate.
    """
    if dependency not in sigma:
        raise ValueError("the dependency is not a member of the set")
    if session is None:
        from .session import Session

        session = Session(sigma.root, sigma,
                          encoding=_encoding_for(sigma.root, encoding),
                          engine=engine)
    session.retract(dependency)
    try:
        return session.implies(dependency)
    finally:
        session.add(dependency)


def minimal_cover(sigma: DependencySet,
                  *, encoding: BasisEncoding | None = None,
                  engine: str | None = None,
                  session=None) -> DependencySet:
    """An equivalent, redundancy-free subset of ``Σ``.

    Dependencies are dropped greedily in reverse insertion order (later,
    more "derived-looking" dependencies go first); the result depends on
    that order but is always equivalent to ``Σ`` and contains no
    dependency implied by its companions.

    The sweep drives one retraction :class:`~repro.core.session.Session`
    (pass ``session`` to share an existing one — it is left holding
    exactly the cover, which :func:`repro.normalization.synthesis`
    exploits): each candidate is retracted, tested against the survivors,
    and re-added only if it does not follow from them.  Provenance-exact
    eviction means a retraction only discards the cache entries that
    actually used the candidate, so the per-candidate membership tests
    mostly warm-start or hit outright.
    """
    if session is None:
        from .session import Session

        session = Session(sigma.root, sigma,
                          encoding=_encoding_for(sigma.root, encoding),
                          engine=engine)
    kept = set(sigma)
    for dependency in reversed(list(sigma)):
        session.retract(dependency)
        if session.implies(dependency):
            kept.discard(dependency)
        else:
            session.add(dependency)
    return DependencySet(sigma.root, (d for d in sigma if d in kept))
