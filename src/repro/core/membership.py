"""The membership (finite implication) decision API.

Proposition 4.10 reduces membership to the outputs of Algorithm 5.1:

* ``Σ ⊨ X → Y``  iff  ``Y ≤ X⁺``,
* ``Σ ⊨ X ↠ Y``  iff  ``Y`` is the join of some subset of ``DepB(X)``.

On top of :func:`implies` the module offers the applications the paper
motivates in Section 1.3: deciding the **equivalence** of two dependency
sets and detecting/eliminating **redundant** dependencies — "a
significant step towards automated database schema design".

All functions accept an optional pre-built
:class:`~repro.attributes.encoding.BasisEncoding`; building one is
``O(|N|²)`` and worth reusing across calls (the :class:`repro.Schema`
facade does this automatically).
"""

from __future__ import annotations

from typing import Iterable

from ..attributes.encoding import BasisEncoding
from ..attributes.nested import NestedAttribute
from ..dependencies.dependency import Dependency, FunctionalDependency, MultivaluedDependency
from ..dependencies.sigma import DependencySet
from .closure import ClosureResult, compute_closure

__all__ = [
    "closure",
    "dependency_basis",
    "implies",
    "implies_all",
    "equivalent",
    "is_redundant",
    "minimal_cover",
]


def _encoding_for(root: NestedAttribute,
                  encoding: BasisEncoding | None) -> BasisEncoding:
    if encoding is not None:
        if encoding.root != root:
            raise ValueError("the supplied encoding is for a different root attribute")
        return encoding
    return BasisEncoding(root)


def closure(sigma: DependencySet, x: NestedAttribute,
            *, encoding: BasisEncoding | None = None) -> NestedAttribute:
    """The attribute-set closure ``X⁺ = ⊔{Y | X → Y ∈ Σ⁺}``.

    Example
    -------
    >>> from repro.attributes import parse_attribute, parse_subattribute
    >>> from repro.dependencies import DependencySet
    >>> N = parse_attribute("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    >>> sigma = DependencySet.parse(
    ...     N, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"])
    >>> X = parse_subattribute("Pubcrawl(Person)", N)
    >>> from repro.attributes import unparse_abbreviated
    >>> unparse_abbreviated(closure(sigma, X), N)  # mixed meet at work
    'Pubcrawl(Person, Visit[λ])'
    """
    enc = _encoding_for(sigma.root, encoding)
    return compute_closure(enc, x, sigma).closure


def dependency_basis(sigma: DependencySet, x: NestedAttribute,
                     *, encoding: BasisEncoding | None = None) -> tuple[NestedAttribute, ...]:
    """The dependency basis ``DepB(X)`` with respect to ``Σ``."""
    enc = _encoding_for(sigma.root, encoding)
    return compute_closure(enc, x, sigma).dependency_basis()


def analyse(sigma: DependencySet, x: NestedAttribute,
            *, encoding: BasisEncoding | None = None) -> ClosureResult:
    """Run Algorithm 5.1 once and keep the full result for many queries."""
    enc = _encoding_for(sigma.root, encoding)
    return compute_closure(enc, x, sigma)


def implies(sigma: DependencySet, dependency: Dependency,
            *, encoding: BasisEncoding | None = None) -> bool:
    """Decide ``Σ ⊨ σ`` (the membership problem, Theorem 6.4).

    Runs in ``O(|N|⁴ · |Σ|)`` time in the paper's size measure
    ``|N| = |SubB(N)|``.
    """
    dependency.validate(sigma.root)
    enc = _encoding_for(sigma.root, encoding)
    result = compute_closure(enc, dependency.lhs, sigma)
    rhs_mask = enc.encode(dependency.rhs)
    if isinstance(dependency, FunctionalDependency):
        return result.implies_fd_rhs(rhs_mask)
    if isinstance(dependency, MultivaluedDependency):
        return result.implies_mvd_rhs(rhs_mask)
    raise TypeError(f"not a dependency: {dependency!r}")  # pragma: no cover


def implies_all(sigma: DependencySet, dependencies: Iterable[Dependency],
                *, encoding: BasisEncoding | None = None) -> bool:
    """Whether ``Σ`` implies every given dependency.

    Dependencies sharing a left-hand side reuse a single Algorithm 5.1
    run.
    """
    enc = _encoding_for(sigma.root, encoding)
    results: dict[NestedAttribute, ClosureResult] = {}
    for dependency in dependencies:
        dependency.validate(sigma.root)
        result = results.get(dependency.lhs)
        if result is None:
            result = compute_closure(enc, dependency.lhs, sigma)
            results[dependency.lhs] = result
        rhs_mask = enc.encode(dependency.rhs)
        if isinstance(dependency, FunctionalDependency):
            if not result.implies_fd_rhs(rhs_mask):
                return False
        else:
            if not result.implies_mvd_rhs(rhs_mask):
                return False
    return True


def equivalent(first: DependencySet, second: DependencySet,
               *, encoding: BasisEncoding | None = None) -> bool:
    """Whether two dependency sets over the same root imply each other.

    This is the "equivalence of two sets of dependencies" application the
    paper names in Section 1.3.
    """
    if first.root != second.root:
        return False
    enc = _encoding_for(first.root, encoding)
    return implies_all(first, second, encoding=enc) and implies_all(
        second, first, encoding=enc
    )


def is_redundant(sigma: DependencySet, dependency: Dependency,
                 *, encoding: BasisEncoding | None = None) -> bool:
    """Whether ``σ ∈ Σ`` already follows from the *other* dependencies."""
    if dependency not in sigma:
        raise ValueError("the dependency is not a member of the set")
    remainder = sigma.without(dependency)
    return implies(remainder, dependency, encoding=encoding)


def minimal_cover(sigma: DependencySet,
                  *, encoding: BasisEncoding | None = None) -> DependencySet:
    """An equivalent, redundancy-free subset of ``Σ``.

    Dependencies are dropped greedily in reverse insertion order (later,
    more "derived-looking" dependencies go first); the result depends on
    that order but is always equivalent to ``Σ`` and contains no
    dependency implied by its companions.
    """
    enc = _encoding_for(sigma.root, encoding)
    kept = list(sigma)
    for dependency in reversed(list(sigma)):
        candidate = DependencySet(sigma.root, (d for d in kept if d != dependency))
        if implies(candidate, dependency, encoding=enc):
            kept = list(candidate)
    return DependencySet(sigma.root, kept)
