"""The paper's primary contribution: Algorithm 5.1 and the membership API."""

from .closure import ClosureResult, closure_of_masks, compute_closure
from .engine import KernelStats, closure_of_masks_fast
from .engines import (
    Engine,
    available_engines,
    get_default_engine,
    get_engine,
    register_engine,
    set_default_engine,
)
from .membership import (
    analyse,
    closure,
    dependency_basis,
    equivalent,
    implies,
    implies_all,
    implies_every,
    is_redundant,
    minimal_cover,
)
from .plan import ClosureIntervalCache, CompiledPlan, PlanCacheInfo, compile_plan
from .reference import reference_closure, reference_dependency_basis
from .session import Session, SessionCacheInfo
from .trace import TraceRecorder, TraceStep

__all__ = [
    "ClosureResult", "compute_closure", "closure_of_masks",
    "KernelStats", "closure_of_masks_fast",
    "Engine", "available_engines", "get_default_engine", "get_engine",
    "register_engine", "set_default_engine",
    "CompiledPlan", "compile_plan", "ClosureIntervalCache", "PlanCacheInfo",
    "Session", "SessionCacheInfo",
    "closure", "dependency_basis", "analyse", "implies", "implies_every",
    "implies_all", "equivalent", "is_redundant", "minimal_cover",
    "reference_closure", "reference_dependency_basis",
    "TraceRecorder", "TraceStep",
]
