"""The paper's primary contribution: Algorithm 5.1 and the membership API."""

from .closure import ClosureResult, closure_of_masks, compute_closure
from .engine import KernelStats, closure_of_masks_fast
from .membership import (
    analyse,
    closure,
    dependency_basis,
    equivalent,
    implies,
    implies_all,
    is_redundant,
    minimal_cover,
)
from .reference import reference_closure, reference_dependency_basis
from .trace import TraceRecorder, TraceStep

__all__ = [
    "ClosureResult", "compute_closure", "closure_of_masks",
    "KernelStats", "closure_of_masks_fast",
    "closure", "dependency_basis", "analyse", "implies", "implies_all",
    "equivalent", "is_redundant", "minimal_cover",
    "reference_closure", "reference_dependency_basis",
    "TraceRecorder", "TraceStep",
]
