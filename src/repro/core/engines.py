"""Engine registry: named, swappable implementations of Algorithm 5.1.

Before this module, every consumer hard-imported one of the three
kernels (the worklist kernel of :mod:`repro.core.engine`, the naive
transcription in :mod:`repro.core.closure`, or the structural reference
in :mod:`repro.core.reference`).  The registry gives them one name-based
entry point with a uniform mask-level calling convention::

    engine = get_engine("worklist")          # or None for the default
    x_plus, blocks, passes = engine.run(
        encoding, x_mask, fd_masks, mvd_masks,
        stats=stats, fired=fired, warm_start=warm_start,
    )

All registered engines are bit-identical on ``(X⁺, DB)`` — the corpus
replay suite asserts three-way agreement — and differ only in cost model
and capabilities:

``worklist``
    The dirty-set kernel (:func:`repro.core.engine.closure_of_masks_fast`
    behind the observability wrapper).  Supports warm starts and exact
    provenance.  The default.
``naive``
    The pass-by-pass transcription of the paper's pseudocode.  Supports
    warm starts (seeding ``(X_new, DB_new)``) and provenance; the only
    engine with trace support (requested via
    :func:`repro.core.closure.compute_closure`, not through the
    registry).
``reference``
    The structural implementation over ``NestedAttribute`` values —
    deliberately slow, deliberately encoding-free.  No warm starts; its
    provenance is the conservative "all of Σ".

The *default* engine is process-global state consulted by every caller
that does not pin a name (``get_engine(None)``); the CLI's ``--engine``
flag and the shell's ``engine`` command set it via
:func:`set_default_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

from ..attributes.encoding import BasisEncoding
from ..dependencies.dependency import FunctionalDependency, MultivaluedDependency
from .engine import KernelStats
from .plan import CompiledPlan
from .reference import reference_closure

__all__ = [
    "Engine",
    "available_engines",
    "get_default_engine",
    "get_engine",
    "register_engine",
    "set_default_engine",
]


class _RunFn(Protocol):
    def __call__(
        self,
        encoding: BasisEncoding,
        x_mask: int,
        fd_masks: Sequence[tuple[int, int]],
        mvd_masks: Sequence[tuple[int, int]],
        *,
        stats: KernelStats | None = None,
        fired: set[int] | None = None,
        warm_start: tuple[int, Iterable[int], Sequence[int]] | None = None,
        plan: "CompiledPlan | None" = None,
    ) -> tuple[int, frozenset[int], int]: ...


@dataclass(frozen=True)
class Engine:
    """A named Algorithm 5.1 implementation with a uniform run API.

    Attributes
    ----------
    name:
        Registry key (``"worklist"``, ``"naive"``, ``"reference"``).
    description:
        One-line human description (the shell's ``engine`` command
        prints it).
    supports_warm_start:
        Whether :meth:`run` honours the ``warm_start`` resume state.  A
        :class:`~repro.core.session.Session` falls back to a cold
        recompute when the selected engine cannot warm-start.
    supports_trace:
        Whether the underlying kernel can replay pass-by-pass traces
        (only the naive transcription can).
    supports_plan:
        Whether :meth:`run` consumes a
        :class:`~repro.core.plan.CompiledPlan`.  Engines without plan
        support silently ignore the argument — every engine's result is
        bit-identical with or without a plan, so dropping it only costs
        the speed-up, never correctness.
    """

    name: str
    description: str
    supports_warm_start: bool
    supports_trace: bool
    supports_plan: bool
    _run: _RunFn = field(repr=False)

    def run(
        self,
        encoding: BasisEncoding,
        x_mask: int,
        fd_masks: Sequence[tuple[int, int]],
        mvd_masks: Sequence[tuple[int, int]],
        *,
        stats: KernelStats | None = None,
        fired: set[int] | None = None,
        warm_start: tuple[int, Iterable[int], Sequence[int]] | None = None,
        plan: CompiledPlan | None = None,
    ) -> tuple[int, frozenset[int], int]:
        """Compute ``(X⁺, DB, passes)`` for ``x_mask`` under the mask Σ.

        ``fired`` optionally collects provenance (FDs-then-MVDs indices
        of productive firings); ``warm_start`` optionally resumes from a
        smaller-Σ fixpoint ``(x_plus, blocks, pending_indices)`` when
        :attr:`supports_warm_start` — it is a programming error to pass
        one otherwise.  ``plan`` optionally supplies the compiled form
        of the same Σ; it is ignored unless :attr:`supports_plan`.
        """
        if warm_start is not None and not self.supports_warm_start:
            raise ValueError(
                f"engine {self.name!r} does not support warm starts"
            )
        if plan is not None and not self.supports_plan:
            plan = None
        return self._run(
            encoding, x_mask, fd_masks, mvd_masks,
            stats=stats, fired=fired, warm_start=warm_start, plan=plan,
        )


_REGISTRY: dict[str, Engine] = {}
_DEFAULT_NAME = "worklist"


def register_engine(engine: Engine) -> Engine:
    """Add an engine to the registry (last registration wins per name)."""
    _REGISTRY[engine.name] = engine
    return engine


def available_engines() -> tuple[str, ...]:
    """Registered engine names, registration order."""
    return tuple(_REGISTRY)


def get_engine(name: str | None = None) -> Engine:
    """Look up an engine by name; ``None`` means the current default.

    Raises ``ValueError`` (message ``unknown kernel ...``, matching the
    historical :func:`~repro.core.closure.compute_closure` contract) for
    unregistered names.
    """
    if name is None:
        name = _DEFAULT_NAME
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown kernel {name!r} (available: {known})"
        ) from None


def get_default_engine() -> Engine:
    """The engine used when no name is pinned."""
    return get_engine(None)


def set_default_engine(name: str) -> str:
    """Set the process-global default engine; returns the previous name.

    The CLI wraps command dispatch in ``set_default_engine`` /
    restore-previous so ``--engine`` never leaks across invocations in
    the same process (tests drive ``main()`` repeatedly).
    """
    global _DEFAULT_NAME
    get_engine(name)  # validate before switching
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = name
    return previous


# -- adapters ------------------------------------------------------------


def _worklist_run(
    encoding: BasisEncoding,
    x_mask: int,
    fd_masks: Sequence[tuple[int, int]],
    mvd_masks: Sequence[tuple[int, int]],
    *,
    stats: KernelStats | None = None,
    fired: set[int] | None = None,
    warm_start: tuple[int, Iterable[int], Sequence[int]] | None = None,
    plan: CompiledPlan | None = None,
) -> tuple[int, frozenset[int], int]:
    # Route through the observability wrapper so every run — registry or
    # direct — shows up as a ``closure.compute`` span when tracing is on.
    from .closure import closure_of_masks_instrumented

    return closure_of_masks_instrumented(
        encoding, x_mask, fd_masks, mvd_masks,
        stats=stats, fired=fired, warm_start=warm_start, plan=plan,
    )


def _naive_run(
    encoding: BasisEncoding,
    x_mask: int,
    fd_masks: Sequence[tuple[int, int]],
    mvd_masks: Sequence[tuple[int, int]],
    *,
    stats: KernelStats | None = None,
    fired: set[int] | None = None,
    warm_start: tuple[int, Iterable[int], Sequence[int]] | None = None,
    plan: CompiledPlan | None = None,
) -> tuple[int, frozenset[int], int]:
    from .closure import closure_of_masks

    initial = (warm_start[0], warm_start[1]) if warm_start is not None else None
    x_plus, blocks, passes = closure_of_masks(
        encoding, x_mask, fd_masks, mvd_masks, fired=fired, initial=initial,
    )
    if stats is not None:
        # The naive kernel has no internal counters; runs/passes/firings
        # are exact from the outside (every pass fires all of Σ).
        stats.runs += 1
        stats.passes += passes
        stats.firings += passes * (len(fd_masks) + len(mvd_masks))
    return x_plus, blocks, passes


def _reference_run(
    encoding: BasisEncoding,
    x_mask: int,
    fd_masks: Sequence[tuple[int, int]],
    mvd_masks: Sequence[tuple[int, int]],
    *,
    stats: KernelStats | None = None,
    fired: set[int] | None = None,
    warm_start: tuple[int, Iterable[int], Sequence[int]] | None = None,
    plan: CompiledPlan | None = None,
) -> tuple[int, frozenset[int], int]:
    root = encoding.root
    decode = encoding.decode
    dependencies = [
        FunctionalDependency(decode(u), decode(v)) for (u, v) in fd_masks
    ] + [
        MultivaluedDependency(decode(u), decode(v)) for (u, v) in mvd_masks
    ]
    x_plus, db = reference_closure(root, decode(x_mask), dependencies)
    blocks = frozenset(encoding.encode(w) for w in db)
    if fired is not None:
        # The structural run does not track firings; the conservative
        # provenance ("everything may have mattered") keeps Session
        # retraction sound — it can only over-evict, never under-evict.
        fired.update(range(len(dependencies)))
    if stats is not None:
        stats.runs += 1
        stats.passes += 1
    return encoding.encode(x_plus), blocks, 1


register_engine(Engine(
    name="worklist",
    description="dirty-set worklist kernel (fast; warm starts, provenance, plans)",
    supports_warm_start=True,
    supports_trace=False,
    supports_plan=True,
    _run=_worklist_run,
))
register_engine(Engine(
    name="naive",
    description="pass-by-pass pseudocode transcription (traceable)",
    supports_warm_start=True,
    supports_trace=True,
    supports_plan=False,
    _run=_naive_run,
))
register_engine(Engine(
    name="reference",
    description="structural NestedAttribute implementation (slow; differential oracle)",
    supports_warm_start=False,
    supports_trace=False,
    supports_plan=False,
    _run=_reference_run,
))
