"""The typed command registry: one dispatch surface for every operation.

Every reasoning operation the paper gives us — membership of ``X → Y``
/ ``X ↠ Y`` via ``X⁺`` and ``DepB(X)`` (Algorithm 5.1, Theorem 6.3),
closures, dependency bases, covers, candidate keys, 4NF checks — used to
be dispatched five separate times: the :class:`~repro.reasoner.Reasoner`
façade, the ``repro`` CLI, the interactive shell, the batch evaluator
and the serve protocol's hand-maintained op set plus the if-chain in
``server.py``.  This module replaces all of that with a single source of
truth:

* Each operation is a **frozen dataclass command** (:class:`Implies`,
  :class:`Closure`, :class:`Basis`, :class:`Add`, :class:`Retract`,
  :class:`MinimalCover`, :class:`Keys`, :class:`Check4NF`,
  :class:`IsRedundant`, …) carrying a declared :class:`CommandSpec`:
  wire params and result fields (with JSON types, used for per-op
  validation), a ``read_only`` flag (drives client-side retry safety),
  a cost class (``hot``/``cold``/``edit``/``admin``, drives the
  server's shed-cold policy) and a docs line (drives the generated
  op table in docs/SERVER.md).

* A single executor (:func:`execute`) runs any command against a
  :class:`~repro.core.session.Session` under uniform observability
  (``command.run`` spans, ``command.*`` counters, a ``command.ms``
  histogram — see docs/OBSERVABILITY.md) and an optional soft
  :class:`Deadline` honoured between units of work by compound
  commands.

* The registry (:data:`REGISTRY`, :func:`wire_ops`,
  :func:`from_wire`) is what the five surfaces consume:
  ``serve/protocol.py`` derives its ``OPS`` set from
  :func:`wire_ops`; ``server.py`` looks commands up here instead of
  branching per op (cold closures still ride the worker-offload seam
  via :meth:`Command.lhs_masks`); the CLI and shell build their verb
  tables and help text from the specs; ``Reasoner`` and
  ``BulkReasoner`` execute command objects.

Adding a future operation is therefore **one file**: define the
dataclass with its spec here and every surface — wire validation, the
server, the CLI verb list, shell help, the generated docs table — picks
it up.  :func:`_check_registry` runs at import time and fails loudly if
a registered command is missing any part of its contract.

Layering note: this module lives in ``repro.core`` and never imports
``repro.serve``.  Wire-parameter validation raises
:class:`CommandParamError` (a ``ValueError``), which the server maps to
its typed ``bad_params`` wire code — the messages here are exactly the
ones the wire protocol has always produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Mapping

from ..attributes.printer import unparse_abbreviated
from ..dependencies.dependency import Dependency, FunctionalDependency
from ..obs import get_observer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session

__all__ = [
    "CommandParamError",
    "DeadlineExceeded",
    "Deadline",
    "CommandContext",
    "Outcome",
    "ParamSpec",
    "FieldSpec",
    "CommandSpec",
    "Command",
    "Ping",
    "Health",
    "Open",
    "Add",
    "Retract",
    "Implies",
    "ImpliesBatch",
    "Closure",
    "Basis",
    "MinimalCover",
    "Keys",
    "Check4NF",
    "IsRedundant",
    "Trace",
    "Metrics",
    "Close",
    "ReplicateSubscribe",
    "ReplicateAck",
    "ReplicateStatus",
    "REGISTRY",
    "register",
    "wire_ops",
    "from_wire",
    "retry_safe",
    "execute",
    "op_table",
]


# --------------------------------------------------------------------------
# Errors, deadlines, context

class CommandParamError(ValueError):
    """A wire parameter failed its declared validation.

    Subclasses :class:`ValueError` so the server's generic error mapping
    turns it into the typed ``bad_params`` wire error with this message.
    """


class DeadlineExceeded(TimeoutError):
    """A command overran its soft :class:`Deadline`.

    Subclasses :class:`TimeoutError` (``asyncio.TimeoutError`` on
    3.11+), so the server's timeout mapping produces the typed
    ``timeout`` wire error.
    """


class Deadline:
    """A soft deadline compound commands poll between units of work.

    The hard per-request deadline on the server is ``asyncio.wait_for``;
    this object lets long loops (batch sweeps, key searches) stop at a
    clean boundary instead of being cancelled mid-kernel.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, seconds: float, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._expires_at = clock() + seconds

    def remaining(self) -> float:
        return self._expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired:
            raise DeadlineExceeded("command exceeded its deadline")


@dataclass
class CommandContext:
    """What a command runs against: the session plus the soft deadline."""

    session: "Session"
    deadline: Deadline | None = None

    def check_deadline(self) -> None:
        if self.deadline is not None:
            self.deadline.check()


@dataclass
class Outcome:
    """What executing a command produced.

    ``result`` is the wire-shaped JSON object (exactly what the server
    returns and what the CLI renders); ``value`` is the rich in-process
    object for local façades (a verdict, a :class:`ClosureResult`, a
    :class:`~repro.dependencies.sigma.DependencySet`, …); ``mutated``
    tells the server whether to bump the session generation so stale
    offloaded results are never seeded.
    """

    result: dict[str, Any]
    mutated: bool = False
    value: Any = None


# --------------------------------------------------------------------------
# Specs

#: JSON types a wire parameter may declare.
_PARAM_TYPES = ("string", "list[string]", "bool", "int", "number")

#: Cost classes: ``admin`` (bookkeeping), ``edit`` (Σ mutation),
#: ``hot`` (cache-hit lookups only) and ``cold`` (may run the kernel —
#: the server's shed-cold policy applies).
_COST_CLASSES = ("admin", "edit", "hot", "cold")

#: Who executes the command: ``session`` commands run against one
#: :class:`Session`; ``server`` commands need server state (session
#: table, uptime, counters) and are bound by the server at startup.
_SCOPES = ("session", "server")


@dataclass(frozen=True)
class ParamSpec:
    """One declared wire parameter."""

    name: str
    type: str = "string"
    required: bool = True
    #: Extra predicate on top of the type check (e.g. non-empty).
    non_empty: bool = False
    #: Short note for the generated docs table (e.g. ``"(list)"``).
    doc: str = ""

    def validate(self, params: Mapping[str, Any]) -> Any:
        """Extract and type-check this parameter from raw wire params.

        A missing required parameter fails the type check (``None`` is
        never a valid value), producing the same message an
        ill-typed value would — exactly the wire errors the protocol
        has always spoken.
        """
        if self.name not in params and not self.required:
            return None
        value = params.get(self.name)
        if self.type == "string":
            if not isinstance(value, str) or (self.non_empty and not value):
                kind = "a non-empty string" if self.non_empty else "a string"
                raise CommandParamError(f"{self.name!r} must be {kind}")
            return value
        if self.type == "list[string]":
            if (not isinstance(value, list)
                    or not all(isinstance(item, str) for item in value)):
                raise CommandParamError(
                    f"{self.name!r} must be a list of strings")
            return list(value)
        if self.type == "bool":
            return bool(value)
        if self.type == "int":
            # bool subclasses int in Python but not on the wire
            if not isinstance(value, int) or isinstance(value, bool):
                raise CommandParamError(f"{self.name!r} must be an integer")
            if self.non_empty and value < 0:
                raise CommandParamError(
                    f"{self.name!r} must be a non-negative integer")
            return value
        if self.type == "number":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise CommandParamError(f"{self.name!r} must be a number")
            return float(value)
        raise AssertionError(f"unknown param type {self.type!r}")


@dataclass(frozen=True)
class FieldSpec:
    """One declared result field (documentation + completeness checks)."""

    name: str
    doc: str = ""


@dataclass(frozen=True)
class CommandSpec:
    """Everything the surfaces need to know about one operation."""

    #: The wire op name (also the CLI/shell verb).
    name: str
    #: One-line summary (docs table, CLI help, shell help).
    summary: str
    #: Usage hint for the shell help (e.g. ``"implies <dep>"``).
    usage: str
    params: tuple[ParamSpec, ...] = ()
    result: tuple[FieldSpec, ...] = ()
    #: Whether the command leaves the served session unchanged.  Drives
    #: client-side retry derivation (see :func:`retry_safe`).
    read_only: bool = True
    #: ``admin`` / ``edit`` / ``hot`` / ``cold`` (see ``_COST_CLASSES``).
    cost: str = "hot"
    #: Whether the op is exposed on the wire protocol.
    wire: bool = True
    #: ``session`` or ``server`` (see ``_SCOPES``).
    scope: str = "session"

    def positional(self) -> tuple[ParamSpec, ...]:
        """Params a CLI invocation supplies positionally (everything
        except the ambient ``session`` name)."""
        return tuple(p for p in self.params if p.name != "session")


# --------------------------------------------------------------------------
# The command base class and registry

#: Wire-op name → command class, in declaration (= docs table) order.
REGISTRY: dict[str, type["Command"]] = {}


def register(cls: type["Command"]) -> type["Command"]:
    """Class decorator: add a command to the registry (keyed by name)."""
    spec = cls.spec
    if spec.name in REGISTRY:
        raise AssertionError(f"duplicate command name {spec.name!r}")
    REGISTRY[spec.name] = cls
    return cls


@dataclass(frozen=True)
class Command:
    """Base class for all typed commands (frozen — safe to share/log)."""

    spec: ClassVar[CommandSpec]

    def run(self, ctx: CommandContext) -> Outcome:
        """Execute against ``ctx.session``; implemented per command."""
        raise NotImplementedError  # pragma: no cover - abstract

    def lhs_masks(self, session: "Session") -> tuple[int, ...]:
        """Left-hand-side masks this command will need closures for.

        The server prefetches these through its worker-offload seam
        (cold masks compute on the pool, results seed the session
        cache) before running the command inline against a warm cache.
        Commands whose cold work is not expressible as LHS closures
        (cover, keys, …) return ``()`` and are shed entirely near
        capacity.
        """
        return ()

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "Command":
        """Build a validated instance from raw wire params."""
        values: dict[str, Any] = {}
        for param in cls.spec.params:
            value = param.validate(params)
            if value is not None or param.required:
                values[param.name] = value
        return cls(**values)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        """CLI rendering of a wire result: ``(lines, exit_code)``.

        The default prints each declared result field; commands with a
        pinned CLI format override this.
        """
        return [f"{key}: {result[key]!r}"
                for key in (f.name for f in cls.spec.result)
                if key in result], 0

    # -- shared parsing helpers (session-scope commands) -------------------

    @staticmethod
    def _dependency(session: "Session",
                    dependency: "Dependency | str") -> Dependency:
        parsed = (session.dependency(dependency)
                  if isinstance(dependency, str) else dependency)
        parsed.validate(session.root)
        return parsed

    @staticmethod
    def _attribute_mask(session: "Session", x: Any) -> int:
        attribute = session.attribute(x) if isinstance(x, str) else x
        return session.encoding.encode(attribute)


def wire_ops() -> frozenset[str]:
    """The wire-exposed operation set (what ``protocol.OPS`` is)."""
    return frozenset(name for name, cls in REGISTRY.items() if cls.spec.wire)


def wire_commands() -> tuple[type[Command], ...]:
    """Wire-exposed command classes in declaration order (docs, CLI)."""
    return tuple(cls for cls in REGISTRY.values() if cls.spec.wire)


def from_wire(op: str, params: Mapping[str, Any]) -> Command:
    """Look up and build a validated command from a wire request.

    Raises :class:`KeyError` for unknown/non-wire ops (the protocol
    layer rejects those earlier with its typed ``unknown_op``) and
    :class:`CommandParamError` for parameter problems.
    """
    cls = REGISTRY.get(op)
    if cls is None or not cls.spec.wire:
        raise KeyError(op)
    return cls.from_params(params)


def retry_safe(op: str, code: str) -> bool:
    """Whether retrying ``op`` after the retryable failure ``code`` is safe.

    Derived from the registry's ``read_only`` flags instead of a
    hand-kept list: an ``overloaded`` rejection happens *before*
    execution, so every op may be resent; a ``timeout`` may have fired
    mid-execution, so only commands that declare themselves read-only
    are resent automatically — a timed-out mutation surfaces to the
    caller rather than risking a double apply.  Unknown ops are treated
    as mutating (the conservative default).
    """
    if code == "overloaded":
        return True
    cls = REGISTRY.get(op)
    return cls is not None and cls.spec.read_only


# --------------------------------------------------------------------------
# The executor

def execute(command: Command, session: "Session", *,
            timeout: float | None = None) -> Outcome:
    """Run one command against a session under uniform observability.

    Emits a ``command.run`` span (attrs: ``command``, ``cost``,
    ``read_only``; completion attr ``ok``), ticks ``command.executed``
    / ``command.errors`` / ``command.<name>`` counters and records a
    ``command.ms`` histogram sample when an observer is installed; the
    disabled-observer path adds nothing but the dataclass call.
    ``timeout`` arms a soft :class:`Deadline` that compound commands
    honour between units of work.
    """
    ctx = CommandContext(session,
                         Deadline(timeout) if timeout is not None else None)
    obs = get_observer()
    if not obs.enabled:
        return command.run(ctx)
    spec = command.spec
    started = time.monotonic()
    with obs.span("command.run", command=spec.name, cost=spec.cost,
                  read_only=spec.read_only) as span:
        try:
            outcome = command.run(ctx)
        except Exception as error:
            obs.add("command.errors")
            span.set(error=type(error).__name__)
            raise
        span.set(ok=True)
    obs.add("command.executed")
    obs.add(f"command.{spec.name}")
    obs.observe("command.ms", (time.monotonic() - started) * 1000.0)
    return outcome


# --------------------------------------------------------------------------
# Server-scope commands (handlers bound by the server at startup)

_SESSION_PARAM = ParamSpec("session")


@register
@dataclass(frozen=True)
class Ping(Command):
    """Liveness + identity probe."""

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="ping",
        summary="liveness probe: protocol version, uptime, session count",
        usage="ping",
        params=(),
        result=(FieldSpec("pong"), FieldSpec("version"),
                FieldSpec("uptime_s"), FieldSpec("sessions")),
        read_only=True, cost="admin", scope="server",
    )


@register
@dataclass(frozen=True)
class Health(Command):
    """Deep liveness: answered before every admission gate."""

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="health",
        summary="health probe answered before backpressure/drain/faults",
        usage="health",
        params=(),
        result=(FieldSpec("status"), FieldSpec("version"),
                FieldSpec("uptime_s"), FieldSpec("sessions"),
                FieldSpec("inflight"), FieldSpec("draining"),
                FieldSpec("shedding"), FieldSpec("faults", doc="optional"),
                FieldSpec("store", doc="optional")),
        read_only=True, cost="admin", scope="server",
    )


@register
@dataclass(frozen=True)
class Open(Command):
    """Create (or with ``replace`` recreate) a named session."""

    name: str = ""
    schema: str = ""
    dependencies: tuple[str, ...] = ()
    engine: str | None = None
    replace: bool = False

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="open",
        summary="open a named session over a schema and initial Σ",
        usage="open --schema <N> [-d DEP ...]",
        params=(ParamSpec("name", non_empty=True),
                ParamSpec("schema"),
                ParamSpec("dependencies", type="list[string]",
                          required=False, doc="?"),
                ParamSpec("engine", required=False, doc="?"),
                ParamSpec("replace", type="bool", required=False, doc="?")),
        result=(FieldSpec("name"), FieldSpec("sigma"), FieldSpec("engine"),
                FieldSpec("seq", doc="optional")),
        read_only=False, cost="admin", scope="server",
    )

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "Open":
        specs = {p.name: p for p in cls.spec.params}
        return cls(
            name=specs["name"].validate(params),
            schema=specs["schema"].validate(params),
            dependencies=tuple(specs["dependencies"].validate(params) or ()),
            engine=specs["engine"].validate(params),
            replace=bool(params.get("replace", False)),
        )


@register
@dataclass(frozen=True)
class Add(Command):
    """Add one dependency to Σ (idempotent; warm-starts the cache)."""

    dependency: "Dependency | str" = ""
    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="add",
        summary="add a dependency to Σ (warm-starts cached closures)",
        usage="add <dep>",
        params=(_SESSION_PARAM, ParamSpec("dependency")),
        result=(FieldSpec("added"), FieldSpec("sigma"),
                FieldSpec("seq", doc="optional")),
        read_only=False, cost="edit",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        session = ctx.session
        added = session.add(self._dependency(session, self.dependency))
        return Outcome({"added": added, "sigma": len(session)},
                       mutated=added, value=added)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        word = "added" if result["added"] else "already present"
        return [f"{word} (|Σ|={result['sigma']})"], 0


@register
@dataclass(frozen=True)
class Retract(Command):
    """Remove one dependency from Σ (provenance-exact eviction)."""

    dependency: "Dependency | str" = ""
    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="retract",
        summary="remove a Σ member (provenance-exact cache eviction)",
        usage="retract <dep>",
        params=(_SESSION_PARAM, ParamSpec("dependency")),
        result=(FieldSpec("retracted"), FieldSpec("sigma"),
                FieldSpec("seq", doc="optional")),
        read_only=False, cost="edit",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        session = ctx.session
        removed = session.retract(self._dependency(session, self.dependency))
        return Outcome(
            {"retracted": removed.display(session.root),
             "sigma": len(session)},
            mutated=True, value=removed)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        return [f"retracted {result['retracted']} "
                f"(|Σ|={result['sigma']})"], 0


@register
@dataclass(frozen=True)
class Implies(Command):
    """Decide ``Σ ⊨ σ`` for one FD/MVD (Algorithm 5.1 + Theorem 6.3)."""

    dependency: "Dependency | str" = ""
    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="implies",
        summary="decide Σ ⊨ σ for one FD/MVD",
        usage="implies <dep>",
        params=(_SESSION_PARAM, ParamSpec("dependency")),
        result=(FieldSpec("implied"),),
        read_only=True, cost="cold",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        session = ctx.session
        verdict = session.implies(self._dependency(session, self.dependency))
        return Outcome({"implied": verdict}, value=verdict)

    def lhs_masks(self, session: "Session") -> tuple[int, ...]:
        dependency = self._dependency(session, self.dependency)
        return (session.encoding.encode(dependency.lhs),)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        implied = result["implied"]
        return ["implied" if implied else "not implied"], 0 if implied else 1


@register
@dataclass(frozen=True)
class ImpliesBatch(Command):
    """Batch membership: one closure per distinct LHS, verdicts in order."""

    dependencies: tuple["Dependency | str", ...] = ()
    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="implies_batch",
        summary="batch membership (one closure per distinct LHS)",
        usage="implies_batch <dep> [<dep> ...]",
        params=(_SESSION_PARAM,
                ParamSpec("dependencies", type="list[string]", doc="(list)")),
        result=(FieldSpec("verdicts", doc="(list, query order)"),),
        read_only=True, cost="cold",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        session = ctx.session
        queries = self._queries(session)
        obs = get_observer()
        verdicts: list[bool] = []
        for index, (dependency, lhs_mask, rhs_mask) in enumerate(queries):
            ctx.check_deadline()
            is_fd = isinstance(dependency, FunctionalDependency)
            if obs.enabled:
                with obs.span("batch.query", index=index,
                              kind="fd" if is_fd else "mvd",
                              lhs=format(lhs_mask, "#x")) as span:
                    verdict = self._verdict(session, is_fd, lhs_mask, rhs_mask)
                    span.set(verdict=verdict)
            else:
                verdict = self._verdict(session, is_fd, lhs_mask, rhs_mask)
            verdicts.append(verdict)
        return Outcome({"verdicts": verdicts}, value=verdicts)

    def _queries(self, session: "Session"
                 ) -> list[tuple[Dependency, int, int]]:
        encode = session.encoding.encode
        queries = []
        for dependency in self.dependencies:
            parsed = self._dependency(session, dependency)
            queries.append((parsed, encode(parsed.lhs), encode(parsed.rhs)))
        return queries

    @staticmethod
    def _verdict(session: "Session", is_fd: bool, lhs_mask: int,
                 rhs_mask: int) -> bool:
        result = session.result_for_mask(lhs_mask)
        return (result.implies_fd_rhs(rhs_mask) if is_fd
                else result.implies_mvd_rhs(rhs_mask))

    def lhs_masks(self, session: "Session") -> tuple[int, ...]:
        encode = session.encoding.encode
        seen: dict[int, None] = {}
        for dependency in self.dependencies:
            seen.setdefault(encode(self._dependency(session,
                                                    dependency).lhs))
        return tuple(seen)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        verdicts = result["verdicts"]
        texts = result.get("dependencies", [""] * len(verdicts))
        lines = [f"{'implied    ' if verdict else 'not implied'}  {text}"
                 for verdict, text in zip(verdicts, texts)]
        return lines, 0 if all(verdicts) else 1


@register
@dataclass(frozen=True)
class Closure(Command):
    """The attribute-set closure ``X⁺`` (full Algorithm 5.1 result)."""

    x: Any = ""
    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="closure",
        summary="the attribute-set closure X⁺",
        usage="closure <X>",
        params=(_SESSION_PARAM, ParamSpec("x", doc="(subattribute text)")),
        result=(FieldSpec("closure"), FieldSpec("passes")),
        read_only=True, cost="cold",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        session = ctx.session
        result = session.result_for_mask(self._attribute_mask(session, self.x))
        return Outcome(
            {"closure": unparse_abbreviated(result.closure, session.root),
             "passes": result.passes},
            value=result)

    def lhs_masks(self, session: "Session") -> tuple[int, ...]:
        return (self._attribute_mask(session, self.x),)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        return [result["closure"]], 0


@register
@dataclass(frozen=True)
class Basis(Command):
    """The dependency basis ``DepB(X)``."""

    x: Any = ""
    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="basis",
        summary="the dependency basis DepB(X)",
        usage="basis <X>",
        params=(_SESSION_PARAM, ParamSpec("x")),
        result=(FieldSpec("basis", doc="(dependency-basis members)"),),
        read_only=True, cost="cold",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        session = ctx.session
        result = session.result_for_mask(self._attribute_mask(session, self.x))
        members = result.dependency_basis()
        return Outcome(
            {"basis": [unparse_abbreviated(member, session.root)
                       for member in members]},
            value=members)

    def lhs_masks(self, session: "Session") -> tuple[int, ...]:
        return (self._attribute_mask(session, self.x),)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        return list(result["basis"]), 0


@register
@dataclass(frozen=True)
class MinimalCover(Command):
    """An equivalent redundancy-free subset of Σ (on a scratch session)."""

    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="cover",
        summary="an equivalent redundancy-free subset of Σ",
        usage="cover",
        params=(_SESSION_PARAM,),
        result=(FieldSpec("cover", doc="(list of dependency displays)"),
                FieldSpec("sigma")),
        read_only=True, cost="cold",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        from .membership import minimal_cover

        session = ctx.session
        # A scratch session does the retract/implies sweeps, so the
        # live session's Σ and caches are never touched (read-only).
        cover = minimal_cover(session.sigma, encoding=session.encoding,
                              engine=session.engine.name)
        return Outcome(
            {"cover": [dependency.display(session.root)
                       for dependency in cover],
             "sigma": len(cover)},
            value=cover)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        return list(result["cover"]) or ["(empty)"], 0


@register
@dataclass(frozen=True)
class Keys(Command):
    """Candidate keys (≤-minimal superkeys within the search budget)."""

    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="keys",
        summary="candidate keys (≤-minimal superkeys, bounded search)",
        usage="keys",
        params=(_SESSION_PARAM,),
        result=(FieldSpec("keys", doc="(list of attribute displays)"),),
        read_only=True, cost="cold",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        from ..normalization.keys import candidate_keys

        session = ctx.session
        found = candidate_keys(session.sigma, encoding=session.encoding)
        return Outcome(
            {"keys": [unparse_abbreviated(key, session.root)
                      for key in found]},
            value=found)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        return list(result["keys"]), 0


@register
@dataclass(frozen=True)
class Check4NF(Command):
    """The generalised fourth-normal-form test."""

    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="check4nf",
        summary="generalised 4NF test with the violating MVDs",
        usage="check4nf",
        params=(_SESSION_PARAM,),
        result=(FieldSpec("in_4nf"),
                FieldSpec("violations", doc="(list of MVD displays)")),
        read_only=True, cost="cold",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        from ..normalization.fourth_normal_form import violations

        session = ctx.session
        found = violations(session.sigma, encoding=session.encoding,
                           session=session)
        return Outcome(
            {"in_4nf": not found,
             "violations": [violation.as_mvd().display(session.root)
                            for violation in found]},
            value=found)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        if result["in_4nf"]:
            return ["in 4NF"], 0
        lines = ["NOT in 4NF"]
        lines.extend(f"  violated by: {violation}"
                     for violation in result["violations"])
        return lines, 1


@register
@dataclass(frozen=True)
class IsRedundant(Command):
    """Whether a Σ member follows from the others (scratch session)."""

    dependency: "Dependency | str" = ""
    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="is_redundant",
        summary="whether a Σ member follows from the other members",
        usage="is_redundant <dep>",
        params=(_SESSION_PARAM, ParamSpec("dependency")),
        result=(FieldSpec("redundant"), FieldSpec("dependency")),
        read_only=True, cost="cold",
    )

    def run(self, ctx: CommandContext) -> Outcome:
        from .membership import is_redundant

        session = ctx.session
        dependency = self._dependency(session, self.dependency)
        # No session= here: is_redundant retracts/re-adds while probing,
        # which must happen on a scratch session, not the served one.
        verdict = is_redundant(session.sigma, dependency,
                               encoding=session.encoding,
                               engine=session.engine.name)
        return Outcome(
            {"redundant": verdict,
             "dependency": dependency.display(session.root)},
            value=verdict)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        redundant = result["redundant"]
        return ["redundant" if redundant else "not redundant"], (
            0 if redundant else 1)


@register
@dataclass(frozen=True)
class Trace(Command):
    """Replay Algorithm 5.1 state by state (local only, not wire)."""

    x: Any = ""
    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="trace",
        summary="replay Algorithm 5.1 state by state (Figures 3-4 style)",
        usage="trace <X>",
        params=(_SESSION_PARAM, ParamSpec("x")),
        result=(FieldSpec("trace", doc="(rendered text)"),),
        read_only=True, cost="cold", wire=False,
    )

    def run(self, ctx: CommandContext) -> Outcome:
        from .closure import compute_closure
        from .trace import TraceRecorder

        session = ctx.session
        recorder = TraceRecorder()
        compute_closure(session.encoding,
                        self._attribute_mask(session, self.x),
                        session.sigma, trace=recorder)
        return Outcome({"trace": recorder.render()}, value=recorder)

    @classmethod
    def render(cls, result: dict[str, Any]) -> tuple[list[str], int]:
        return [result["trace"]], 0


@register
@dataclass(frozen=True)
class Metrics(Command):
    """Server + per-session counters."""

    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="metrics",
        summary="server and per-session cache/kernel counters",
        usage="metrics",
        params=(ParamSpec("session", required=False,
                          doc="? (restrict to one session)"),),
        result=(FieldSpec("server"), FieldSpec("sessions")),
        read_only=True, cost="admin", scope="server",
    )


@register
@dataclass(frozen=True)
class Close(Command):
    """Close a named session."""

    session: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="close",
        summary="close a named session",
        usage="close",
        params=(_SESSION_PARAM,),
        result=(FieldSpec("closed"), FieldSpec("sigma"),
                FieldSpec("seq", doc="optional")),
        read_only=False, cost="admin", scope="server",
    )


@register
@dataclass(frozen=True)
class ReplicateSubscribe(Command):
    """Ship acknowledged WAL records to a follower (long-poll pull).

    A follower asks for everything after ``from_seq``; a store-backed
    node answers with the next batch of records (or long-polls up to
    ``wait`` seconds when it is already caught up).  When ``from_seq``
    predates the retained history (the primary compacted past it), the
    answer carries a ``reset`` bootstrap instead: the current session
    snapshot plus ``last_seq``, from which a cold follower rebuilds.
    """

    from_seq: int = 0
    max_records: int | None = None
    wait: float | None = None
    follower: str | None = None

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="replicate.subscribe",
        summary="ship acknowledged WAL records after from_seq (long-poll)",
        usage="replicate.subscribe <from_seq>",
        params=(ParamSpec("from_seq", type="int", non_empty=True),
                ParamSpec("max_records", type="int", required=False,
                          doc="? (batch cap)"),
                ParamSpec("wait", type="number", required=False,
                          doc="? (long-poll seconds)"),
                ParamSpec("follower", required=False,
                          doc="? (follower id for lag tracking)")),
        result=(FieldSpec("records", doc="([{seq, op, params}, ...])"),
                FieldSpec("last_seq"),
                FieldSpec("reset", doc="optional")),
        read_only=True, cost="admin", scope="server",
    )


@register
@dataclass(frozen=True)
class ReplicateAck(Command):
    """Record a follower's durably applied replication position."""

    follower: str = ""
    seq: int = 0

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="replicate.ack",
        summary="record a follower's applied replication position",
        usage="replicate.ack <follower> <seq>",
        params=(ParamSpec("follower", non_empty=True),
                ParamSpec("seq", type="int", non_empty=True)),
        result=(FieldSpec("acked"), FieldSpec("last_seq")),
        read_only=True, cost="admin", scope="server",
    )


@register
@dataclass(frozen=True)
class ReplicateStatus(Command):
    """Replication role and positions (both roles answer it)."""

    spec: ClassVar[CommandSpec] = CommandSpec(
        name="replicate.status",
        summary="replication role, log positions and follower lag",
        usage="replicate.status",
        params=(),
        result=(FieldSpec("role", doc="(primary | replica | ephemeral)"),
                FieldSpec("last_seq"),
                FieldSpec("replica", doc="optional"),
                FieldSpec("followers", doc="optional")),
        read_only=True, cost="admin", scope="server",
    )


# --------------------------------------------------------------------------
# Docs generation

def op_table() -> str:
    """The docs/SERVER.md operations table, generated from the registry.

    ``python -m repro.serve --op-table`` prints this; a CI step fails
    when the committed docs drift from it.
    """
    rows: list[tuple[str, str, str]] = []
    for cls in wire_commands():
        spec = cls.spec
        params = ", ".join(
            f"`{p.name}{'?' if not p.required else ''}`"
            + (f" {p.doc.lstrip('?').strip()}"
               if p.doc.lstrip("?").strip() else "")
            for p in spec.params) or "—"
        fields_text = ", ".join(f.name for f in spec.result
                                if f.doc != "optional")
        optional = [f.name for f in spec.result if f.doc == "optional"]
        if optional:
            fields_text += ", " + ", ".join(f"{name}?" for name in optional)
        notes = [f.doc for f in spec.result
                 if f.doc and f.doc != "optional" and f.doc.startswith("(")]
        result = f"`{{{fields_text}}}`" + (f" {notes[0]}" if notes else "")
        rows.append((f"`{spec.name}`", params, result))
    widths = [max(len(row[column]) for row in rows + [
        ("op", "params", "result")]) for column in range(3)]
    header = ("| " + " | ".join(
        name.ljust(width) for name, width in
        zip(("op", "params", "result"), widths)) + " |")
    rule = ("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    lines = [header, rule]
    for row in rows:
        lines.append("| " + " | ".join(
            cell.ljust(width) for cell, width in zip(row, widths)) + " |")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Import-time completeness guard

def _check_registry() -> None:
    """Fail the import if any registered command breaks the contract.

    Every command must declare a full wire schema (typed params, result
    fields), a docs line, a cost class and scope from the known sets,
    and — for session-scope commands — an actual ``run`` handler.
    Silent drift between the registry and any surface is impossible
    when this passes: ``protocol.OPS``, per-op validation, the CLI verb
    table, shell help and the docs table are all *derived* from specs
    this function vetted.
    """
    for name, cls in REGISTRY.items():
        spec = cls.spec
        if spec.name != name:
            raise AssertionError(f"registry key {name!r} != spec {spec.name!r}")
        if not spec.summary or not spec.usage:
            raise AssertionError(f"command {name!r} is missing its docs entry")
        if spec.cost not in _COST_CLASSES:
            raise AssertionError(f"command {name!r}: bad cost {spec.cost!r}")
        if spec.scope not in _SCOPES:
            raise AssertionError(f"command {name!r}: bad scope {spec.scope!r}")
        for param in spec.params:
            if param.type not in _PARAM_TYPES:
                raise AssertionError(
                    f"command {name!r}: param {param.name!r} has unknown "
                    f"type {param.type!r}")
        if spec.wire and not spec.result:
            raise AssertionError(
                f"wire command {name!r} declares no result fields")
        if spec.scope == "session" and cls.run is Command.run:
            raise AssertionError(f"command {name!r} has no run() handler")
        declared = {f.name for f in fields(cls)}
        for param in spec.params:
            if param.name not in declared:
                raise AssertionError(
                    f"command {name!r}: wire param {param.name!r} has no "
                    f"dataclass field")


_check_registry()
