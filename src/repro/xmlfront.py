"""XML front-end: nested attributes as document schemas.

XML is the paper's flagship motivation for list types — "the list type …
is in particular important for XML [1,47]" — because child elements are
*ordered*.  This module maps nested attributes onto XML documents with
the obvious conventions, so real documents can be checked against FDs
and MVDs:

=====================  ====================================================
attribute              XML shape
=====================  ====================================================
flat ``A``             ``<A>text</A>`` (the text is the constant)
record ``L(N₁,…,Nₖ)``  ``<L>`` with one child per component, matched by
                       the component's head (order-insensitive on input,
                       schema order on output); ``λ`` slots are omitted
list ``L[N]``          ``<L>`` with zero or more ``N``-shaped children
``λ``                  the empty element ``<L/>`` / an omitted child
=====================  ====================================================

Like :mod:`repro.io`, records whose non-``λ`` component heads collide
cannot be matched by name and are rejected (positional XML would be
ambiguous to read back).  Values use only the standard library's
``xml.etree.ElementTree``.

Example
-------
>>> from repro import Schema
>>> schema = Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
>>> document = (
...     "<Pubcrawl><Person>Sven</Person>"
...     "<Visit><Drink><Beer>Lübzer</Beer><Pub>Deanos</Pub></Drink>"
...     "<Drink><Beer>Kindl</Beer><Pub>Highflyers</Pub></Drink></Visit>"
...     "</Pubcrawl>"
... )
>>> value_from_xml(schema.root, document)
('Sven', (('Lübzer', 'Deanos'), ('Kindl', 'Highflyers')))
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Iterable

from .attributes.nested import Flat, ListAttr, NestedAttribute, Null, Record
from .attributes.printer import unparse
from .exceptions import InvalidValueError
from .values.value import OK, Value

__all__ = [
    "value_from_xml",
    "value_to_xml",
    "instance_from_xml",
    "instance_to_xml",
    "audit_documents",
]


def _mappable(record: Record) -> bool:
    heads = [
        component.head()
        for component in record.components
        if not isinstance(component, Null)
    ]
    return None not in heads and len(set(heads)) == len(heads)


def _element_of(data: str | ET.Element) -> ET.Element:
    if isinstance(data, ET.Element):
        return data
    return ET.fromstring(data)


def value_from_xml(attribute: NestedAttribute, data: str | ET.Element) -> Value:
    """Decode an XML element (or document text) into a value.

    Raises
    ------
    InvalidValueError
        When the document shape does not match the attribute (wrong tag,
        duplicate component children, stray children, structured text …).
    """
    return _decode(attribute, _element_of(data))


def _decode(attribute: NestedAttribute, element: ET.Element) -> Value:
    if isinstance(attribute, Null):
        return OK
    tag = attribute.head()
    if element.tag != tag:
        raise InvalidValueError(
            f"expected element <{tag}> for {unparse(attribute)}, got <{element.tag}>"
        )
    if isinstance(attribute, Flat):
        if len(element):
            raise InvalidValueError(
                f"flat element <{tag}> must not have children"
            )
        return (element.text or "").strip()
    if isinstance(attribute, Record):
        if not _mappable(attribute):
            raise InvalidValueError(
                f"record {unparse(attribute)} has ambiguous component heads; "
                "XML children cannot be matched by name"
            )
        children: dict[str, list[ET.Element]] = {}
        for child in element:
            children.setdefault(child.tag, []).append(child)
        known = {
            component.head()
            for component in attribute.components
            if not isinstance(component, Null)
        }
        stray = set(children) - known
        if stray:
            raise InvalidValueError(
                f"unexpected children {sorted(stray)} under <{tag}>"
            )
        values = []
        for component in attribute.components:
            if isinstance(component, Null):
                values.append(OK)
                continue
            matches = children.get(component.head(), [])
            if not matches:
                values.append(_missing_component(component))
                continue
            if len(matches) > 1:
                raise InvalidValueError(
                    f"component <{component.head()}> occurs {len(matches)} "
                    f"times under <{tag}>; wrap repetitions in a list type"
                )
            values.append(_decode(component, matches[0]))
        return tuple(values)
    if isinstance(attribute, ListAttr):
        expected = attribute.element.head()
        if isinstance(attribute.element, Null):
            # a list of λ: only the count is information — count children.
            return tuple(OK for _ in element)
        items = []
        for child in element:
            if expected is not None and child.tag != expected:
                raise InvalidValueError(
                    f"list <{tag}> expects <{expected}> children, got "
                    f"<{child.tag}>"
                )
            items.append(_decode(attribute.element, child))
        return tuple(items)
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


def _missing_component(component: NestedAttribute) -> Value:
    """A missing child decodes to the bottom value (projected reading).

    Flat and list components bottom out at ``ok``; record components
    bottom out at a tuple of bottoms (records never project to ``ok`` —
    the bottom of ``Sub(record)`` is the record of bottoms).
    """
    if isinstance(component, Record):
        return tuple(_missing_component(inner) for inner in component.components)
    return OK


def value_to_xml(attribute: NestedAttribute, value: Value) -> ET.Element:
    """Encode a value as an XML element (inverse of :func:`value_from_xml`).

    ``ok`` placeholders (projected-away parts) are omitted; flat constants
    are rendered with ``str``.
    """
    if isinstance(attribute, Null):
        raise InvalidValueError("λ has no element representation on its own")
    element = ET.Element(attribute.head())
    if isinstance(attribute, Flat):
        if value != OK:
            element.text = str(value)
        return element
    if isinstance(attribute, Record):
        if not _mappable(attribute):
            raise InvalidValueError(
                f"record {unparse(attribute)} has ambiguous component heads"
            )
        for component, component_value in zip(attribute.components, value):
            if isinstance(component, Null) or component_value == OK:
                continue
            element.append(value_to_xml(component, component_value))
        return element
    if isinstance(attribute, ListAttr):
        if value == OK:
            return element
        for item in value:
            if isinstance(attribute.element, Null):
                element.append(ET.Element("item"))
            else:
                element.append(value_to_xml(attribute.element, item))
        return element
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


def instance_from_xml(attribute: NestedAttribute,
                      documents: Iterable[str | ET.Element]) -> frozenset:
    """Decode a collection of documents into an instance."""
    return frozenset(value_from_xml(attribute, document) for document in documents)


def instance_to_xml(attribute: NestedAttribute, instance: Iterable[Value],
                    *, wrapper: str = "instance") -> ET.Element:
    """Encode an instance as one ``<wrapper>`` element of documents."""
    container = ET.Element(wrapper)
    for value in sorted(instance, key=repr):
        container.append(value_to_xml(attribute, value))
    return container


def audit_documents(root: NestedAttribute, sigma,
                    documents: Iterable[str | ET.Element],
                    *, encoding=None, engine: str | None = None):
    """Redundancy audit of XML documents: decode, then count forced values.

    The §7 workflow end to end: parse the documents as ``root``-values
    and report FD-forced occurrences per basis attribute (see
    :func:`repro.normalization.redundancy_report`).  The closures run on
    the ``engine``-selected kernel through one
    :class:`~repro.core.session.Session`.

    Returns the ``{basis attribute: forced-occurrence count}`` mapping —
    empty when the documents store nothing twice.
    """
    from .normalization import redundancy_report

    instance = instance_from_xml(root, documents)
    return redundancy_report(sigma, instance, encoding=encoding, engine=engine)
