"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AttributeSyntaxError",
    "NotASubattributeError",
    "NotAnElementError",
    "InvalidValueError",
    "IncompatibleValuesError",
    "DependencySyntaxError",
    "AmbiguousAbbreviationError",
    "WitnessConstructionError",
    "DerivationLimitExceeded",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class AttributeSyntaxError(ReproError, ValueError):
    """A textual nested-attribute expression could not be parsed."""


class AmbiguousAbbreviationError(AttributeSyntaxError):
    """An abbreviated subattribute expression matches a record ambiguously.

    The paper (Section 3.3) warns that ``L(A)`` inside ``L(A, A)`` may refer
    to either ``L(A, λ)`` or ``L(λ, A)``; such expressions are rejected.
    """


class NotASubattributeError(ReproError, ValueError):
    """An operation required ``M ≤ N`` but the relation does not hold."""


class NotAnElementError(ReproError, ValueError):
    """An attribute passed to a lattice operation is not in ``Sub(N)``."""


class InvalidValueError(ReproError, ValueError):
    """A Python object is not a member of ``dom(N)`` for the given ``N``."""


class IncompatibleValuesError(ReproError, ValueError):
    """Two partial values disagree on the meet and cannot be amalgamated."""


class DependencySyntaxError(ReproError, ValueError):
    """A textual FD/MVD expression could not be parsed."""


class WitnessConstructionError(ReproError, RuntimeError):
    """The two-tuple witness construction hit an inconsistent state.

    This indicates a violation of the invariant from Section 4.2 of the
    paper (``SubB(W ⊓ W')`` must be functionally determined by ``X`` for
    distinct blocks ``W``, ``W'`` of the dependency basis) and should never
    happen for bases produced by Algorithm 5.1.
    """


class DerivationLimitExceeded(ReproError, RuntimeError):
    """The naive derivation engine exceeded its configured step budget."""
