"""Hasse diagrams of subattribute lattices (Figures 1 and 2).

Builds the cover relation of ``Sub(N)`` (or of the basis poset
``SubB(N)``) as a :mod:`networkx` digraph, exports Graphviz DOT, and
renders a plain-text level diagram — enough to reproduce the paper's
Figure 1 (the Brouwerian algebra of ``J[K(A, L[M(B,C)])]``) and Figure 2
(the subattribute basis of ``K[L(M[N(A,B)],C)]``) without a display.

``networkx`` is an optional dependency (the ``viz`` extra); everything
else in the library works without it.
"""

from __future__ import annotations

from ..attributes.basis import basis, maximal_basis
from ..attributes.nested import NestedAttribute
from ..attributes.printer import unparse_abbreviated
from ..attributes.subattribute import is_subattribute, subattributes

__all__ = ["hasse_graph", "basis_graph", "to_dot", "ascii_levels"]


def _covers_within(elements: list[NestedAttribute]):
    """Cover pairs of a finite poset given by ``is_subattribute``."""
    for lower in elements:
        for upper in elements:
            if lower == upper or not is_subattribute(lower, upper):
                continue
            if any(
                middle not in (lower, upper)
                and is_subattribute(lower, middle)
                and is_subattribute(middle, upper)
                for middle in elements
            ):
                continue
            yield lower, upper


def hasse_graph(root: NestedAttribute):
    """The cover digraph of ``Sub(root)`` (edges point upward).

    Node attributes: ``label`` (abbreviated display), ``is_root``,
    ``is_bottom``.  Exponential in record width — intended for the small
    roots of the figures.
    """
    import networkx as nx

    from ..attributes.subattribute import bottom

    elements = list(subattributes(root))
    graph = nx.DiGraph()
    for element in elements:
        graph.add_node(
            element,
            label=unparse_abbreviated(element, root),
            is_root=element == root,
            is_bottom=element == bottom(root),
        )
    graph.add_edges_from(_covers_within(elements))
    return graph


def basis_graph(root: NestedAttribute):
    """The cover digraph of the basis poset ``SubB(root)`` (Figure 2).

    Node attribute ``maximal`` marks the elements of ``MaxB(root)``.
    """
    import networkx as nx

    elements = list(basis(root))
    maximal = set(maximal_basis(root))
    graph = nx.DiGraph()
    for element in elements:
        graph.add_node(
            element,
            label=unparse_abbreviated(element, root),
            maximal=element in maximal,
        )
    graph.add_edges_from(_covers_within(elements))
    return graph


def to_dot(graph, *, title: str = "Sub(N)") -> str:
    """Graphviz DOT text for a Hasse digraph (rank = lattice level)."""
    lines = [
        f'digraph "{title}" {{',
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for node, data in graph.nodes(data=True):
        label = data.get("label", str(node)).replace('"', '\\"')
        style = []
        if data.get("is_root") or data.get("maximal"):
            style.append("penwidth=2")
        if data.get("is_bottom"):
            style.append("style=dashed")
        attributes = f'label="{label}"' + ("," + ",".join(style) if style else "")
        lines.append(f'  "{id(node)}" [{attributes}];')
    for lower, upper in graph.edges():
        lines.append(f'  "{id(lower)}" -> "{id(upper)}";')
    lines.append("}")
    return "\n".join(lines)


def ascii_levels(graph) -> str:
    """Plain-text rendering: one line per lattice level, bottom first.

    The level of a node is the longest cover-chain distance from a
    minimal element — the vertical coordinate of the paper's figures.
    """
    import networkx as nx

    level: dict = {}
    for node in nx.topological_sort(graph):
        predecessors = list(graph.predecessors(node))
        level[node] = 1 + max((level[p] for p in predecessors), default=-1)
    by_level: dict[int, list[str]] = {}
    for node, node_level in level.items():
        label = graph.nodes[node].get("label", str(node))
        by_level.setdefault(node_level, []).append(label)
    lines = []
    for node_level in sorted(by_level):
        labels = "   ".join(sorted(by_level[node_level]))
        lines.append(f"level {node_level}:  {labels}")
    return "\n".join(lines)
