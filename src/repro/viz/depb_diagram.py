"""ASCII rendering of dependency-basis states (Figures 3 and 4 proper).

The paper's Figures 3 and 4 draw the algorithm's state as the maximal
basis attributes of ``N`` *boxed* by block membership, with the
functionally determined basis attributes *circled*.  This module renders
the same picture in text::

    (F)  (L8[λ])  (L2[λ]) …            <- circled: inside X⁺
    [ L2[L3[L4(B)]] ]  [ L4(C)  L6(E) ] <- boxes: the X^M blocks

so a trace can be eyeballed against the figures directly.
"""

from __future__ import annotations

from ..attributes.encoding import BasisEncoding, iter_bits
from ..attributes.printer import unparse_abbreviated
from ..core.closure import ClosureResult
from ..core.trace import TraceRecorder

__all__ = ["render_state", "render_result", "render_trace_states"]


def _label(encoding: BasisEncoding, index: int) -> str:
    return unparse_abbreviated(encoding.basis[index], encoding.root)


def render_state(encoding: BasisEncoding, closure_mask: int,
                 blocks: frozenset[int]) -> str:
    """One state as two lines: circled closure members, boxed blocks.

    Circles ``( · )`` mark basis attributes functionally determined by
    ``X`` (the paper's circled nodes); each box ``[ · ]`` lists the
    maximal basis attributes of one ``DB_new`` block (the paper's boxes).
    Blocks entirely inside the closure are suppressed, matching the
    figures.
    """
    circled = [
        f"({_label(encoding, index)})" for index in iter_bits(closure_mask)
    ]
    boxes = []
    for block in sorted(blocks):
        if block & ~closure_mask == 0:
            continue  # determined blocks are drawn as circles already
        members = [
            _label(encoding, index)
            for index in iter_bits(encoding.maximal_of(block))
        ]
        boxes.append("[ " + "  ".join(members) + " ]")
    lines = []
    lines.append("determined: " + ("  ".join(circled) if circled else "(none)"))
    lines.append("blocks:     " + ("  ".join(boxes) if boxes else "(none)"))
    return "\n".join(lines)


def render_result(result: ClosureResult) -> str:
    """The final state of a run — the paper's Figure 4 view."""
    return render_state(result.encoding, result.closure_mask, result.blocks)


def render_trace_states(recorder: TraceRecorder) -> str:
    """Every *changed* state of a recorded run, Figure-3-to-4 style."""
    encoding = recorder.encoding
    if encoding is None:
        return "(empty trace)"
    sections = [
        "Initial state (Figure 3 view):",
        render_state(encoding, recorder.initial_x, recorder.initial_db),
    ]
    for step in recorder.states_after_each_change():
        label = (
            step.dependency.display(encoding.root)
            if step.dependency is not None
            else ("FD step" if step.is_fd else "MVD step")
        )
        sections.append(f"After {label} (pass {step.pass_number}):")
        sections.append(render_state(encoding, step.x_new, step.db_new))
    sections.append("Final state (Figure 4 view):")
    sections.append(render_state(encoding, recorder.final_x, recorder.final_db))
    return "\n".join(sections)
