"""Ready-made reproductions of the paper's figures.

Each function returns the rendered figure as text (DOT and/or ASCII), so
``python -m repro.viz.figures`` regenerates all four figures of the paper
in one go — the closest a terminal gets to the originals.
"""

from __future__ import annotations

from ..attributes.encoding import BasisEncoding
from ..core.closure import compute_closure
from ..core.trace import TraceRecorder
from ..workloads.scenarios import example_5_1, example_4_12, figure_1_root
from .hasse import ascii_levels, basis_graph, hasse_graph, to_dot

__all__ = ["figure_1", "figure_2", "figures_3_and_4", "render_all"]


def figure_1(fmt: str = "ascii") -> str:
    """Figure 1: the Brouwerian algebra of ``J[K(A, L[M(B, C)])]``."""
    graph = hasse_graph(figure_1_root())
    if fmt == "dot":
        return to_dot(graph, title="Figure 1: Sub(J[K(A, L[M(B, C)])])")
    return ascii_levels(graph)


def figure_2(fmt: str = "ascii") -> str:
    """Figure 2: the subattribute basis of ``K[L(M[N(A, B)], C)]``."""
    root, _, _, _ = example_4_12()
    graph = basis_graph(root)
    if fmt == "dot":
        return to_dot(graph, title="Figure 2: SubB(K[L(M[N(A, B)], C)])")
    return ascii_levels(graph)


def figures_3_and_4() -> str:
    """Figures 3 and 4: the Example 5.1 trace (initial and final states)."""
    fixture = example_5_1()
    encoding = BasisEncoding(fixture.root)
    recorder = TraceRecorder()
    compute_closure(encoding, fixture.x(), fixture.sigma, trace=recorder)
    return recorder.render()


def render_all() -> str:
    """All four figures, separated by headers."""
    sections = [
        ("Figure 1 — Brouwerian algebra of J[K(A, L[M(B, C)])]", figure_1()),
        ("Figure 2 — subattribute basis of K[L(M[N(A, B)], C)]", figure_2()),
        ("Figures 3 & 4 — Algorithm 5.1 on Example 5.1", figures_3_and_4()),
    ]
    blocks = []
    for header, body in sections:
        blocks.append(f"{'=' * len(header)}\n{header}\n{'=' * len(header)}\n{body}")
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover
    print(render_all())
