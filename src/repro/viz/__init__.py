"""Figure reproduction: Hasse diagrams of Sub(N) and SubB(N) (Figs 1-4)."""

from .hasse import ascii_levels, basis_graph, hasse_graph, to_dot
from .figures import figure_1, figure_2, figures_3_and_4, render_all
from .depb_diagram import render_result, render_state, render_trace_states

__all__ = [
    "hasse_graph", "basis_graph", "to_dot", "ascii_levels",
    "figure_1", "figure_2", "figures_3_and_4", "render_all",
    "render_state", "render_result", "render_trace_states",
]
