"""Forward-chaining derivation: the naive enumeration baseline (§5).

The paper opens Section 5 by noting that, given Theorem 4.6, the
membership problem is decidable by enumerating all derivable dependencies
— "however, the enumeration algorithm is time consuming and therefore
impractical".  This module implements exactly that impractical baseline,
for three purposes:

1. **Differential testing** — on small attributes the full fixpoint of the
   rule system must coincide with what Algorithm 5.1 claims (both
   soundness and completeness of the implementation are exercised).
2. **Benchmark baseline** — experiment E8 measures the blow-up of naive
   enumeration against the polynomial algorithm.
3. **Proof trees** — every derived dependency records the rule and
   premises that produced it, so :func:`explain` can print a human-
   readable derivation, e.g. for teaching the mixed meet rule.

The closure is semi-naive (each round combines fresh dependencies with
everything known), with hard budgets to keep the exponential blow-up from
hanging test runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..attributes.lattice import complement
from ..attributes.nested import NestedAttribute
from ..attributes.subattribute import count_subattributes, subattributes
from ..dependencies.dependency import Dependency
from ..dependencies.sigma import DependencySet
from ..exceptions import DerivationLimitExceeded
from .rules import ALL_RULES, Rule

__all__ = ["DerivationStep", "DerivationResult", "derive_closure", "derives", "explain"]

#: Enumerating Sub(N) as candidate elements is only safe for small roots.
_EXHAUSTIVE_SUB_LIMIT = 64


@dataclass(frozen=True)
class DerivationStep:
    """How one dependency entered the closure."""

    dependency: Dependency
    rule: str
    premises: tuple[Dependency, ...]


class DerivationResult:
    """The outcome of a (possibly truncated) rule-closure computation.

    Attributes
    ----------
    dependencies:
        Every dependency in the computed closure, including ``Σ`` itself.
    steps:
        Provenance: for each dependency, the first derivation found.
    exhausted:
        ``True`` when a genuine fixpoint was reached; ``False`` when a
        budget stopped the computation early (the closure is then only a
        *lower* bound on ``Σ⁺``).
    rounds:
        Number of semi-naive rounds executed.
    """

    def __init__(self, root: NestedAttribute, steps: dict[Dependency, DerivationStep],
                 exhausted: bool, rounds: int) -> None:
        self.root = root
        self.steps = steps
        self.exhausted = exhausted
        self.rounds = rounds

    @property
    def dependencies(self) -> frozenset:
        return frozenset(self.steps)

    def __contains__(self, dependency: Dependency) -> bool:
        return dependency in self.steps

    def __len__(self) -> int:
        return len(self.steps)

    def proof(self, dependency: Dependency) -> list[DerivationStep]:
        """The derivation tree of ``dependency``, linearised premises-first."""
        if dependency not in self.steps:
            raise KeyError(f"{dependency} was not derived")
        ordered: list[DerivationStep] = []
        seen: set[Dependency] = set()

        def visit(current: Dependency) -> None:
            if current in seen:
                return
            seen.add(current)
            step = self.steps[current]
            for premise in step.premises:
                visit(premise)
            ordered.append(step)

        visit(dependency)
        return ordered


def _candidate_elements(root: NestedAttribute,
                        sigma: DependencySet,
                        extra: Iterable[Dependency] = ()) -> list[NestedAttribute]:
    """Side-condition candidates for the quantified rule schemata.

    For small roots the full ``Sub(root)`` is used, making the fixpoint a
    faithful ``Σ⁺`` (the gold standard the differential tests rely on).
    For larger roots the candidates are the elements occurring in ``Σ``,
    the target, the root and its bottom — a sound but potentially
    incomplete heuristic, flagged by callers via ``exhaustive_elements``.
    """
    if count_subattributes(root) <= _EXHAUSTIVE_SUB_LIMIT:
        return list(subattributes(root))
    from ..attributes.subattribute import bottom

    elements: dict[NestedAttribute, None] = {root: None, bottom(root): None}
    for dependency in list(sigma) + list(extra):
        elements.setdefault(dependency.lhs, None)
        elements.setdefault(dependency.rhs, None)
        elements.setdefault(complement(root, dependency.rhs), None)
    return list(elements)


def derive_closure(
    sigma: DependencySet,
    *,
    rules: Sequence[Rule] = ALL_RULES,
    elements: Iterable[NestedAttribute] | None = None,
    target: Dependency | None = None,
    max_dependencies: int = 200_000,
    max_rounds: int = 64,
    strict: bool = False,
) -> DerivationResult:
    """Compute (a truncation of) the syntactic closure ``Σ⁺``.

    Parameters
    ----------
    sigma:
        The premises ``Σ`` with their root attribute.
    rules:
        The rule system; defaults to the full Theorem 4.6 set.
    elements:
        Candidate subattributes for quantified schemata; defaults to all
        of ``Sub(root)`` when small (see :func:`_candidate_elements`).
    target:
        Optional early-exit: stop as soon as this dependency is derived.
    max_dependencies / max_rounds:
        Budgets bounding the exponential enumeration.
    strict:
        When ``True``, exceeding a budget raises
        :class:`DerivationLimitExceeded` instead of returning a truncated
        result.
    """
    root = sigma.root
    element_pool = list(elements) if elements is not None else _candidate_elements(
        root, sigma, (target,) if target is not None else ()
    )

    steps: dict[Dependency, DerivationStep] = {}

    class _TargetFound(Exception):
        """Internal: unwind the nested loops the moment the target lands."""

    class _BudgetExceeded(Exception):
        """Internal: unwind when the dependency budget is hit mid-round."""

    def admit(dependency: Dependency, rule_name: str,
              premises: tuple[Dependency, ...]) -> bool:
        if dependency in steps:
            return False
        steps[dependency] = DerivationStep(dependency, rule_name, premises)
        if target is not None and dependency == target:
            raise _TargetFound
        if len(steps) > max_dependencies:
            raise _BudgetExceeded
        return True

    rounds = 0
    exhausted = True
    try:
        for dependency in sigma:
            admit(dependency, "premise", ())

        # Axiom schemata fire once; they depend only on the element pool.
        for rule in rules:
            if rule.arity == 0:
                for conclusion in rule.conclusions(root, (), element_pool):
                    admit(conclusion, rule.name, ())

        unary_rules = [rule for rule in rules if rule.arity == 1]
        binary_rules = [rule for rule in rules if rule.arity == 2]

        fresh = list(steps)
        while fresh:
            rounds += 1
            if rounds > max_rounds:
                raise _BudgetExceeded
            produced: list[Dependency] = []

            def emit(conclusion: Dependency, rule_name: str,
                     premises: tuple[Dependency, ...]) -> None:
                if admit(conclusion, rule_name, premises):
                    produced.append(conclusion)

            known = list(steps)
            for rule in unary_rules:
                for premise in fresh:
                    for conclusion in rule.conclusions(root, (premise,), element_pool):
                        emit(conclusion, rule.name, (premise,))
            for rule in binary_rules:
                for first in fresh:
                    for second in known:
                        for conclusion in rule.conclusions(
                            root, (first, second), element_pool
                        ):
                            emit(conclusion, rule.name, (first, second))
                        if second not in fresh:
                            for conclusion in rule.conclusions(
                                root, (second, first), element_pool
                            ):
                                emit(conclusion, rule.name, (second, first))
            fresh = produced
    except _TargetFound:
        return DerivationResult(root, steps, True, rounds)
    except _BudgetExceeded:
        if strict:
            raise DerivationLimitExceeded(
                f"derivation exceeded budget (rounds={rounds}, "
                f"dependencies={len(steps)})"
            ) from None
        exhausted = False

    return DerivationResult(root, steps, exhausted, rounds)


def derives(sigma: DependencySet, target: Dependency, **kwargs) -> bool:
    """Whether the rule system derives ``target`` from ``sigma``.

    This is the naive-enumeration decision procedure; on truncation
    (budget hit without finding the target) the answer ``False`` is only
    as good as the budget.  Use :func:`repro.core.membership.implies` for
    the polynomial decision.
    """
    result = derive_closure(sigma, target=target, **kwargs)
    return target in result


def explain(result: DerivationResult, dependency: Dependency) -> str:
    """Render the derivation of ``dependency`` as a numbered proof.

    Example output::

        1. Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])   [premise]
        2. Pubcrawl(Person) -> Pubcrawl(Visit[λ])             [mixed meet; 1]
    """
    ordered = result.proof(dependency)
    numbering = {step.dependency: index + 1 for index, step in enumerate(ordered)}
    lines = []
    for step in ordered:
        reference = ", ".join(str(numbering[premise]) for premise in step.premises)
        origin = step.rule if not reference else f"{step.rule}; {reference}"
        lines.append(
            f"{numbering[step.dependency]}. {step.dependency.display(result.root)}   [{origin}]"
        )
    return "\n".join(lines)
