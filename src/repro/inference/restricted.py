"""Restricted derivability: reasoning with sub-systems of the rules (§7).

The paper's conclusion raises two follow-up questions about the rule
system of Theorem 4.6:

* *Complementation-free derivations* — "derivations not using the
  Brouwerian-complement rule are of particular interest … we are
  confident that this decision procedure can be extended" (referencing
  Biskup's relational result [14]).  :func:`derives_without_complementation`
  decides the question exactly on small attributes by computing the rule
  fixpoint with the complementation rule removed.
* *Minimal rule sets* — "the inference rules from Theorem 4.6 are
  expected to be redundant".  :func:`rule_ablation` removes one rule at a
  time and reports whether the closure of a given ``Σ`` shrinks — the
  empirical face of the redundancy question, used by the ablation
  benchmark (E16).

Both helpers run the *naive* engine, so they are exponential and meant
for small schemas (they inherit the engine's budgets and report
truncation honestly instead of guessing).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..dependencies.dependency import Dependency
from ..dependencies.sigma import DependencySet
from .derivation import DerivationResult, derive_closure
from .rules import ALL_RULES, MVD_RULES, Rule, rule_by_name

__all__ = [
    "Derivability",
    "rules_without",
    "restricted_closure",
    "derives_without_complementation",
    "AblationReport",
    "rule_ablation",
]


class Derivability(Enum):
    """Outcome of a (possibly budget-limited) restricted derivation."""

    DERIVABLE = "derivable"
    NOT_DERIVABLE = "not derivable"
    UNKNOWN = "unknown (budget exhausted before a fixpoint)"

    def __bool__(self) -> bool:
        return self is Derivability.DERIVABLE


def rules_without(*names: str) -> tuple[Rule, ...]:
    """The Theorem 4.6 system minus the named rules.

    Raises ``KeyError`` for unknown rule names (catching typos early).
    """
    excluded = {rule_by_name(name) for name in names}
    return tuple(rule for rule in ALL_RULES if rule not in excluded)


def restricted_closure(sigma: DependencySet, excluded: tuple[str, ...],
                       **budgets) -> DerivationResult:
    """The naive closure of ``Σ`` under the system minus ``excluded``."""
    return derive_closure(sigma, rules=rules_without(*excluded), **budgets)


def derives_without_complementation(sigma: DependencySet, target: Dependency,
                                    **budgets) -> Derivability:
    """Whether ``target`` is derivable without the complementation rule.

    In the relational model this is decidable in polynomial time (Biskup
    [14]); here it is decided exactly by fixpoint on small attributes.
    ``UNKNOWN`` is returned when the engine's budget ran out before either
    finding the target or reaching a fixpoint.
    """
    result = derive_closure(
        sigma,
        rules=rules_without("MVD complementation"),
        target=target,
        **budgets,
    )
    if target in result:
        return Derivability.DERIVABLE
    return Derivability.NOT_DERIVABLE if result.exhausted else Derivability.UNKNOWN


@dataclass(frozen=True)
class AblationReport:
    """The effect of removing one rule on one closure computation.

    Attributes
    ----------
    rule:
        The removed rule's name.
    lost:
        Dependencies in the full closure that the reduced system missed.
        Empty means the rule was redundant *for this input* (a rule is
        only provably redundant if it is lost on no input at all).
    exhausted:
        Whether both fixpoints were genuinely reached (budgets untouched).
    """

    rule: str
    lost: frozenset
    exhausted: bool

    @property
    def redundant_here(self) -> bool:
        return self.exhausted and not self.lost


def rule_ablation(sigma: DependencySet, **budgets) -> tuple[AblationReport, ...]:
    """Remove each rule in turn and diff the closure against the full one.

    The per-rule reports feed the E16 ablation study: rules that are never
    load-bearing across a randomized corpus are the redundancy candidates
    the paper's conclusion expects.
    """
    full = derive_closure(sigma, **budgets)
    reports = []
    for rule in ALL_RULES:
        reduced = derive_closure(
            sigma, rules=tuple(r for r in ALL_RULES if r is not rule), **budgets
        )
        lost = frozenset(full.dependencies - reduced.dependencies)
        reports.append(
            AblationReport(rule.name, lost, full.exhausted and reduced.exhausted)
        )
    return tuple(reports)


#: Names of the seven MVD rules, exported for ablation sweeps.
MVD_RULE_NAMES = tuple(rule.name for rule in MVD_RULES)
