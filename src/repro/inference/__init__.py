"""The axiomatisation of Theorem 4.6 and the naive derivation engine."""

from .rules import (
    ALL_RULES,
    FD_RULES,
    MIXED_RULES,
    MVD_RULES,
    AxiomRule,
    BinaryRule,
    Rule,
    UnaryRule,
    rule_by_name,
)
from .derivation import (
    DerivationResult,
    DerivationStep,
    derive_closure,
    derives,
    explain,
)
from .restricted import (
    AblationReport,
    Derivability,
    derives_without_complementation,
    restricted_closure,
    rule_ablation,
    rules_without,
)

__all__ = [
    "Rule", "AxiomRule", "UnaryRule", "BinaryRule",
    "FD_RULES", "MVD_RULES", "MIXED_RULES", "ALL_RULES", "rule_by_name",
    "DerivationResult", "DerivationStep", "derive_closure", "derives", "explain",
    "Derivability", "rules_without", "restricted_closure",
    "derives_without_complementation", "AblationReport", "rule_ablation",
]
