"""The inference rules of Theorem 4.6 as first-class objects.

The paper (with full proofs in its companion [29]) axiomatises the
implication of FDs and MVDs in the presence of base, record and finite
list types by natural generalisations of the classical relational rules
([36, pp. 80–81], [9]) **plus one genuinely new rule**:

====================================  =======================================
rule                                  schema
====================================  =======================================
FD reflexivity axiom                  ``⊢ X → Y``            for ``Y ≤ X``
FD extension                          ``X → Y ⊢ X → X ⊔ Y``
FD transitivity                       ``X → Y, Y → Z ⊢ X → Z``
MVD complementation                   ``X ↠ Y ⊢ X ↠ Y^C``
MVD reflexivity axiom                 ``⊢ X ↠ Y``            for ``Y ≤ X``
MVD augmentation                      ``X ↠ Y ⊢ X ⊔ W ↠ Y ⊔ V`` for ``V ≤ W``
MVD pseudo-transitivity               ``X ↠ Y, Y ↠ Z ⊢ X ↠ Z ∸ Y``
implication (FD → MVD)                ``X → Y ⊢ X ↠ Y``
mixed pseudo-transitivity             ``X ↠ Y, Y → Z ⊢ X → Z ∸ Y``
multi-valued join                     ``X ↠ Y, X ↠ Z ⊢ X ↠ Y ⊔ Z``
multi-valued meet                     ``X ↠ Y, X ↠ Z ⊢ X ↠ Y ⊓ Z``
multi-valued pseudo-difference        ``X ↠ Y, X ↠ Z ⊢ X ↠ Y ∸ Z``
**mixed meet**                        ``X ↠ Y ⊢ X → Y ⊓ Y^C``
====================================  =======================================

The *mixed meet rule* is the novelty: in the relational model
``Y ∩ Y^C = ∅`` always, so the rule only derives the trivial ``X → ∅`` —
but over lists ``Y ⊓ Y^C`` can be a non-trivial attribute (e.g. a list
*length* component ``L[λ]``), so non-trivial FDs follow from MVDs.

The reflexivity axiom, extension and transitivity alone are sound and
complete for FDs (noted after Theorem 4.6); the full set is complete for
FDs+MVDs and — as the paper's conclusion anticipates — redundant.

Every rule is a :class:`Rule` with a uniform interface so that

* the derivation engine (:mod:`repro.inference.derivation`) can chain
  them mechanically, and
* the property suite can verify each rule's *semantic soundness* in
  isolation: for random instances, whenever all premises are satisfied
  the conclusion is satisfied.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..attributes.lattice import complement, join, meet, pseudo_difference
from ..attributes.nested import NestedAttribute
from ..attributes.subattribute import is_subattribute
from ..dependencies.dependency import (
    Dependency,
    FunctionalDependency,
    MultivaluedDependency,
)

__all__ = [
    "Rule",
    "AxiomRule",
    "UnaryRule",
    "BinaryRule",
    "FD_RULES",
    "MVD_RULES",
    "MIXED_RULES",
    "ALL_RULES",
    "rule_by_name",
]


class Rule:
    """Base class: a named inference rule over a fixed-root lattice.

    Subclasses implement :meth:`conclusions`, producing every dependency
    derivable from a given premise tuple.  Rules whose schema quantifies
    over extra lattice elements (reflexivity, augmentation) receive the
    candidate elements from the caller — the derivation engine feeds the
    elements occurring in the current derivation state plus the basis, so
    closures stay finite.
    """

    #: Human-readable rule name matching the table above.
    name: str = "?"
    #: Number of dependency premises (0 for axiom schemata).
    arity: int = 0

    def conclusions(self, root: NestedAttribute, premises: Sequence[Dependency],
                    elements: Iterable[NestedAttribute]) -> list[Dependency]:
        """All conclusions from ``premises`` (length = :attr:`arity`).

        ``elements`` supplies the side-condition candidates for schemata
        quantifying over additional subattributes.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<rule {self.name!r}>"


class AxiomRule(Rule):
    """A premise-free schema generating dependencies from element pairs."""

    arity = 0

    def __init__(self, name: str,
                 generate: Callable[[NestedAttribute, NestedAttribute, NestedAttribute],
                                    Dependency | None]) -> None:
        self.name = name
        self._generate = generate

    def conclusions(self, root, premises, elements):
        elements = list(elements)
        results = []
        for x in elements:
            for y in elements:
                conclusion = self._generate(root, x, y)
                if conclusion is not None:
                    results.append(conclusion)
        return results


class UnaryRule(Rule):
    """A one-premise rule, optionally quantifying over extra elements."""

    arity = 1

    def __init__(self, name: str,
                 apply: Callable[[NestedAttribute, Dependency, Iterable[NestedAttribute]],
                                 Iterable[Dependency]]) -> None:
        self.name = name
        self._apply = apply

    def conclusions(self, root, premises, elements):
        (premise,) = premises
        return list(self._apply(root, premise, elements))


class BinaryRule(Rule):
    """A two-premise rule."""

    arity = 2

    def __init__(self, name: str,
                 apply: Callable[[NestedAttribute, Dependency, Dependency],
                                 Dependency | None]) -> None:
        self.name = name
        self._apply = apply

    def conclusions(self, root, premises, elements):
        first, second = premises
        conclusion = self._apply(root, first, second)
        return [conclusion] if conclusion is not None else []


# ---------------------------------------------------------------------------
# FD rules (complete for FDs alone)
# ---------------------------------------------------------------------------

def _fd_reflexivity(root, x, y):
    if is_subattribute(y, x):
        return FunctionalDependency(x, y)
    return None


def _fd_extension(root, premise, elements):
    if isinstance(premise, FunctionalDependency):
        yield FunctionalDependency(premise.lhs, join(root, premise.lhs, premise.rhs))


def _fd_transitivity(root, first, second):
    if (isinstance(first, FunctionalDependency) and isinstance(second, FunctionalDependency)
            and first.rhs == second.lhs):
        return FunctionalDependency(first.lhs, second.rhs)
    return None


FD_REFLEXIVITY = AxiomRule("FD reflexivity axiom", _fd_reflexivity)
FD_EXTENSION = UnaryRule("FD extension", _fd_extension)
FD_TRANSITIVITY = BinaryRule("FD transitivity", _fd_transitivity)

FD_RULES: tuple[Rule, ...] = (FD_REFLEXIVITY, FD_EXTENSION, FD_TRANSITIVITY)


# ---------------------------------------------------------------------------
# MVD rules
# ---------------------------------------------------------------------------

def _mvd_complementation(root, premise, elements):
    if isinstance(premise, MultivaluedDependency):
        yield MultivaluedDependency(premise.lhs, complement(root, premise.rhs))


def _mvd_reflexivity(root, x, y):
    if is_subattribute(y, x):
        return MultivaluedDependency(x, y)
    return None


def _mvd_augmentation(root, premise, elements):
    if not isinstance(premise, MultivaluedDependency):
        return
    elements = list(elements)
    for w in elements:
        for v in elements:
            if is_subattribute(v, w):
                yield MultivaluedDependency(
                    join(root, premise.lhs, w), join(root, premise.rhs, v)
                )


def _mvd_pseudo_transitivity(root, first, second):
    if (isinstance(first, MultivaluedDependency) and isinstance(second, MultivaluedDependency)
            and first.rhs == second.lhs):
        return MultivaluedDependency(
            first.lhs, pseudo_difference(root, second.rhs, first.rhs)
        )
    return None


def _mvd_join(root, first, second):
    if (isinstance(first, MultivaluedDependency) and isinstance(second, MultivaluedDependency)
            and first.lhs == second.lhs):
        return MultivaluedDependency(first.lhs, join(root, first.rhs, second.rhs))
    return None


def _mvd_meet(root, first, second):
    if (isinstance(first, MultivaluedDependency) and isinstance(second, MultivaluedDependency)
            and first.lhs == second.lhs):
        return MultivaluedDependency(first.lhs, meet(root, first.rhs, second.rhs))
    return None


def _mvd_pseudo_difference(root, first, second):
    if (isinstance(first, MultivaluedDependency) and isinstance(second, MultivaluedDependency)
            and first.lhs == second.lhs):
        return MultivaluedDependency(
            first.lhs, pseudo_difference(root, first.rhs, second.rhs)
        )
    return None


MVD_COMPLEMENTATION = UnaryRule("MVD complementation", _mvd_complementation)
MVD_REFLEXIVITY = AxiomRule("MVD reflexivity axiom", _mvd_reflexivity)
MVD_AUGMENTATION = UnaryRule("MVD augmentation", _mvd_augmentation)
MVD_PSEUDO_TRANSITIVITY = BinaryRule("MVD pseudo-transitivity", _mvd_pseudo_transitivity)
MVD_JOIN = BinaryRule("multi-valued join", _mvd_join)
MVD_MEET = BinaryRule("multi-valued meet", _mvd_meet)
MVD_PSEUDO_DIFFERENCE = BinaryRule("multi-valued pseudo-difference", _mvd_pseudo_difference)

MVD_RULES: tuple[Rule, ...] = (
    MVD_COMPLEMENTATION,
    MVD_REFLEXIVITY,
    MVD_AUGMENTATION,
    MVD_PSEUDO_TRANSITIVITY,
    MVD_JOIN,
    MVD_MEET,
    MVD_PSEUDO_DIFFERENCE,
)


# ---------------------------------------------------------------------------
# Mixed FD/MVD rules
# ---------------------------------------------------------------------------

def _implication(root, premise, elements):
    if isinstance(premise, FunctionalDependency):
        yield MultivaluedDependency(premise.lhs, premise.rhs)


def _mixed_pseudo_transitivity(root, first, second):
    if (isinstance(first, MultivaluedDependency) and isinstance(second, FunctionalDependency)
            and first.rhs == second.lhs):
        return FunctionalDependency(
            first.lhs, pseudo_difference(root, second.rhs, first.rhs)
        )
    return None


def _mixed_meet(root, premise, elements):
    """The paper's new rule: ``X ↠ Y ⊢ X → Y ⊓ Y^C``.

    Over lists the meet of an attribute with its Brouwerian complement can
    carry real information (list lengths); the rule states that this
    shared part is functionally fixed once the MVD splits the rest.
    """
    if isinstance(premise, MultivaluedDependency):
        y_complement = complement(root, premise.rhs)
        yield FunctionalDependency(premise.lhs, meet(root, premise.rhs, y_complement))


IMPLICATION = UnaryRule("implication (FD to MVD)", _implication)
MIXED_PSEUDO_TRANSITIVITY = BinaryRule("mixed pseudo-transitivity", _mixed_pseudo_transitivity)
MIXED_MEET = UnaryRule("mixed meet", _mixed_meet)

MIXED_RULES: tuple[Rule, ...] = (IMPLICATION, MIXED_PSEUDO_TRANSITIVITY, MIXED_MEET)

#: The full rule system of Theorem 4.6.
ALL_RULES: tuple[Rule, ...] = FD_RULES + MVD_RULES + MIXED_RULES


def rule_by_name(name: str) -> Rule:
    """Look a rule up by its table name."""
    for rule in ALL_RULES:
        if rule.name == name:
            return rule
    raise KeyError(f"unknown rule {name!r}")
