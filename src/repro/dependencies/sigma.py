"""Dependency sets ``Σ`` over a fixed nested attribute.

A :class:`DependencySet` bundles the ambient attribute ``N`` with a finite
set of FDs and MVDs on it — the ``Σ`` of the implication problem.  It is
an immutable ordered collection (iteration order = insertion order, which
keeps algorithm traces reproducible) with convenience constructors from
text and small set-algebra helpers used by the equivalence/minimal-cover
utilities in :mod:`repro.core.membership`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..attributes.nested import NestedAttribute
from ..attributes.printer import unparse
from .dependency import Dependency, FunctionalDependency, MultivaluedDependency, parse_dependency

__all__ = ["DependencySet"]


class DependencySet:
    """A finite set ``Σ`` of FDs and MVDs on a nested attribute ``N``.

    Example
    -------
    >>> from repro.attributes import parse_attribute
    >>> N = parse_attribute("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    >>> sigma = DependencySet.parse(N, [
    ...     "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])",
    ... ])
    >>> len(sigma)
    1
    """

    __slots__ = ("root", "_dependencies")

    def __init__(self, root: NestedAttribute, dependencies: Iterable[Dependency] = ()) -> None:
        self.root = root
        ordered: list[Dependency] = []
        seen: set[Dependency] = set()
        for dependency in dependencies:
            dependency.validate(root)
            if dependency not in seen:
                seen.add(dependency)
                ordered.append(dependency)
        self._dependencies: tuple[Dependency, ...] = tuple(ordered)

    @classmethod
    def parse(cls, root: NestedAttribute, texts: Sequence[str]) -> "DependencySet":
        """Build a set from textual dependencies (see
        :func:`repro.dependencies.dependency.parse_dependency`)."""
        return cls(root, (parse_dependency(text, root) for text in texts))

    # -- collection protocol ----------------------------------------------

    def __iter__(self) -> Iterator[Dependency]:
        return iter(self._dependencies)

    def __len__(self) -> int:
        return len(self._dependencies)

    def __contains__(self, dependency: Dependency) -> bool:
        return dependency in set(self._dependencies)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencySet):
            return NotImplemented
        return self.root == other.root and set(self._dependencies) == set(other._dependencies)

    def __hash__(self) -> int:
        return hash((self.root, frozenset(self._dependencies)))

    # -- views --------------------------------------------------------------

    @property
    def dependencies(self) -> tuple[Dependency, ...]:
        """The dependencies in insertion order."""
        return self._dependencies

    def fds(self) -> tuple[FunctionalDependency, ...]:
        """The functional dependencies only."""
        return tuple(d for d in self._dependencies if isinstance(d, FunctionalDependency))

    def mvds(self) -> tuple[MultivaluedDependency, ...]:
        """The multi-valued dependencies only."""
        return tuple(d for d in self._dependencies if isinstance(d, MultivaluedDependency))

    # -- set algebra ----------------------------------------------------------

    def with_dependency(self, dependency: Dependency) -> "DependencySet":
        """A copy extended by one dependency (no-op if already present)."""
        return DependencySet(self.root, (*self._dependencies, dependency))

    def without(self, dependency: Dependency) -> "DependencySet":
        """A copy with one dependency removed."""
        return DependencySet(
            self.root, (d for d in self._dependencies if d != dependency)
        )

    def union(self, other: "DependencySet") -> "DependencySet":
        """The union of two dependency sets over the same root."""
        if other.root != self.root:
            raise ValueError("cannot union dependency sets over different roots")
        return DependencySet(self.root, (*self._dependencies, *other._dependencies))

    # -- display -----------------------------------------------------------

    def display(self) -> str:
        """Multi-line paper-style rendering."""
        lines = [dependency.display(self.root) for dependency in self._dependencies]
        return "\n".join(lines) if lines else "(empty)"

    def __repr__(self) -> str:
        return (
            f"DependencySet(root={unparse(self.root)}, "
            f"n_fds={len(self.fds())}, n_mvds={len(self.mvds())})"
        )
