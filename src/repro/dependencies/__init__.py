"""FDs, MVDs, dependency sets, and satisfaction checking (paper §4)."""

from .dependency import (
    FD,
    MVD,
    Dependency,
    FunctionalDependency,
    MultivaluedDependency,
    parse_dependency,
)
from .sigma import DependencySet
from .satisfaction import (
    lossless_binary_decomposition,
    satisfies,
    satisfies_all,
    satisfies_fd,
    satisfies_mvd,
    satisfies_mvd_via_join,
    violating_fd_pair,
    violating_mvd_pair,
)

__all__ = [
    "FunctionalDependency", "MultivaluedDependency", "Dependency", "FD", "MVD",
    "parse_dependency", "DependencySet",
    "satisfies", "satisfies_all", "satisfies_fd", "satisfies_mvd",
    "satisfies_mvd_via_join", "lossless_binary_decomposition",
    "violating_fd_pair", "violating_mvd_pair",
]
