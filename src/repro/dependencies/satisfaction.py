"""Satisfaction of FDs and MVDs by instances (Definition 4.1, Theorem 4.4).

Three checkers are provided:

* :func:`satisfies_fd` — group tuples by their ``X``-projection and demand
  a constant ``Y``-projection per group.
* :func:`satisfies_mvd` — the definitional check.  Inside each ``X``-group
  a tuple is determined by the pair of its projections onto ``X ⊔ Y`` and
  ``X ⊔ Y^C`` (they join to ``N``), so Definition 4.1 is equivalent to
  each group's pair-set being a full cross product — the nested analogue
  of the classical relational criterion.
* :func:`satisfies_mvd_via_join` — the *corrected* Theorem 4.4 oracle;
  the property suite asserts it always agrees with the definitional
  checker.

**Erratum found during this reproduction.**  Theorem 4.4 of the paper
states ``r ⊨ X ↠ Y`` iff ``r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r)``.  The "if"
direction fails in the presence of lists: on ``N = L[A]`` the instance
``r = {[], [3]}`` equals the generalised join of its projections onto
``X ⊔ Y = L[λ]`` and ``X ⊔ Y^C = L[A]`` (for ``X = λ``, ``Y = L[λ]``),
yet ``λ ↠ L[λ]`` is violated — the exchange tuple would need length 0
*and* content ``[3]``, which no value of ``dom(L[A])`` has.  The root
cause is that ``(X⊔Y) ⊓ (X⊔Y^C) = X ⊔ (Y ⊓ Y^C)`` can exceed ``X``, so
tuples agreeing on ``X`` need not be amalgamable.  The corrected
statement, implemented by :func:`satisfies_mvd_via_join`, adds exactly
the paper's own mixed-meet FD as a conjunct::

    r ⊨ X ↠ Y   iff   r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r)  and  r ⊨ X → Y⊓Y^C

(in the RDM ``Y ∩ Y^C = ∅`` makes the conjunct vacuous, recovering
Fagin's classical theorem).  The raw join equality remains available as
:func:`lossless_binary_decomposition`; it is *necessary* for the MVD but
not sufficient.

Diagnostic helpers return concrete witnesses of violation, which the test
suite and the examples use to *show* why a dependency fails (e.g. the
paper's Example 4.2 pub-crawl FDs).
"""

from __future__ import annotations

from typing import Iterable

from ..attributes.lattice import complement, join, meet
from ..attributes.nested import NestedAttribute
from ..values.join import generalised_join
from ..values.projection import project, project_instance
from ..values.value import Value
from .dependency import Dependency, FunctionalDependency, MultivaluedDependency
from .sigma import DependencySet

__all__ = [
    "satisfies",
    "satisfies_fd",
    "satisfies_mvd",
    "satisfies_mvd_via_join",
    "lossless_binary_decomposition",
    "satisfies_all",
    "violating_fd_pair",
    "violating_mvd_pair",
]


def satisfies(root: NestedAttribute, instance: Iterable[Value],
              dependency: Dependency) -> bool:
    """Whether ``instance ⊨ dependency`` over ``root`` (Definition 4.1)."""
    if isinstance(dependency, FunctionalDependency):
        return satisfies_fd(root, instance, dependency)
    if isinstance(dependency, MultivaluedDependency):
        return satisfies_mvd(root, instance, dependency)
    raise TypeError(f"not a dependency: {dependency!r}")


def satisfies_all(root: NestedAttribute, instance: Iterable[Value],
                  sigma: DependencySet | Iterable[Dependency]) -> bool:
    """Whether the instance satisfies every dependency of ``sigma``."""
    tuples = list(instance)
    return all(satisfies(root, tuples, dependency) for dependency in sigma)


def satisfies_fd(root: NestedAttribute, instance: Iterable[Value],
                 fd: FunctionalDependency) -> bool:
    """FD satisfaction: equal ``X``-projections force equal ``Y``-projections."""
    fd.validate(root)
    return violating_fd_pair(root, instance, fd) is None


def violating_fd_pair(root: NestedAttribute, instance: Iterable[Value],
                      fd: FunctionalDependency) -> tuple[Value, Value] | None:
    """A pair ``(t₁, t₂)`` violating the FD, or ``None`` if satisfied."""
    fd.validate(root)
    seen: dict[Value, tuple[Value, Value]] = {}
    for value in instance:
        key = project(root, fd.lhs, value)
        image = project(root, fd.rhs, value)
        if key in seen:
            previous_image, previous_value = seen[key]
            if previous_image != image:
                return (previous_value, value)
        else:
            seen[key] = (image, value)
    return None


def satisfies_mvd(root: NestedAttribute, instance: Iterable[Value],
                  mvd: MultivaluedDependency) -> bool:
    """MVD satisfaction via the per-group cross-product criterion.

    For each ``X``-group ``G`` let ``P = {(π_{X⊔Y}(t), π_{X⊔Y^C}(t)) | t ∈ G}``;
    the MVD holds iff ``P`` equals the cross product of its two
    coordinate projections, for every group.
    """
    mvd.validate(root)
    return violating_mvd_pair(root, instance, mvd) is None


def violating_mvd_pair(root: NestedAttribute, instance: Iterable[Value],
                       mvd: MultivaluedDependency) -> tuple[Value, Value] | None:
    """A pair ``(t₁, t₂)`` for which the exchanged tuple is missing.

    Returns ``None`` when the MVD is satisfied.  The returned pair agrees
    on ``lhs`` but no tuple of the instance combines ``t₁``'s values on
    ``lhs ⊔ rhs`` with ``t₂``'s values on ``lhs ⊔ rhs^C``.
    """
    mvd.validate(root)
    left_side = join(root, mvd.lhs, mvd.rhs)
    right_side = join(root, mvd.lhs, complement(root, mvd.rhs))

    groups: dict[Value, list[tuple[Value, Value, Value]]] = {}
    for value in instance:
        key = project(root, mvd.lhs, value)
        left_image = project(root, left_side, value)
        right_image = project(root, right_side, value)
        groups.setdefault(key, []).append((left_image, right_image, value))

    for members in groups.values():
        pairs = {(left_image, right_image) for left_image, right_image, _ in members}
        lefts = {left_image for left_image, _, _ in members}
        rights = {right_image for _, right_image, _ in members}
        if len(pairs) == len(lefts) * len(rights):
            continue
        # Cross product is incomplete: exhibit a missing combination.
        for left_image, _, left_value in members:
            for _, right_image, right_value in members:
                if (left_image, right_image) not in pairs:
                    return (left_value, right_value)
    return None


def lossless_binary_decomposition(root: NestedAttribute, instance: Iterable[Value],
                                  mvd: MultivaluedDependency) -> bool:
    """The raw Theorem 4.4 right-hand side:
    ``r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r)``.

    *Necessary* for ``r ⊨ X ↠ Y`` but — contrary to the theorem as
    printed — not sufficient over lists (see the module erratum note).
    """
    mvd.validate(root)
    tuples = frozenset(instance)
    left_side = join(root, mvd.lhs, mvd.rhs)
    right_side = join(root, mvd.lhs, complement(root, mvd.rhs))
    left_projection = project_instance(root, left_side, tuples)
    right_projection = project_instance(root, right_side, tuples)
    joined = generalised_join(root, left_side, right_side, left_projection, right_projection)
    return joined == tuples


def satisfies_mvd_via_join(root: NestedAttribute, instance: Iterable[Value],
                           mvd: MultivaluedDependency) -> bool:
    """The corrected Theorem 4.4 oracle (see the module erratum note).

    ``r ⊨ X ↠ Y`` iff the binary decomposition is lossless *and* the
    mixed-meet FD ``X → Y ⊓ Y^C`` holds — the FD guarantees that any two
    tuples agreeing on ``X`` agree on the whole meet
    ``(X⊔Y) ⊓ (X⊔Y^C)``, so their amalgam exists and losslessness forces
    it into ``r``.
    """
    mvd.validate(root)
    tuples = frozenset(instance)
    overlap = meet(root, mvd.rhs, complement(root, mvd.rhs))
    mixed_meet_fd = FunctionalDependency(mvd.lhs, overlap)
    if not satisfies_fd(root, tuples, mixed_meet_fd):
        return False
    return lossless_binary_decomposition(root, tuples, mvd)
