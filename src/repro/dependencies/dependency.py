"""Functional and multi-valued dependencies on nested attributes (§4).

Definition 4.1 of the paper:

* An **FD** ``X → Y`` on ``N`` (``X, Y ∈ Sub(N)``) is satisfied by a finite
  ``r ⊆ dom(N)`` iff any two tuples agreeing on ``X`` also agree on ``Y``.
* An **MVD** ``X ↠ Y`` on ``N`` is satisfied by ``r`` iff for all
  ``t₁, t₂ ∈ r`` agreeing on ``X`` there is a ``t ∈ r`` with
  ``π_{X⊔Y}(t) = π_{X⊔Y}(t₁)`` and ``π_{X⊔Y^C}(t) = π_{X⊔Y^C}(t₂)``.

Lemma 4.3 characterises the trivial dependencies (satisfied by *every*
instance): ``X → Y`` is trivial iff ``Y ≤ X``; ``X ↠ Y`` is trivial iff
``Y ≤ X`` or ``X ⊔ Y = N``.

Dependencies are immutable and hashable.  They carry only their two sides;
the ambient attribute ``N`` is passed to the operations that need it
(satisfaction, triviality, complementation) because the same ``X → Y`` can
be read over different roots with different meanings of ``Y^C``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..attributes.lattice import complement, join
from ..attributes.nested import NestedAttribute
from ..attributes.parser import parse_subattribute
from ..attributes.printer import unparse, unparse_abbreviated
from ..attributes.subattribute import is_subattribute
from ..exceptions import DependencySyntaxError, NotAnElementError

__all__ = [
    "FunctionalDependency",
    "MultivaluedDependency",
    "Dependency",
    "FD",
    "MVD",
    "parse_dependency",
]


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``lhs → rhs`` (Definition 4.1).

    Example
    -------
    >>> from repro.attributes import parse_attribute
    >>> N = parse_attribute("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    >>> fd = parse_dependency("Pubcrawl(Person) -> Pubcrawl(Visit[λ])", N)
    >>> fd.is_trivial(N)
    False
    """

    lhs: NestedAttribute
    rhs: NestedAttribute

    arrow = "->"

    @property
    def is_fd(self) -> bool:
        return True

    @property
    def is_mvd(self) -> bool:
        return False

    def validate(self, root: NestedAttribute) -> None:
        """Assert both sides lie in ``Sub(root)``."""
        for side, name in ((self.lhs, "left"), (self.rhs, "right")):
            if not is_subattribute(side, root):
                raise NotAnElementError(
                    f"{name}-hand side {unparse(side)} is not a subattribute of {unparse(root)}"
                )

    def is_trivial(self, root: NestedAttribute) -> bool:
        """Lemma 4.3: trivial iff ``rhs ≤ lhs``."""
        self.validate(root)
        return is_subattribute(self.rhs, self.lhs)

    def display(self, root: NestedAttribute | None = None) -> str:
        """Paper-style rendering, abbreviated when a root is known."""
        if root is None:
            return f"{unparse(self.lhs)} {self.arrow} {unparse(self.rhs)}"
        return (
            f"{unparse_abbreviated(self.lhs, root)} {self.arrow} "
            f"{unparse_abbreviated(self.rhs, root)}"
        )

    def __str__(self) -> str:
        return self.display()


@dataclass(frozen=True)
class MultivaluedDependency:
    """An MVD ``lhs ↠ rhs`` (Definition 4.1), written ``->>`` in ASCII.

    Theorem 4.4 makes an MVD equivalent to the losslessness of the binary
    decomposition onto ``lhs ⊔ rhs`` and ``lhs ⊔ rhs^C``; see
    :func:`repro.dependencies.satisfaction.satisfies_mvd_via_join`.
    """

    lhs: NestedAttribute
    rhs: NestedAttribute

    arrow = "->>"

    @property
    def is_fd(self) -> bool:
        return False

    @property
    def is_mvd(self) -> bool:
        return True

    def validate(self, root: NestedAttribute) -> None:
        """Assert both sides lie in ``Sub(root)``."""
        for side, name in ((self.lhs, "left"), (self.rhs, "right")):
            if not is_subattribute(side, root):
                raise NotAnElementError(
                    f"{name}-hand side {unparse(side)} is not a subattribute of {unparse(root)}"
                )

    def is_trivial(self, root: NestedAttribute) -> bool:
        """Lemma 4.3: trivial iff ``rhs ≤ lhs`` or ``lhs ⊔ rhs = root``."""
        self.validate(root)
        if is_subattribute(self.rhs, self.lhs):
            return True
        return join(root, self.lhs, self.rhs) == root

    def complemented(self, root: NestedAttribute) -> "MultivaluedDependency":
        """The complementation-rule image ``lhs ↠ rhs^C``."""
        self.validate(root)
        return MultivaluedDependency(self.lhs, complement(root, self.rhs))

    def display(self, root: NestedAttribute | None = None) -> str:
        """Paper-style rendering, abbreviated when a root is known."""
        if root is None:
            return f"{unparse(self.lhs)} {self.arrow} {unparse(self.rhs)}"
        return (
            f"{unparse_abbreviated(self.lhs, root)} {self.arrow} "
            f"{unparse_abbreviated(self.rhs, root)}"
        )

    def __str__(self) -> str:
        return self.display()


#: Either kind of dependency.
Dependency = Union[FunctionalDependency, MultivaluedDependency]

#: Short aliases mirroring the paper's prose.
FD = FunctionalDependency
MVD = MultivaluedDependency

#: Arrow spellings accepted by :func:`parse_dependency`, longest first.
_MVD_ARROWS = ("->>", "↠", "-»")
_FD_ARROWS = ("->", "→")


def parse_dependency(text: str, root: NestedAttribute) -> Dependency:
    """Parse ``"X -> Y"`` (FD) or ``"X ->> Y"`` (MVD) against a root.

    Both sides use the paper's (possibly abbreviated) subattribute
    notation and are resolved against ``root``; unicode arrows ``→`` and
    ``↠`` are accepted too.

    Example
    -------
    >>> from repro.attributes import parse_attribute
    >>> N = parse_attribute("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    >>> mvd = parse_dependency(
    ...     "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])", N)
    >>> mvd.is_mvd
    True
    """
    for arrow in _MVD_ARROWS:
        if arrow in text:
            lhs_text, _, rhs_text = text.partition(arrow)
            return MultivaluedDependency(
                parse_subattribute(lhs_text.strip(), root),
                parse_subattribute(rhs_text.strip(), root),
            )
    for arrow in _FD_ARROWS:
        if arrow in text:
            lhs_text, _, rhs_text = text.partition(arrow)
            return FunctionalDependency(
                parse_subattribute(lhs_text.strip(), root),
                parse_subattribute(rhs_text.strip(), root),
            )
    raise DependencySyntaxError(
        f"no dependency arrow ('->' or '->>') found in {text!r}"
    )
