"""Batch membership: answer many ``Σ ⊨ σ`` queries in one sweep.

Algorithm 5.1's cost is per *left-hand side*, not per query — one run
yields ``(X⁺, DepB(X))`` and settles every ``X → Y`` / ``X ↠ Y`` for
that ``X``.  :class:`BulkReasoner` exploits this for batches known up
front:

1. parse and validate every query,
2. group them by LHS mask and compute each distinct, not-yet-cached
   closure exactly once (the per-LHS results land in an embedded
   :class:`~repro.reasoner.Reasoner` cache, so later batches and ad-hoc
   queries reuse them), and
3. answer each query from its group's result.

For large batches over big schemas the distinct LHS closures are
independent, so step 2 can optionally fan out over a
``concurrent.futures`` process pool: each worker receives the parent
session's pickled :class:`~repro.core.plan.CompiledPlan` **once** (via
the pool initializer — the plan carries the encoding, whose structural
tables are rebuilt worker-side, plus the compiled Σ arrays, so workers
never re-encode Σ; queries travel as plain ``int`` masks) and streams
back ``(mask, X⁺, blocks, passes)`` triples.  Workers pay
process start-up and pickling costs, so the parallel path is opt-in and
only engaged when the batch leaves enough distinct closures to matter;
the warmed pool then *persists* across batches and is released by
:meth:`BulkReasoner.shutdown` (or by using the reasoner as a context
manager — the same pool lifecycle contract as
:class:`repro.serve.server.ReasoningServer`).

Naming note: :meth:`BulkReasoner.implies_all` (and the module-level
:func:`implies_all` convenience) return one verdict **per query**;
:func:`repro.core.membership.implies_every` — which held the name
``implies_all`` before the rename — folds its verdicts into a single
"Σ implies every one of them" boolean.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pickle

from .attributes.nested import NestedAttribute
from .core import commands
from .core.closure import ClosureResult
from .core.engine import closure_of_masks_fast
from .core.plan import CompiledPlan
from .dependencies.dependency import Dependency
from .dependencies.sigma import DependencySet
from .obs import InMemorySink, Observer, get_observer, install
from .reasoner import Reasoner
from .schema import Schema

__all__ = ["BulkReasoner", "implies_all"]

# Minimum number of distinct uncached left-hand sides before a process
# pool is worth its start-up cost.
_MIN_PARALLEL_LHS = 4

# Worker-side state, installed once per worker process by _init_worker.
_WORKER_STATE: tuple[CompiledPlan, bool] | None = None


def _init_worker(plan_blob: bytes, collect_spans: bool = False) -> None:
    """Pool initializer: unpickle the compiled plan once per worker.

    The plan ships the encoding root (tables are rebuilt worker-side on
    unpickle) and the already-compiled Σ arrays, so workers do no
    re-encoding at all — one ``pickle.loads`` per worker per pool build.
    """
    global _WORKER_STATE
    _WORKER_STATE = (pickle.loads(plan_blob), collect_spans)


def _solve_mask(mask: int) -> tuple[int, int, frozenset[int], int, tuple, tuple]:
    """Run the worklist kernel for one LHS mask in a worker process.

    Returns ``(mask, X⁺, blocks, passes, spans, fired)``; ``fired`` is
    the kernel's provenance (FDs-then-MVDs firing indices), shipped back
    so the parent session's seeded entries keep exact retraction
    behaviour.  When the parent's observer was enabled at pool creation,
    the run is traced with a worker-local observer and the finished span
    records travel back as plain dicts for the parent to
    :meth:`~repro.obs.Observer.adopt` — worker-side timing, parent-side
    parenting.
    """
    plan, collect_spans = _WORKER_STATE
    encoding = plan.encoding
    fired: set[int] = set()
    if not collect_spans:
        closure_mask, blocks, passes = closure_of_masks_fast(
            encoding, mask, plan.fd_masks, plan.mvd_masks, fired=fired,
            plan=plan,
        )
        return mask, closure_mask, blocks, passes, (), tuple(fired)

    import os

    from .core.closure import closure_of_masks_instrumented

    sink = InMemorySink()
    with install(Observer([sink])) as observer:
        with observer.span("batch.worker", lhs=format(mask, "#x"),
                           pid=os.getpid()):
            closure_mask, blocks, passes = closure_of_masks_instrumented(
                encoding, mask, plan.fd_masks, plan.mvd_masks, fired=fired,
                plan=plan,
            )
    return mask, closure_mask, blocks, passes, tuple(sink.spans), tuple(fired)


class BulkReasoner:
    """Grouped batch evaluation on top of a :class:`Reasoner` cache.

    Parameters
    ----------
    schema / sigma / maxsize:
        As for :class:`~repro.reasoner.Reasoner`; an existing reasoner
        can be wrapped instead by passing it as ``schema`` (its cache is
        shared, not copied).
    workers:
        Default process-pool width for :meth:`implies_all`.  ``None``
        or ``0`` evaluates in-process; ``workers > 1`` fans distinct
        uncached left-hand sides out over that many worker processes
        (batches with fewer than four such LHSs stay in-process — the
        pool would cost more than it saves).
    """

    def __init__(self, schema: Schema | Reasoner | NestedAttribute | str,
                 sigma: DependencySet | Iterable = (), *,
                 maxsize: int | None = None,
                 workers: int | None = None,
                 engine: str | None = None) -> None:
        if isinstance(schema, Reasoner):
            self.reasoner = schema
        else:
            self.reasoner = Reasoner(schema, sigma, maxsize=maxsize,
                                     engine=engine)
        self.workers = workers
        self._pool = None
        self._pool_key: tuple | None = None
        self._pool_sigma: DependencySet | None = None

    # -- pool lifecycle ----------------------------------------------------
    #
    # The process pool is a context-managed resource with the same
    # contract as the server's (:class:`repro.serve.server.ReasoningServer`):
    # created lazily, reused across batches (workers stay warm with the
    # pickled ``(N, Σ)`` tables), and released deterministically by
    # ``shutdown()`` / ``with`` — never leaked on exception paths.

    def __enter__(self) -> "BulkReasoner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release the worker pool (idempotent; a no-op without one).

        The embedded reasoner and its cache stay usable — only the
        fan-out processes are reclaimed.  The next parallel batch
        simply warms a fresh pool.
        """
        pool, self._pool = self._pool, None
        self._pool_key = None
        self._pool_sigma = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.shutdown()
        except Exception:
            pass

    def _pool_for(self, workers: int, collect_spans: bool):
        """The persistent pool, (re)built when its warmed state is stale.

        Worker processes are initialised once with the parent session's
        pickled :class:`CompiledPlan` and whether to collect spans; the
        pool is therefore keyed on those — an observer toggle or a Σ
        edit through ``reasoner.session`` retires the old pool before
        the next dispatch so workers never answer from stale tables.
        The plan is pickled exactly once per pool build, not per task.
        """
        key = (workers, collect_spans)
        sigma = self.sigma
        if (self._pool is None or self._pool_key != key
                or self._pool_sigma is not sigma):
            self.shutdown()
            import concurrent.futures

            plan_blob = pickle.dumps(self.reasoner.session.plan,
                                     protocol=pickle.HIGHEST_PROTOCOL)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(plan_blob, collect_spans),
            )
            self._pool_key = key
            self._pool_sigma = sigma
        return self._pool

    @property
    def schema(self) -> Schema:
        return self.reasoner.schema

    @property
    def sigma(self) -> DependencySet:
        return self.reasoner.sigma

    # -- batch evaluation --------------------------------------------------

    def implies_all(self, dependencies: Iterable[Dependency | str], *,
                    workers: int | None = None) -> list[bool]:
        """Decide ``Σ ⊨ σ`` for every query; one closure per distinct LHS.

        Returns the verdicts **in query order, one per query** — the
        conjunction-folding sibling is
        :func:`repro.core.membership.implies_every` (which was called
        ``implies_all`` there before the rename).  ``workers`` overrides
        the instance default for this batch.
        """
        schema = self.schema
        parsed: list[Dependency] = []
        for dependency in dependencies:
            dependency = schema.dependency(dependency)
            dependency.validate(schema.root)
            parsed.append(dependency)

        if workers is None:
            workers = self.workers

        # The verdict sweep is the typed ImpliesBatch command — the
        # same object the wire dispatches — run against the session
        # after this class's pool fan-out has warmed the distinct LHS
        # closures.  Parsed Dependency objects are passed through so
        # nothing is re-parsed.
        session = self.reasoner.session
        command = commands.ImpliesBatch(dependencies=tuple(parsed))
        lhs_masks = command.lhs_masks(session)

        obs = get_observer()
        if not obs.enabled:
            self._prefetch(lhs_masks, workers)
            return command.run(commands.CommandContext(session)).value

        with obs.span("batch.implies_all", queries=len(parsed),
                      distinct_lhs=len(lhs_masks), workers=workers or 0):
            self._prefetch(lhs_masks, workers)
            # run() directly (no command.run wrapper span): the pinned
            # PR 2 contract parents each batch.query span straight
            # under batch.implies_all.
            verdicts = command.run(commands.CommandContext(session)).value
        obs.add("batch.queries", len(parsed))
        obs.add("batch.batches")
        obs.observe("batch.fanout", len(lhs_masks))
        return verdicts

    def closures_for(self, lhs_list: Iterable[NestedAttribute | str], *,
                     workers: int | None = None) -> list[ClosureResult]:
        """Batch :meth:`Reasoner.result_for` over many left-hand sides."""
        schema = self.schema
        masks = [schema.encoding.encode(schema.attribute(x)) for x in lhs_list]
        if workers is None:
            workers = self.workers
        self._prefetch(masks, workers)
        return [self.reasoner.result_for_mask(mask) for mask in masks]

    # -- internals ---------------------------------------------------------

    def _prefetch(self, lhs_masks: Sequence[int], workers: int | None) -> None:
        """Compute distinct uncached LHS closures, fanning out if asked.

        Pool workers always run the worklist kernel whatever engine the
        parent session selected — all registered engines are
        bit-identical, and the structural reference engine would defeat
        the point of fanning out.
        """
        session = self.reasoner.session
        pending: list[int] = []
        seen: set[int] = set()
        for mask in lhs_masks:
            if mask not in seen and not session.is_cached(mask):
                seen.add(mask)
                pending.append(mask)
        if not pending:
            return
        if not workers or workers <= 1 or len(pending) < _MIN_PARALLEL_LHS:
            return  # result_for_mask computes serially on demand

        obs = get_observer()
        encoding = self.schema.encoding
        with obs.span("batch.prefetch", pending=len(pending),
                      workers=min(workers, len(pending)), parallel=True):
            obs.add("batch.pool_dispatches")
            pool = self._pool_for(workers, obs.enabled)
            for mask, closure_mask, blocks, passes, spans, fired in pool.map(
                _solve_mask, pending,
                chunksize=max(1, len(pending) // workers),
            ):
                session.seed(
                    mask,
                    ClosureResult(encoding, mask, closure_mask, blocks,
                                  passes, frozenset(fired)),
                    fired,
                )
                if spans:
                    # Re-number the worker's ids into this observer
                    # and graft its roots under the prefetch span.
                    obs.adopt(spans)

    # -- conveniences ------------------------------------------------------

    def implies(self, dependency: Dependency | str) -> bool:
        """Single-query passthrough to the embedded reasoner."""
        return self.reasoner.implies(dependency)

    def cache_info(self):
        return self.reasoner.cache_info()

    def cache_clear(self, *, encoding: bool = False) -> None:
        """Clear the shared reasoner cache (the library-wide contract).

        Same keyword contract as :meth:`Reasoner.cache_clear`: clears
        exactly what :meth:`cache_info` reports on, and ``encoding=True``
        cascades to :meth:`BasisEncoding.cache_clear`.
        """
        self.reasoner.cache_clear(encoding=encoding)

    def __repr__(self) -> str:
        computed, hits = self.reasoner.cache_info()
        return (
            f"BulkReasoner(root={self.schema.root}, |Σ|={len(self.sigma)}, "
            f"cached={computed}, hits={hits}, workers={self.workers})"
        )


def implies_all(schema: Schema | NestedAttribute | str,
                sigma: DependencySet | Iterable,
                dependencies: Iterable[Dependency | str], *,
                workers: int | None = None) -> list[bool]:
    """One-shot batch membership: ``[Σ ⊨ σ for σ in dependencies]``.

    Functional face of :class:`BulkReasoner` for callers without state.
    Returns one verdict **per query**, in query order — not to be
    confused with :func:`repro.core.membership.implies_every` (formerly
    ``implies_all`` there too), which folds the verdicts into a single
    boolean "Σ implies every one of them".
    """
    return BulkReasoner(schema, sigma, workers=workers).implies_all(dependencies)
