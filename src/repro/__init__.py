"""nestedfds — FDs and MVDs in the presence of lists.

A faithful, from-scratch implementation of

    Sven Hartmann and Sebastian Link,
    *A Membership Algorithm for Functional and Multi-valued Dependencies
    in the Presence of Lists*, ENTCS 91 (2004) 171–194,

covering the nested-attribute data model (base, record and finite list
types), the Brouwerian algebra of subattributes, FD/MVD semantics, the
sound-and-complete axiomatisation, the polynomial membership algorithm
(Algorithm 5.1), the completeness witness construction, the relational
specialisation, and 4NF-style normalisation built on top.

Quick start
-----------
>>> from repro import Schema
>>> schema = Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
>>> sigma = schema.dependencies(
...     "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
>>> schema.implies(sigma, "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
True

The high-level :class:`Schema` facade wraps composable building blocks:

* :mod:`repro.attributes` — the type algebra (Section 3 of the paper),
* :mod:`repro.values` — domains, projections, generalised joins,
* :mod:`repro.dependencies` — FDs/MVDs and satisfaction (Section 4),
* :mod:`repro.inference` — the Theorem 4.6 rules and naive derivation,
* :mod:`repro.core` — Algorithm 5.1 and the membership API (Sections 5–6),
* :mod:`repro.witness` — the Section 4.2 completeness construction,
* :mod:`repro.relational` — flat schemas and the classic Beeri baseline,
* :mod:`repro.normalization` — keys, generalised 4NF, decomposition,
* :mod:`repro.viz` — Hasse-diagram reproductions of Figures 1–4,
* :mod:`repro.workloads` — benchmark generators and paper fixtures.
"""

from .attributes import (
    NULL,
    BasisEncoding,
    Flat,
    ListAttr,
    NestedAttribute,
    Record,
    Universe,
    flat,
    list_of,
    parse_attribute,
    parse_subattribute,
    record,
    unparse,
    unparse_abbreviated,
)
from .core import (
    Session,
    TraceRecorder,
    available_engines,
    closure,
    compute_closure,
    dependency_basis,
    equivalent,
    get_engine,
    implies,
    implies_all,
    implies_every,
    is_redundant,
    minimal_cover,
    set_default_engine,
)
from .dependencies import (
    FD,
    MVD,
    DependencySet,
    FunctionalDependency,
    MultivaluedDependency,
    parse_dependency,
    satisfies,
    satisfies_all,
)
from .batch import BulkReasoner
from .chase import ChaseFailure, ChaseResult, chase
from .normalization import decompose_4nf, is_in_4nf
from .reasoner import Reasoner
from .schema import Schema
from .witness import Witness, build_witness

__version__ = "1.0.0"

__all__ = [
    "Schema",
    "Reasoner",
    "BulkReasoner",
    # attributes
    "NestedAttribute", "Flat", "Record", "ListAttr", "NULL",
    "flat", "record", "list_of",
    "parse_attribute", "parse_subattribute", "unparse", "unparse_abbreviated",
    "BasisEncoding", "Universe",
    # dependencies
    "FunctionalDependency", "MultivaluedDependency", "FD", "MVD",
    "DependencySet", "parse_dependency", "satisfies", "satisfies_all",
    # core
    "implies", "implies_every", "implies_all", "closure", "dependency_basis",
    "equivalent", "is_redundant", "minimal_cover", "compute_closure",
    "TraceRecorder", "Session",
    "available_engines", "get_engine", "set_default_engine",
    # witness / normalisation / chase
    "Witness", "build_witness", "is_in_4nf", "decompose_4nf",
    "chase", "ChaseResult", "ChaseFailure",
    "__version__",
]
