"""An interactive reasoning shell: ``python -m repro shell``.

A line-oriented REPL for exploratory schema design — set a schema, grow
``Σ`` incrementally, fire membership queries, inspect closures, bases,
traces and keys, all with the query cache warm:

.. code-block:: text

    repro> schema Pubcrawl(Person, Visit[Drink(Beer, Pub)])
    schema set (|N| = 4)
    repro> add Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])
    Σ now has 1 dependency
    repro> implies Pubcrawl(Person) -> Pubcrawl(Visit[λ])
    implied
    repro> basis Pubcrawl(Person)
    ...

Designed for testability: the engine consumes an iterable of command
lines and writes to any file-like object, so the test suite drives it
without a terminal.
"""

from __future__ import annotations

import sys
from typing import IO, Iterable

from .core.session import Session
from .exceptions import ReproError
from .schema import Schema

__all__ = ["ReasoningShell", "run_shell"]

#: Shell-only verbs (not in the command registry), as (usage, summary)
#: rows.  The registry verbs are spliced in between the two groups by
#: :func:`_help_text`, so `help` always lists every registered command.
_SHELL_ONLY_PRE = (
    ("schema <N>", "set the nested attribute, e.g. schema R(A, L[B])"),
    ("drop <index>", "remove the i-th dependency (see 'sigma')"),
    ("engine [name]", "show or switch the closure engine"),
    ("sigma", "list Σ"),
)
_SHELL_ONLY_POST = (
    ("decompose", "lossless 4NF-style decomposition"),
    ("synthesize", "Bernstein-style FD synthesis"),
    ("witness <X>", "build the §4.2 Armstrong-style instance for X"),
    ("stats", "kernel/cache instrumentation counters"),
    ("trace on [PATH]", "start recording observability spans"),
    ("", "(optionally streamed to PATH as JSON lines)"),
    ("trace off", "stop recording, report the span count"),
    ("metrics", "observability counters/histograms of this session"),
    ("help", "this text"),
    ("quit / exit", "leave the shell"),
)


def _registry_verbs() -> "tuple[type, ...]":
    """Session-scope registered commands the shell can drive: everything
    buildable from one text argument (list-typed params excluded)."""
    from .core import commands as registry

    return tuple(
        cls for cls in registry.REGISTRY.values()
        if cls.spec.scope == "session"
        and not any(p.type == "list[string]"
                    for p in cls.spec.positional()))


def _help_text() -> str:
    rows = list(_SHELL_ONLY_PRE)
    rows.extend((cls.spec.usage, cls.spec.summary)
                for cls in _registry_verbs())
    rows.extend(_SHELL_ONLY_POST)
    lines = ["commands:"]
    lines.extend(f"  {usage:<18}  {summary}".rstrip() if usage
                 else f"  {'':<18}  {summary}".rstrip()
                 for usage, summary in rows)
    return "\n".join(lines)


class ReasoningShell:
    """The REPL engine; one instance per session."""

    def __init__(self, output: IO[str] | None = None) -> None:
        self.output = output if output is not None else sys.stdout
        self.schema: Schema | None = None
        self._session: Session | None = None
        self._engine_name: str | None = None
        self._observer = None
        self._span_sink = None
        self._previous_observer = None

    # -- helpers ----------------------------------------------------------

    def _say(self, text: str) -> None:
        print(text, file=self.output)

    def _sigma(self):
        assert self._session is not None
        return self._session.sigma

    def _need_schema(self) -> bool:
        if self.schema is None:
            self._say("no schema set — use: schema <attribute>")
            return False
        return True

    def _session_now(self) -> Session:
        assert self._session is not None
        return self._session

    # -- command dispatch ----------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one line; returns ``False`` when the session should end."""
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return True
        command, _, argument = stripped.partition(" ")
        command = command.lower()
        argument = argument.strip()
        try:
            return self._dispatch(command, argument)
        except ReproError as error:
            self._say(f"error: {error}")
            return True

    def _dispatch(self, command: str, argument: str) -> bool:
        if command in ("quit", "exit"):
            return False
        if command == "help":
            self._say(_help_text())
            return True
        if command == "trace":
            word, _, rest = argument.partition(" ")
            if word in ("on", "off"):
                return self._toggle_tracing(word, rest.strip())
        if command == "metrics":
            if self._observer is None:
                self._say("observability is off — 'trace on' to start")
            else:
                self._say(self._observer.metrics.describe())
            return True
        if command == "engine":
            return self._engine_command(argument)
        if command == "schema":
            self.schema = Schema(argument)
            self._session = Session(
                self.schema.root,
                engine=self._engine_name,
                encoding=self.schema.encoding,
                label="reasoner",
            )
            self._say(f"schema set (|N| = {self.schema.encoding.size})")
            return True
        if not self._need_schema():
            return True

        schema = self.schema
        session = self._session_now()
        if command == "drop":
            try:
                index = int(argument)
                removed = session.dependencies[index]
            except (ValueError, IndexError):
                self._say(f"no dependency #{argument}")
                return True
            session.retract(removed)
            self._say(f"dropped {removed.display(schema.root)}")
            return True
        if command == "sigma":
            if not len(session):
                self._say("(Σ is empty)")
            for index, dependency in enumerate(session.dependencies):
                self._say(f"  [{index}] {dependency.display(schema.root)}")
            return True
        if self._run_registry_command(command, argument, schema, session):
            return True
        if command == "decompose":
            self._say(schema.decompose(self._sigma()).describe())
            return True
        if command == "cover":
            self._say(schema.minimal_cover(self._sigma()).display())
            return True
        if command == "synthesize":
            from .normalization import synthesize

            self._say(synthesize(self._sigma(),
                                 encoding=schema.encoding).describe())
            return True
        if command == "stats":
            self._say(session.describe_stats())
            return True
        if command == "witness":
            from .values import format_instance

            witness = schema.witness(self._sigma(), argument)
            self._say(
                f"{len(witness.instance)} tuples over "
                f"{len(witness.free_blocks)} free blocks"
            )
            self._say(format_instance(schema.root, witness.instance))
            return True
        self._say(f"unknown command {command!r} — try 'help'")
        return True

    def _run_registry_command(self, command: str, argument: str,
                              schema: Schema, session: Session) -> bool:
        """Dispatch a registry-backed verb; ``False`` when ``command``
        is not one (the caller falls through to the shell-only verbs).

        The command object and executor are the same ones every other
        surface uses; only the presentation is shell-specific (indents,
        the Σ count after ``add``, the cache-eviction delta after
        ``retract``).
        """
        from .core import commands as registry

        cls = registry.REGISTRY.get(command)
        if cls is None or cls.spec.scope != "session":
            return False
        take = cls.spec.positional()
        if any(param.type == "list[string]" for param in take):
            return False  # no shell syntax for list-valued params
        instance = cls(**{param.name: argument for param in take})
        if command == "add":
            outcome = registry.execute(instance, session)
            count = outcome.result["sigma"]
            noun = "dependency" if count == 1 else "dependencies"
            self._say(f"Σ now has {count} {noun}")
            return True
        if command == "retract":
            before = session.cache_info()
            try:
                outcome = registry.execute(instance, session)
            except ValueError as error:
                self._say(f"error: {error}")
                return True
            after = session.cache_info()
            self._say(
                f"retracted {outcome.result['retracted']} "
                f"(evicted {after.invalidations - before.invalidations} "
                f"cached closures, kept {after.retained - before.retained})")
            return True
        outcome = registry.execute(instance, session)
        lines, _ = cls.render(outcome.result)
        if command == "check4nf":
            self._say(lines[0])  # the shell reports the verdict alone
        elif command in ("basis", "keys"):
            for line in lines:
                self._say(f"  {line}")
            if command == "keys" and not lines:
                self._say("  (no key within the search budget)")
        else:
            for line in lines:
                self._say(line)
        return True

    def _engine_command(self, argument: str) -> bool:
        from .core.engines import available_engines, get_engine

        if not argument:
            current = (self._session.engine.name if self._session is not None
                       else get_engine(self._engine_name).name)
            names = ", ".join(sorted(available_engines()))
            self._say(f"engine: {current} (available: {names})")
            return True
        try:
            if self._session is not None:
                self._session.set_engine(argument)
            else:
                get_engine(argument)  # validate the name before storing it
        except ValueError as error:
            self._say(f"error: {error}")
            return True
        self._engine_name = argument
        self._say(f"engine set to {argument}")
        return True

    # -- observability -----------------------------------------------------

    def _toggle_tracing(self, word: str, path: str) -> bool:
        from .obs import InMemorySink, JsonlSink, Observer, set_observer

        if word == "on":
            if self._observer is not None:
                self._say("tracing is already on")
                return True
            self._span_sink = InMemorySink()
            sinks = [self._span_sink]
            if path:
                sinks.append(JsonlSink(path))
            self._observer = Observer(sinks)
            self._previous_observer = set_observer(self._observer)
            where = f", streaming to {path}" if path else ""
            self._say(f"tracing on{where}")
            return True
        if self._observer is None:
            self._say("tracing is not on")
            return True
        self._close_tracing()
        return True

    def _close_tracing(self) -> None:
        from .obs import set_observer

        set_observer(self._previous_observer)
        self._observer.close()
        self._say(f"tracing off ({len(self._span_sink.spans)} spans recorded)")
        self._observer = None
        self._span_sink = None
        self._previous_observer = None

    def close(self) -> None:
        """End-of-session cleanup: uninstall a still-active observer."""
        if self._observer is not None:
            self._close_tracing()


def run_shell(lines: Iterable[str] | None = None,
              output: IO[str] | None = None) -> int:
    """Run the REPL over ``lines`` (defaults to interactive stdin)."""
    shell = ReasoningShell(output)
    shell._say("repro reasoning shell — 'help' for commands, 'quit' to leave")
    if lines is None:  # pragma: no cover - interactive path
        lines = _interactive_lines()
    try:
        for line in lines:
            if not shell.handle(line):
                break
    finally:
        shell.close()
    return 0


def _interactive_lines():  # pragma: no cover - interactive path
    while True:
        try:
            yield input("repro> ")
        except EOFError:
            return
