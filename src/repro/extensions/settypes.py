"""Finite set and multiset types — the §7 future-work demonstration.

The paper's conclusion sketches what changes beyond lists: "the extension
rule is no longer valid in the presence of sets" (studied for FDs in the
companion [27]) and "MVDs show an interesting behaviour in the presence of
finite set types, in the sense that Theorem 4.4 is no longer valid.  That
is, MVDs deviate from binary join dependencies."

This module supplies the *semantic* substrate to make those statements
executable: set-valued and multiset-valued attribute constructors, their
domains, subattribute rules and projection functions — mirroring
Definitions 3.2–3.6 with the obvious set/multiset readings:

* ``dom(L{N})`` = finite sets over ``dom(N)``; projection maps elementwise
  and **deduplicates** (cardinality may shrink — the crucial difference
  from lists, which preserve position and length);
* ``dom(L⟨N⟩)`` = finite multisets; projection preserves multiplicity
  totals but merges equal projections.

Satisfaction of FDs/MVDs over roots containing these constructors reuses
Definition 4.1 verbatim via :func:`set_project`.

Deliberately **out of scope** (as in the paper): the subattribute
*algebra* for set types, their axiomatisation, and the membership
algorithm — the whole point of the demonstration tests
(``tests/unit/extensions/``) is that the list-type laws *fail* here, so
feeding these attributes to the core algorithm would be unsound.  The
core machinery rejects them with
:class:`~repro.exceptions.ReproError`-derived errors rather than
computing silently wrong answers.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable

from ..attributes.nested import Flat, ListAttr, NestedAttribute, Null, Record
from ..attributes.subattribute import is_subattribute as _core_is_subattribute
from ..exceptions import InvalidValueError, NotASubattributeError, ReproError
from ..values.value import OK, Value

__all__ = [
    "SetAttr",
    "MultisetAttr",
    "Multiset",
    "UnsupportedByCoreError",
    "set_is_subattribute",
    "set_validate_value",
    "set_project",
    "set_satisfies_fd",
    "contains_set_types",
]


class UnsupportedByCoreError(ReproError, TypeError):
    """Raised when set-typed attributes reach list-only machinery."""


class SetAttr(NestedAttribute):
    """A set-valued attribute ``L{N}``: finite sets over ``dom(N)``."""

    __slots__ = ("label", "element")

    def __init__(self, label: str, element: NestedAttribute) -> None:
        if not label or not isinstance(label, str):
            raise ValueError(f"set label must be a non-empty string, got {label!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "_hash", hash(("set", label, element)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def depth(self) -> int:
        return 1 + self.element.depth()

    def node_count(self) -> int:
        return 1 + self.element.node_count()

    def head(self) -> str:
        return self.label

    def children(self) -> tuple[NestedAttribute, ...]:
        return (self.element,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SetAttr)
            and self.label == other.label
            and self.element == other.element
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # the paper writes set constructors with {}
        return f"{self.label}{{{self.element}}}"


class MultisetAttr(NestedAttribute):
    """A multiset-valued attribute ``L⟨N⟩``: finite multisets over ``dom(N)``."""

    __slots__ = ("label", "element")

    def __init__(self, label: str, element: NestedAttribute) -> None:
        if not label or not isinstance(label, str):
            raise ValueError(
                f"multiset label must be a non-empty string, got {label!r}"
            )
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "_hash", hash(("multiset", label, element)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def depth(self) -> int:
        return 1 + self.element.depth()

    def node_count(self) -> int:
        return 1 + self.element.node_count()

    def head(self) -> str:
        return self.label

    def children(self) -> tuple[NestedAttribute, ...]:
        return (self.element,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MultisetAttr)
            and self.label == other.label
            and self.element == other.element
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.label}<{self.element}>"


class Multiset:
    """An immutable, hashable finite multiset of hashable values."""

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        counter = Counter(items)
        frozen = frozenset(counter.items())
        object.__setattr__(self, "_items", frozen)
        object.__setattr__(self, "_hash", hash(("repro.multiset", frozen)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Multiset is immutable")

    def elements(self):
        """Iterate elements with multiplicity."""
        for value, count in sorted(self._items, key=repr):
            for _ in range(count):
                yield value

    def counts(self) -> frozenset:
        """The underlying ``(value, multiplicity)`` pairs."""
        return self._items

    def __len__(self) -> int:
        return sum(count for _, count in self._items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Multiset) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(value) for value in self.elements())
        return f"Multiset([{inner}])"


def contains_set_types(attribute: NestedAttribute) -> bool:
    """Whether any constructor in the term is set- or multiset-valued."""
    return any(
        isinstance(node, (SetAttr, MultisetAttr)) for node in attribute.walk()
    )


# ---------------------------------------------------------------------------
# Subattribute relation (Definition 3.4 extended with the set bullets)
# ---------------------------------------------------------------------------

def set_is_subattribute(candidate: NestedAttribute, parent: NestedAttribute) -> bool:
    """``≤`` extended to set/multiset constructors.

    ``λ ≤ L{N}`` and ``λ ≤ L⟨N⟩`` (like lists), and the constructors are
    monotone in their element type.
    """
    if candidate == parent:
        return True
    if isinstance(candidate, Null):
        return isinstance(parent, (Flat, ListAttr, SetAttr, MultisetAttr))
    if isinstance(candidate, SetAttr) and isinstance(parent, SetAttr):
        return candidate.label == parent.label and set_is_subattribute(
            candidate.element, parent.element
        )
    if isinstance(candidate, MultisetAttr) and isinstance(parent, MultisetAttr):
        return candidate.label == parent.label and set_is_subattribute(
            candidate.element, parent.element
        )
    if isinstance(candidate, Record) and isinstance(parent, Record):
        if candidate.label != parent.label or candidate.arity != parent.arity:
            return False
        return all(
            set_is_subattribute(c, p)
            for c, p in zip(candidate.components, parent.components)
        )
    if isinstance(candidate, ListAttr) and isinstance(parent, ListAttr):
        return candidate.label == parent.label and set_is_subattribute(
            candidate.element, parent.element
        )
    if contains_set_types(candidate) or contains_set_types(parent):
        return False
    return _core_is_subattribute(candidate, parent)


# ---------------------------------------------------------------------------
# Values and projections (Definitions 3.3 / 3.6 extended)
# ---------------------------------------------------------------------------

def set_validate_value(attribute: NestedAttribute, value: Value) -> None:
    """Assert ``value ∈ dom(attribute)`` for set-extended attributes."""
    if isinstance(attribute, SetAttr):
        if not isinstance(value, frozenset):
            raise InvalidValueError(
                f"dom({attribute}) holds frozensets, got {value!r}"
            )
        for element in value:
            set_validate_value(attribute.element, element)
        return
    if isinstance(attribute, MultisetAttr):
        if not isinstance(value, Multiset):
            raise InvalidValueError(
                f"dom({attribute}) holds Multiset values, got {value!r}"
            )
        for element, _ in value.counts():
            set_validate_value(attribute.element, element)
        return
    if isinstance(attribute, Record):
        if not isinstance(value, tuple) or len(value) != attribute.arity:
            raise InvalidValueError(
                f"dom({attribute}) holds {attribute.arity}-tuples, got {value!r}"
            )
        for component_attribute, component_value in zip(attribute.components, value):
            set_validate_value(component_attribute, component_value)
        return
    if isinstance(attribute, ListAttr):
        if not isinstance(value, tuple):
            raise InvalidValueError(
                f"dom({attribute}) holds finite lists (tuples), got {value!r}"
            )
        for element in value:
            set_validate_value(attribute.element, element)
        return
    from ..values.value import validate_value

    validate_value(attribute, value)


def set_project(parent: NestedAttribute, target: NestedAttribute,
                value: Value) -> Value:
    """``π^parent_target`` extended to set and multiset constructors.

    The set projection *deduplicates* — two elements with equal
    projections collapse into one — which is exactly what breaks the
    extension rule and the binary-join characterisation (see the
    demonstration tests).
    """
    if not set_is_subattribute(target, parent):
        raise NotASubattributeError(f"{target} is not a subattribute of {parent}")
    return _set_project(parent, target, value)


def _set_project(parent: NestedAttribute, target: NestedAttribute,
                 value: Value) -> Value:
    if target == parent:
        return value
    if isinstance(target, Null):
        return OK
    if isinstance(parent, SetAttr):
        assert isinstance(target, SetAttr)
        return frozenset(
            _set_project(parent.element, target.element, element)
            for element in value
        )
    if isinstance(parent, MultisetAttr):
        assert isinstance(target, MultisetAttr)
        return Multiset(
            _set_project(parent.element, target.element, element)
            for element in value.elements()
        )
    if isinstance(parent, Record):
        assert isinstance(target, Record)
        return tuple(
            _set_project(component_parent, component_target, component_value)
            for component_parent, component_target, component_value in zip(
                parent.components, target.components, value
            )
        )
    if isinstance(parent, ListAttr):
        assert isinstance(target, ListAttr)
        return tuple(
            _set_project(parent.element, target.element, element)
            for element in value
        )
    raise AssertionError(f"unreachable projection case {target} ≤ {parent}")


def set_satisfies_fd(root: NestedAttribute, instance: Iterable[Value],
                     lhs: NestedAttribute, rhs: NestedAttribute) -> bool:
    """FD satisfaction (Definition 4.1) over set-extended roots."""
    seen: dict[Value, Value] = {}
    for value in instance:
        key = set_project(root, lhs, value)
        image = set_project(root, rhs, value)
        if key in seen and seen[key] != image:
            return False
        seen.setdefault(key, image)
    return True
