"""Future-work extensions sketched in the paper's conclusion (§7).

Currently: the set/multiset type substrate with executable
demonstrations of where the list-type theory stops applying.  These
modules deliberately do NOT extend the membership algorithm — the
demonstrations show why that would be unsound without new theory.
"""

from .settypes import (
    Multiset,
    MultisetAttr,
    SetAttr,
    UnsupportedByCoreError,
    contains_set_types,
    set_is_subattribute,
    set_project,
    set_satisfies_fd,
    set_validate_value,
)

__all__ = [
    "SetAttr", "MultisetAttr", "Multiset", "UnsupportedByCoreError",
    "contains_set_types", "set_is_subattribute", "set_project",
    "set_satisfies_fd", "set_validate_value",
]
