"""Value-level redundancy detection — §7's "eliminating redundancies".

The paper's closing motivation: normal forms should characterise "the
absence of redundancy", and "the membership problem presented in this
article will then be very useful for eliminating redundancies".  This
module implements the standard (Vincent-style) notion the paper's
normal-form programme refers to, lifted to nested attributes:

    An occurrence of a value — the projection ``π_W(t)`` of a tuple
    ``t ∈ r`` onto a basis attribute ``W`` — is **redundant** when it is
    *forced*: some implied FD ``X → Y`` with ``W ≤ Y`` and another tuple
    ``t' ≠ t`` with ``π_X(t') = π_X(t)`` pins the value down; it could be
    erased and reconstructed from the rest of the instance and ``Σ``.

Such forced occurrences are stored twice (or more) — the update-anomaly
risk that 4NF-style decomposition removes.  :func:`redundant_occurrences`
enumerates them; :func:`redundancy_report` aggregates per basis
attribute, which makes "how much does this decomposition help?"
quantifiable (see ``examples/schema_design.py`` and the normalisation
benchmarks).

Precise definition implemented (pairwise-exact): the occurrence
``(t, W)`` is redundant iff there is another tuple ``t'`` such that, with
``C`` the exact agreement element of ``t`` and ``t'``,

    ``Σ ⊨ (C ∸ W) → W``

— erase the ``W``-occurrence (its whole ideal) from the agreement; if the
remaining shared information still functionally determines ``W``, the
stored value is reconstructible and hence redundant.  One Algorithm 5.1
run per distinct ``C ∸ W`` mask, memoised.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from ..attributes.encoding import BasisEncoding, iter_bits
from ..attributes.nested import NestedAttribute
from ..attributes.printer import unparse_abbreviated
from ..dependencies.sigma import DependencySet
from ..values.projection import project
from ..values.value import Value

__all__ = ["RedundantOccurrence", "redundant_occurrences", "redundancy_report"]


@dataclass(frozen=True)
class RedundantOccurrence:
    """One forced value occurrence.

    ``π_basis(tuple) = value`` is already determined by ``witness``
    (another tuple agreeing with it on an FD left-hand side whose closure
    covers ``basis``).
    """

    tuple: Value
    witness: Value
    basis: NestedAttribute
    value: Value

    def describe(self, root: NestedAttribute) -> str:
        return (
            f"π_{unparse_abbreviated(self.basis, root)} of a tuple is forced "
            f"by another tuple agreeing on its determining part"
        )


def _agreement_mask(encoding: BasisEncoding, first: Value, second: Value) -> int:
    """The mask of basis attributes the two tuples agree on."""
    root = encoding.root
    mask = 0
    for index, attribute in enumerate(encoding.basis):
        if project(root, attribute, first) == project(root, attribute, second):
            mask |= 1 << index
    # Agreement sets are join-closed ideals, so the mask is down-closed
    # already; assert in debug builds.
    assert encoding.is_downclosed(mask)
    return mask


def redundant_occurrences(
    sigma: DependencySet,
    instance: Iterable[Value],
    *,
    encoding: BasisEncoding | None = None,
    engine: str | None = None,
    session=None,
) -> tuple[RedundantOccurrence, ...]:
    """All FD-forced value occurrences in ``instance`` (pairwise exact).

    Quadratic in the instance size, with one Algorithm 5.1 run per
    distinct agreement pattern.  The per-LHS memo lives in a
    :class:`~repro.core.session.Session`; pass ``session`` (its Σ must
    equal ``sigma``) to share closures with other sweeps — e.g. a
    schema-design loop auditing several candidate covers keeps one
    session across all of them and lets provenance-exact retraction
    preserve the entries each audit step can still use.
    """
    if session is None:
        from ..core.session import Session

        session = Session(sigma.root, sigma,
                          encoding=BasisEncoding.of(sigma.root, encoding),
                          engine=engine)
    enc = session.encoding
    tuples = list(dict.fromkeys(instance))

    def closure_of(mask: int) -> int:
        return session.result_for_mask(mask).closure_mask

    found: list[RedundantOccurrence] = []
    seen: set[tuple[int, int]] = set()  # (tuple index, basis index) pairs
    for (i, first), (j, second) in combinations(enumerate(tuples), 2):
        agreement = _agreement_mask(enc, first, second)
        for index in iter_bits(agreement):
            # Erase the W-occurrence (its whole ideal) from the shared
            # information; redundant iff the remainder still forces W.
            remainder = enc.pseudo_difference(agreement, enc.below[index])
            if closure_of(remainder) >> index & 1:
                attribute = enc.basis[index]
                for owner, owner_index, other in (
                    (first, i, second),
                    (second, j, first),
                ):
                    if (owner_index, index) in seen:
                        continue
                    seen.add((owner_index, index))
                    found.append(
                        RedundantOccurrence(
                            owner,
                            other,
                            attribute,
                            project(enc.root, attribute, owner),
                        )
                    )
    return tuple(found)


def redundancy_report(
    sigma: DependencySet,
    instance: Iterable[Value],
    *,
    encoding: BasisEncoding | None = None,
    engine: str | None = None,
    session=None,
) -> dict[NestedAttribute, int]:
    """Forced-occurrence counts per basis attribute (the hot spots)."""
    report: dict[NestedAttribute, int] = {}
    for occurrence in redundant_occurrences(sigma, instance, encoding=encoding,
                                            engine=engine, session=session):
        report[occurrence.basis] = report.get(occurrence.basis, 0) + 1
    return report
