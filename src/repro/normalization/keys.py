"""Keys and superkeys for nested attributes.

A subattribute ``X`` is a *superkey* of ``N`` w.r.t. ``Σ`` when
``Σ ⊨ X → N``, i.e. ``X⁺ = N``; a *candidate key* is a ≤-minimal superkey.
These are the ingredients of the normal-form tests in
:mod:`repro.normalization.fourth_normal_form`, mirroring the classical
definitions the paper's conclusion points at.

Candidate-key enumeration searches over generator sets of basis
attributes (every lattice element is a join of basis attributes); the
search is exponential in the worst case and therefore budgeted.
"""

from __future__ import annotations

from itertools import combinations

from ..attributes.encoding import BasisEncoding
from ..attributes.nested import NestedAttribute
from ..dependencies.sigma import DependencySet
from ..core.closure import compute_closure

__all__ = ["is_superkey", "candidate_keys"]


def is_superkey(sigma: DependencySet, x: NestedAttribute | int,
                *, encoding: BasisEncoding | None = None) -> bool:
    """Whether ``Σ ⊨ X → N`` (``X⁺ = N``)."""
    enc = BasisEncoding.of(sigma.root, encoding)
    result = compute_closure(enc, x, sigma)
    return result.closure_mask == enc.full


def candidate_keys(sigma: DependencySet,
                   *, encoding: BasisEncoding | None = None,
                   max_generators: int = 4,
                   max_results: int = 64) -> tuple[NestedAttribute, ...]:
    """≤-minimal superkeys, found by growing generator sets.

    Parameters
    ----------
    max_generators:
        Upper bound on the number of basis attributes joined to form a
        key candidate; keys needing more generators are not reported.
    max_results:
        Stop after this many keys.

    Notes
    -----
    The search enumerates antichain generator sets by size, so every
    reported key is minimal among the reported ones *and* globally
    ≤-minimal: a proper subattribute of a reported key would be the
    down-closure of strictly fewer/lower generators and would have been
    found at a smaller size.
    """
    enc = BasisEncoding.of(sigma.root, encoding)

    closures: dict[int, int] = {}

    def closure_mask(mask: int) -> int:
        cached = closures.get(mask)
        if cached is None:
            cached = compute_closure(enc, mask, sigma).closure_mask
            closures[mask] = cached
        return cached

    found: list[int] = []
    # Only generators that are maximal within their own down-set matter;
    # enumerate subsets of basis indices by size.
    indices = list(range(enc.size))
    for size in range(0, max_generators + 1):
        for generator_set in combinations(indices, size):
            mask = 0
            for index in generator_set:
                mask |= enc.below[index]
            if any(known & ~mask == 0 for known in found):
                continue  # a subset is already a key -> not minimal
            if closure_mask(mask) == enc.full:
                found.append(mask)
                if len(found) >= max_results:
                    return tuple(enc.decode(m) for m in sorted(found))
    # Drop non-minimal leftovers (a larger-generator key may contain an
    # earlier one found at the same size with different generators).
    minimal = [
        mask
        for mask in found
        if not any(other != mask and other & ~mask == 0 for other in found)
    ]
    return tuple(enc.decode(mask) for mask in sorted(minimal))
