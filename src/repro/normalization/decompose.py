"""Lossless 4NF-style decomposition driven by dependency bases.

The classical 4NF decomposition algorithm lifts to nested attributes:
while some component ``Z`` admits a non-trivial implied MVD ``X ↠ Y``
(``X, Y ≤ Z``) whose left-hand side is not a superkey *of the component*,
split ``Z`` into ``Z₁ = X ⊔ Y`` and ``Z₂ = X ⊔ (Z ∸ Y)``.

Losslessness of every split follows from Theorem 4.4 plus the projection
property of MVDs: if ``r ⊨ X ↠ Y`` on ``N`` and ``X ≤ Z``, the exchange
tuple witnessing the MVD projects onto ``Z``, so ``π_Z(r) ⊨ X ↠ Y ⊓ Z``
(with the complement taken inside ``Z``).  Components are elements of
``Sub(N)`` and are themselves valid nested attributes, so the recursion
needs no new machinery.

Scope note (beyond the paper): finding *all* implied dependencies on a
projection is the embedded-implication problem, which is hard already in
the RDM; like every practical normalisation tool this module therefore
searches left-hand sides from a finite candidate pool (the Σ left-hand
sides and closures, meet-restricted to the component, plus the
component's basis attributes).  Every split it performs is provably
lossless; a 4NF-violating MVD outside the pool may survive.  With
``exhaustive=True`` (small components) the pool is all of ``Sub(Z)`` and
the result is exactly 4NF with respect to the projected dependencies
representable in the pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..attributes.encoding import BasisEncoding, iter_bits
from ..attributes.nested import NestedAttribute
from ..dependencies.dependency import MultivaluedDependency
from ..dependencies.sigma import DependencySet
from ..core.closure import compute_closure

__all__ = ["DecompositionStep", "Decomposition", "decompose_4nf"]


@dataclass(frozen=True)
class DecompositionStep:
    """One binary split of the decomposition tree."""

    component: NestedAttribute
    mvd: MultivaluedDependency  # the violating MVD used (sides ≤ component)
    left: NestedAttribute       # X ⊔ Y
    right: NestedAttribute      # X ⊔ (component ∸ Y)


@dataclass
class Decomposition:
    """The result: final components plus the split history.

    ``components`` are elements of ``Sub(N)``; projecting an instance onto
    all of them and re-joining pairwise along the recorded splits
    reproduces the instance (lossless).
    """

    root: NestedAttribute
    components: tuple[NestedAttribute, ...]
    steps: tuple[DecompositionStep, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        from ..attributes.printer import unparse_abbreviated

        lines = ["components:"]
        lines.extend(
            f"  {unparse_abbreviated(component, self.root)}"
            for component in self.components
        )
        if self.steps:
            lines.append("splits:")
            for step in self.steps:
                lines.append(
                    f"  {unparse_abbreviated(step.component, self.root)}  --"
                    f"[{step.mvd.display(self.root)}]-->  "
                    f"{unparse_abbreviated(step.left, self.root)}  +  "
                    f"{unparse_abbreviated(step.right, self.root)}"
                )
        return "\n".join(lines)


def _candidate_lhs_masks(enc: BasisEncoding, sigma: DependencySet,
                         z_mask: int, exhaustive: bool) -> list[int]:
    """Left-hand-side candidates inside the component ``Z``."""
    if exhaustive:
        return [mask for mask in enc.all_elements() if mask & ~z_mask == 0]
    candidates: set[int] = {0}
    for dependency in sigma:
        candidates.add(enc.encode(dependency.lhs) & z_mask)
        candidates.add(enc.encode(dependency.rhs) & z_mask)
    for index in iter_bits(z_mask):
        candidates.add(enc.below[index])
    return sorted(candidates)


def decompose_4nf(sigma: DependencySet,
                  *, encoding: BasisEncoding | None = None,
                  exhaustive: bool = False,
                  max_components: int = 64) -> Decomposition:
    """Decompose ``(N, Σ)`` into lossless 4NF-style components.

    Parameters
    ----------
    exhaustive:
        Search all of ``Sub(Z)`` for violating left-hand sides (exact but
        exponential in record width); default uses the candidate pool.
    max_components:
        Safety bound on the size of the decomposition.

    Example
    -------
    >>> from repro.attributes import parse_attribute
    >>> N = parse_attribute("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    >>> sigma = DependencySet.parse(
    ...     N, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"])
    >>> decomposition = decompose_4nf(sigma)
    >>> len(decomposition.components)  # pubs-per-person and beers-per-person
    2
    """
    enc = BasisEncoding.of(sigma.root, encoding)

    final: list[int] = []
    steps: list[DecompositionStep] = []
    pending: list[int] = [enc.full]

    while pending:
        z_mask = pending.pop()
        split = _find_split(enc, sigma, z_mask, exhaustive)
        if split is None:
            final.append(z_mask)
            continue
        lhs_mask, rhs_mask = split
        left_mask = lhs_mask | rhs_mask
        right_mask = lhs_mask | enc.pseudo_difference(z_mask, rhs_mask)
        steps.append(
            DecompositionStep(
                enc.decode(z_mask),
                MultivaluedDependency(enc.decode(lhs_mask), enc.decode(rhs_mask)),
                enc.decode(left_mask),
                enc.decode(right_mask),
            )
        )
        pending.extend((left_mask, right_mask))
        if len(pending) + len(final) > max_components:
            raise RuntimeError(
                f"decomposition exceeded {max_components} components"
            )

    return Decomposition(
        sigma.root,
        tuple(enc.decode(mask) for mask in sorted(final)),
        tuple(steps),
    )


def _find_split(enc: BasisEncoding, sigma: DependencySet, z_mask: int,
                exhaustive: bool) -> tuple[int, int] | None:
    """A violating ``(X, Y)`` inside the component, or ``None`` if clean.

    ``X ↠ Y`` must be implied on ``N``, have both sides inside ``Z``, be
    non-trivial *within Z* and have ``X`` short of determining all of
    ``Z`` (the component-superkey condition: ``X⁺ ⊉ Z``).
    """
    for lhs_mask in _candidate_lhs_masks(enc, sigma, z_mask, exhaustive):
        result = compute_closure(enc, lhs_mask, sigma)
        if z_mask & ~result.closure_mask == 0:
            continue  # lhs determines the whole component
        for member in result.dependency_basis_masks():
            projected = member & z_mask
            if not projected:
                continue
            if projected & ~lhs_mask == 0:
                continue  # trivial: Y ≤ X
            if (lhs_mask | projected) == z_mask:
                continue  # trivial within Z: X ⊔ Y = Z
            remainder = enc.pseudo_difference(z_mask, projected)
            if (lhs_mask | remainder) == z_mask:
                # The projected part is generated by non-maximal basis
                # attributes shared with its in-component complement (e.g.
                # a bare list length): the binary split would reproduce Z
                # and not shrink anything — skip it.
                continue
            # X ↠ member is implied on N (member ∈ DepB(X)); the MVD
            # projection property then makes X ↠ (member ⊓ Z) hold in
            # every π_Z(r) with r ⊨ Σ, so the split below is lossless.
            return (lhs_mask, projected)
    return None
