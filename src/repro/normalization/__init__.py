"""Normalisation: keys, generalised 4NF, lossless decomposition (§7)."""

from .keys import candidate_keys, is_superkey
from .fourth_normal_form import FourNFViolation, is_in_4nf, violations
from .decompose import Decomposition, DecompositionStep, decompose_4nf
from .redundancy import RedundantOccurrence, redundancy_report, redundant_occurrences
from .synthesis import SynthesisResult, synthesize

__all__ = [
    "is_superkey", "candidate_keys",
    "FourNFViolation", "violations", "is_in_4nf",
    "Decomposition", "DecompositionStep", "decompose_4nf",
    "RedundantOccurrence", "redundant_occurrences", "redundancy_report",
    "SynthesisResult", "synthesize",
]
