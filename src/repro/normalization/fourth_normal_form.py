"""Generalised fourth normal form for nested attributes.

The paper's conclusion names the goal: "generalise the fourth normal form
on the basis of several type systems … The membership problem presented in
this article will then be very useful for eliminating redundancies."

The classical definition lifts verbatim through the algebra: ``(N, Σ)`` is
in **4NF** when every non-trivial MVD ``X ↠ Y ∈ Σ⁺`` has a superkey
left-hand side (``X⁺ = N``).  Because every FD implies its MVD, 4NF also
forces every non-trivial FD to have a superkey left-hand side (the
BCNF-style condition).

Two checkers:

* :func:`violations` / :func:`is_in_4nf` — examine the *stated*
  dependencies of ``Σ`` (the cheap, classical textbook test; a schema can
  pass it while an implied MVD with a fresh left-hand side violates 4NF).
* the ``exhaustive`` flag — for roots with small ``Sub(N)``, examine every
  possible left-hand side via its dependency basis, giving the exact
  answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attributes.encoding import BasisEncoding
from ..attributes.nested import NestedAttribute
from ..attributes.subattribute import count_subattributes
from ..dependencies.dependency import Dependency, MultivaluedDependency
from ..dependencies.sigma import DependencySet

__all__ = ["FourNFViolation", "violations", "is_in_4nf"]

#: Roots with at most this many subattributes get the exact exhaustive test.
_EXHAUSTIVE_SUB_LIMIT = 4096


@dataclass(frozen=True)
class FourNFViolation:
    """A witness that ``(N, Σ)`` is not in 4NF.

    ``lhs ↠ rhs`` is a non-trivial implied MVD whose left-hand side is
    not a superkey.
    """

    lhs: NestedAttribute
    rhs: NestedAttribute
    source: Dependency | None  # the Σ-dependency that exposed it, if any

    def as_mvd(self) -> MultivaluedDependency:
        return MultivaluedDependency(self.lhs, self.rhs)


def violations(sigma: DependencySet,
               *, encoding: BasisEncoding | None = None,
               exhaustive: bool | None = None,
               engine: str | None = None,
               session=None) -> tuple[FourNFViolation, ...]:
    """All 4NF violations found (empty tuple = in 4NF for this test mode).

    Parameters
    ----------
    exhaustive:
        ``True`` — check every ``X ∈ Sub(N)`` (exact; exponential in the
        record width).  ``False`` — check only the stated dependencies.
        ``None`` (default) — exhaustive when ``|Sub(N)|`` is small.
    engine / session:
        Closures run over a :class:`~repro.core.session.Session`, so
        dependencies sharing a left-hand side pay one kernel run; pass
        ``session`` (its Σ must equal ``sigma``) to share the cache with
        a surrounding schema-design loop.
    """
    if session is None:
        from ..core.session import Session

        session = Session(sigma.root, sigma,
                          encoding=BasisEncoding.of(sigma.root, encoding),
                          engine=engine)
    enc = session.encoding
    if exhaustive is None:
        exhaustive = count_subattributes(sigma.root) <= _EXHAUSTIVE_SUB_LIMIT

    found: list[FourNFViolation] = []
    seen: set[tuple[int, int]] = set()

    def check_lhs(lhs_mask: int, source: Dependency | None) -> None:
        result = session.result_for_mask(lhs_mask)
        if result.closure_mask == enc.full:
            return  # superkey: nothing with this lhs can violate 4NF
        # Every non-trivial implied MVD decomposes into dependency-basis
        # members, at least one of which is itself a non-trivial violation
        # — so scanning DepB(X) is exact for this lhs.
        for block in result.dependency_basis_masks():
            non_trivial = (
                block & ~lhs_mask != 0  # rhs ≰ lhs
                and (block | lhs_mask) != enc.full  # lhs ⊔ rhs ≠ N
            )
            if non_trivial:
                key = (lhs_mask, block)
                if key not in seen:
                    seen.add(key)
                    found.append(
                        FourNFViolation(
                            enc.decode(lhs_mask), enc.decode(block), source
                        )
                    )

    if exhaustive:
        for lhs_mask in enc.all_elements():
            check_lhs(lhs_mask, None)
    else:
        for dependency in sigma:
            if dependency.is_trivial(sigma.root):
                continue
            check_lhs(enc.encode(dependency.lhs), dependency)
    return tuple(found)


def is_in_4nf(sigma: DependencySet,
              *, encoding: BasisEncoding | None = None,
              exhaustive: bool | None = None,
              engine: str | None = None,
              session=None) -> bool:
    """Whether ``(N, Σ)`` is in generalised fourth normal form."""
    return not violations(sigma, encoding=encoding, exhaustive=exhaustive,
                          engine=engine, session=session)
