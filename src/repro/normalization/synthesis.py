"""Bernstein-style schema synthesis, lifted to nested attributes.

The paper's related-work section cites Bernstein's classical synthesis
[12] ("synthesizing third normal form relations from functional
dependencies") as part of the automated-design programme its membership
algorithm serves.  This module lifts the textbook algorithm through the
subattribute algebra:

1. compute a **minimal cover** of the FDs (via the membership algorithm);
2. group cover FDs by left-hand side closure-equivalence
   (``X ≡ X'`` iff ``X⁺ = X'⁺``) and emit one component
   ``X ⊔ Y₁ ⊔ … ⊔ Yₘ`` per group;
3. if no component contains a key of the whole attribute, add one
   candidate key as its own component;
4. drop components subsumed by (≤) another component.

Guarantees (each tested):

* **dependency preservation** — every cover FD has both sides inside one
  component, so it can be enforced locally;
* **lossless join** — the key component plus the FD components reassemble
  any Σ-satisfying instance (verified on witness instances in the test
  suite);
* components are pairwise ≤-incomparable.

Scope: FDs only, like the classical algorithm.  MVDs in ``Σ`` are used
for closure computations (they may strengthen keys via the mixed meet
rule) but do not generate components; use
:func:`repro.normalization.decompose_4nf` for MVD-driven splitting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attributes.encoding import BasisEncoding
from ..attributes.nested import NestedAttribute
from ..core.membership import minimal_cover
from ..dependencies.sigma import DependencySet
from .keys import candidate_keys

__all__ = ["SynthesisResult", "synthesize"]


@dataclass(frozen=True)
class SynthesisResult:
    """The synthesized design.

    Attributes
    ----------
    components:
        The output components (elements of ``Sub(N)``), ≤-incomparable.
    cover:
        The minimal cover the synthesis worked from.
    key_component:
        The component guaranteeing losslessness (either one that already
        contained a candidate key, or the key added in step 3).
    """

    root: NestedAttribute
    components: tuple[NestedAttribute, ...]
    cover: DependencySet
    key_component: NestedAttribute

    def describe(self) -> str:
        from ..attributes.printer import unparse_abbreviated

        lines = ["synthesized components:"]
        for component in self.components:
            marker = "  (key)" if component == self.key_component else ""
            lines.append(f"  {unparse_abbreviated(component, self.root)}{marker}")
        return "\n".join(lines)


def synthesize(sigma: DependencySet,
               *, encoding: BasisEncoding | None = None,
               engine: str | None = None) -> SynthesisResult:
    """Run the lifted Bernstein synthesis on ``Σ``'s FDs.

    One :class:`~repro.core.session.Session` is threaded through the
    whole pipeline: the minimal-cover sweep leaves it holding exactly
    the cover, so the grouping closures and the superkey scan reuse (or
    warm-start from) the cache entries the sweep already paid for.

    Example
    -------
    >>> from repro.attributes import parse_attribute
    >>> from repro.dependencies import DependencySet
    >>> N = parse_attribute("R(A, B, C, D)")
    >>> sigma = DependencySet.parse(
    ...     N, ["R(A) -> R(B)", "R(B) -> R(A)", "R(A) -> R(C)"])
    >>> result = synthesize(sigma)
    >>> len(result.components)   # {A,B,C} merged (A ≡ B), plus the D key
    2
    """
    from ..core.session import Session

    enc = BasisEncoding.of(sigma.root, encoding)
    session = Session(sigma.root, sigma, encoding=enc, engine=engine)
    # The sweep mutates the session: it ends holding exactly the cover,
    # so every closure below is asked of the right Σ.
    cover = minimal_cover(sigma, session=session)

    # Group cover FDs by closure-equivalent left-hand sides.
    groups: dict[int, list[int]] = {}       # closure mask -> [lhs|rhs masks]
    group_lhs: dict[int, int] = {}          # closure mask -> union of lhs masks
    for dependency in cover.fds():
        lhs_mask = enc.encode(dependency.lhs)
        rhs_mask = enc.encode(dependency.rhs)
        closure_mask = session.result_for_mask(lhs_mask).closure_mask
        groups.setdefault(closure_mask, []).append(lhs_mask | rhs_mask)
        group_lhs[closure_mask] = group_lhs.get(closure_mask, 0) | lhs_mask

    component_masks: list[int] = []
    for closure_mask, parts in groups.items():
        combined = group_lhs[closure_mask]
        for part in parts:
            combined |= part
        component_masks.append(combined)

    # Ensure some component is a superkey; otherwise add a candidate key.
    key_mask = None
    for mask in component_masks:
        if session.result_for_mask(mask).closure_mask == enc.full:
            key_mask = mask
            break
    if key_mask is None:
        keys = candidate_keys(sigma, encoding=enc,
                              max_generators=enc.size, max_results=1)
        if not keys:  # pragma: no cover - the root itself is always a key
            keys = (enc.root,)
        key_mask = enc.encode(keys[0])
        component_masks.append(key_mask)

    # Drop ≤-subsumed components (keep first occurrence of equals).
    kept: list[int] = []
    for mask in component_masks:
        if any(other != mask and mask & ~other == 0 for other in component_masks):
            continue
        if mask not in kept:
            kept.append(mask)
    if key_mask not in kept:  # subsumed key: its superset is the key now
        key_mask = next(m for m in kept if key_mask & ~m == 0)

    return SynthesisResult(
        sigma.root,
        tuple(enc.decode(mask) for mask in sorted(kept)),
        cover,
        enc.decode(key_mask),
    )
