"""Seeded random dependency sets over a fixed root.

Random lattice elements use the Birkhoff representation: any down-closed
basis mask denotes an element of ``Sub(N)``, so a random element is the
down-closure of a random generator set.  Generator density is a dial: low
density makes small, specific attributes (interesting left-hand sides),
high density approaches the root.
"""

from __future__ import annotations

import random

from ..attributes.encoding import BasisEncoding
from ..attributes.nested import NestedAttribute
from ..dependencies.dependency import (
    Dependency,
    FunctionalDependency,
    MultivaluedDependency,
)
from ..dependencies.sigma import DependencySet

__all__ = ["random_element_mask", "random_element", "random_dependency", "random_sigma"]


def random_element_mask(rng: random.Random, encoding: BasisEncoding,
                        density: float = 0.3) -> int:
    """A random element of ``Sub(N)`` as a mask (possibly ``λ`` or ``N``)."""
    generators = 0
    for index in range(encoding.size):
        if rng.random() < density:
            generators |= 1 << index
    return encoding.down_close(generators)


def random_element(rng: random.Random, encoding: BasisEncoding,
                   density: float = 0.3) -> NestedAttribute:
    """A random element of ``Sub(N)`` as an attribute."""
    return encoding.decode(random_element_mask(rng, encoding, density))


def random_dependency(rng: random.Random, encoding: BasisEncoding,
                      *, mvd_probability: float = 0.5,
                      lhs_density: float = 0.25,
                      rhs_density: float = 0.35) -> Dependency:
    """One random FD or MVD with independently drawn sides."""
    lhs = random_element(rng, encoding, lhs_density)
    rhs = random_element(rng, encoding, rhs_density)
    if rng.random() < mvd_probability:
        return MultivaluedDependency(lhs, rhs)
    return FunctionalDependency(lhs, rhs)


def random_sigma(rng: random.Random, encoding: BasisEncoding, size: int,
                 *, mvd_probability: float = 0.5,
                 lhs_density: float = 0.25,
                 rhs_density: float = 0.35) -> DependencySet:
    """A random ``Σ`` of (up to, after dedup) ``size`` dependencies."""
    return DependencySet(
        encoding.root,
        (
            random_dependency(
                rng,
                encoding,
                mvd_probability=mvd_probability,
                lhs_density=lhs_density,
                rhs_density=rhs_density,
            )
            for _ in range(size)
        ),
    )
