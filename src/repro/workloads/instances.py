"""Seeded instance families for benchmarks and data-facing tests.

The pub-crawl shape — one fixed schema, per-group cross products of two
list orderings — is the library's standard Σ-satisfying data workload:
it scales the *instance* while keeping the schema constant, which is
what the satisfaction, chase and lossless-join experiments need.
"""

from __future__ import annotations

import random

from ..attributes.nested import NestedAttribute
from ..attributes.parser import parse_attribute
from ..dependencies.sigma import DependencySet

__all__ = ["PubcrawlWorkload", "pubcrawl_workload"]


class PubcrawlWorkload:
    """A scaled pub-crawl dataset with its schema and Σ.

    For each of ``n_people`` persons, two beer orderings and two pub
    orderings (of one shared length 1–3) are combined into the full
    2×2 cross product, so the instance satisfies the example's MVD and
    the mixed-meet FD by construction.

    Attributes
    ----------
    root / sigma:
        The Example 4.2 schema and its single MVD.
    instance:
        The generated tuples (≈ ``4 · n_people``, fewer on collisions).
    """

    def __init__(self, n_people: int, *, seed: int = 23,
                 value_range: int = 100) -> None:
        rng = random.Random(seed)
        self.root: NestedAttribute = parse_attribute(
            "Pubcrawl(Person, Visit[Drink(Beer, Pub)])"
        )
        self.sigma = DependencySet.parse(
            self.root, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]
        )
        self._groups: list[list] = []
        tuples = set()
        for person in range(n_people):
            length = rng.randint(1, 3)
            beer_orders = [
                tuple(rng.randrange(value_range) for _ in range(length))
                for _ in range(2)
            ]
            pub_orders = [
                tuple(rng.randrange(value_range) for _ in range(length))
                for _ in range(2)
            ]
            group = [
                (person, tuple(zip(beers, pubs)))
                for beers in beer_orders
                for pubs in pub_orders
            ]
            self._groups.append(group)
            tuples.update(group)
        self.instance = frozenset(tuples)

    def with_dropped_combinations(self, *, seed: int = 5) -> frozenset:
        """A broken variant: one combination tuple removed per person.

        The remaining three tuples of each group still witness both
        orderings of each side, so the chase must regenerate exactly the
        dropped tuples.
        """
        rng = random.Random(seed)
        kept = set()
        for group in self._groups:
            group = list(dict.fromkeys(group))
            if len(group) > 1:
                rng.shuffle(group)
                group = group[:-1]
            kept.update(group)
        return frozenset(kept)


def pubcrawl_workload(n_people: int, *, seed: int = 23) -> PubcrawlWorkload:
    """Convenience constructor mirroring the other workload factories."""
    return PubcrawlWorkload(n_people, seed=seed)
