"""Workload generators and the paper's worked examples as fixtures."""

from .random_schemas import (
    deep_list_chain,
    flat_record,
    mixed_family,
    random_attribute,
    record_of_lists,
)
from .instances import PubcrawlWorkload, pubcrawl_workload
from .random_sigma import (
    random_dependency,
    random_element,
    random_element_mask,
    random_sigma,
)
from .scenarios import (
    EXAMPLE_4_8_BASIS,
    EXAMPLE_4_8_MAXIMAL,
    EXAMPLE_4_8_NON_MAXIMAL,
    FIGURE_1_ELEMENTS,
    Example51,
    PubcrawlScenario,
    example_4_8_root,
    example_4_12,
    example_5_1,
    figure_1_root,
    pubcrawl,
)

__all__ = [
    "random_attribute", "flat_record", "record_of_lists", "deep_list_chain",
    "mixed_family",
    "random_element_mask", "random_element", "random_dependency", "random_sigma",
    "PubcrawlWorkload", "pubcrawl_workload",
    "PubcrawlScenario", "pubcrawl", "example_4_8_root", "example_4_12",
    "Example51", "example_5_1", "figure_1_root",
    "EXAMPLE_4_8_BASIS", "EXAMPLE_4_8_MAXIMAL", "EXAMPLE_4_8_NON_MAXIMAL",
    "FIGURE_1_ELEMENTS",
]
