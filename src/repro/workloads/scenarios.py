"""The paper's worked examples as reusable fixtures.

Each scenario bundles the exact input of a figure/example of the paper and
the *expected* outputs as stated in the text, so integration tests and
benchmark harnesses compare against a single authoritative transcription.

========  ==================================================================
fixture   source in the paper
========  ==================================================================
E4_2      Example 4.2 / 4.5 — the Pubcrawl schema, snapshot instance, the
          two failing FDs, the holding MVD and FD, and the decomposition
E4_8      Example 4.8 — basis of ``A(B, C[D(E, F[G])])``
E4_12     Example 4.12 / Figure 2 — possession in ``K[L(M[N(A,B)],C)]``
E5_1      Example 5.1 / Figures 3–4 — the full Algorithm 5.1 run with all
          intermediate states
FIG1      Figure 1 — the Brouwerian algebra of ``J[K(A, L[M(B,C)])]``
========  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attributes.nested import NestedAttribute
from ..attributes.parser import parse_attribute, parse_subattribute
from ..dependencies.sigma import DependencySet

__all__ = [
    "PubcrawlScenario",
    "pubcrawl",
    "example_4_8_root",
    "example_4_12",
    "Example51",
    "example_5_1",
    "figure_1_root",
]


# ---------------------------------------------------------------------------
# Example 4.2 / 4.5 — Pubcrawl
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PubcrawlScenario:
    """The paper's running example with its expected verdicts."""

    root: NestedAttribute
    instance: frozenset
    failing_fd_texts: tuple[str, ...]
    holding_mvd_text: str
    holding_fd_text: str
    decomposition_texts: tuple[str, str]

    def sigma(self) -> DependencySet:
        """The MVD the example asserts, as a dependency set."""
        return DependencySet.parse(self.root, [self.holding_mvd_text])


def pubcrawl() -> PubcrawlScenario:
    """Example 4.2's snapshot ``r`` (all seven tuples, verbatim)."""
    root = parse_attribute("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    instance = frozenset(
        {
            ("Sven", (("Lübzer", "Deanos"), ("Kindl", "Highflyers"))),
            ("Sven", (("Kindl", "Deanos"), ("Lübzer", "Highflyers"))),
            (
                "Klaus-Dieter",
                (("Guiness", "Irish Pub"), ("Speights", "3Bar"), ("Guiness", "Irish Pub")),
            ),
            (
                "Klaus-Dieter",
                (("Kölsch", "Irish Pub"), ("Bönnsch", "3Bar"), ("Guiness", "Irish Pub")),
            ),
            (
                "Klaus-Dieter",
                (("Guiness", "Highflyers"), ("Speights", "Deanos"), ("Guiness", "3Bar")),
            ),
            (
                "Klaus-Dieter",
                (("Kölsch", "Highflyers"), ("Bönnsch", "Deanos"), ("Guiness", "3Bar")),
            ),
            ("Sebastian", ()),
        }
    )
    return PubcrawlScenario(
        root=root,
        instance=instance,
        failing_fd_texts=(
            "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Pub)])",
            "Pubcrawl(Person) -> Pubcrawl(Visit[Drink(Beer)])",
        ),
        holding_mvd_text="Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])",
        holding_fd_text="Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
        decomposition_texts=(
            "Pubcrawl(Person, Visit[Drink(Beer)])",
            "Pubcrawl(Person, Visit[Drink(Pub)])",
        ),
    )


# ---------------------------------------------------------------------------
# Example 4.8 — subattribute basis
# ---------------------------------------------------------------------------

def example_4_8_root() -> NestedAttribute:
    """``A(B, C[D(E, F[G])])`` with basis/maximal split stated in the text."""
    return parse_attribute("A(B, C[D(E, F[G])])")


#: Expected (abbreviated) basis strings of Example 4.8, paper order.
EXAMPLE_4_8_BASIS = (
    "A(B)",
    "A(C[λ])",
    "A(C[D(F[λ])])",
    "A(C[D(E)])",
    "A(C[D(F[G])])",
)
EXAMPLE_4_8_MAXIMAL = ("A(B)", "A(C[D(E)])", "A(C[D(F[G])])")
EXAMPLE_4_8_NON_MAXIMAL = ("A(C[λ])", "A(C[D(F[λ])])")


# ---------------------------------------------------------------------------
# Example 4.12 / Figure 2 — possession
# ---------------------------------------------------------------------------

def example_4_12() -> tuple[NestedAttribute, NestedAttribute, NestedAttribute, NestedAttribute]:
    """``(root, X, possessed, not_possessed)`` from Example 4.12.

    ``X = K[L(M[N(A,B)])]`` possesses ``K[L(M[λ])]`` but not ``K[λ]``.
    """
    root = parse_attribute("K[L(M[N(A, B)], C)]")
    x = parse_subattribute("K[L(M[N(A, B)])]", root)
    possessed = parse_subattribute("K[L(M[λ])]", root)
    not_possessed = parse_subattribute("K[λ]", root)
    return root, x, possessed, not_possessed


# ---------------------------------------------------------------------------
# Example 5.1 / Figures 3–4 — the algorithm run
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Example51:
    """The complete Example 5.1 fixture.

    All expectation fields hold the paper's printed states, transcribed as
    subattribute text (resolved against :attr:`root` on demand).
    """

    root: NestedAttribute
    sigma: DependencySet
    x_text: str

    #: Figure 3 — DB_new after initialisation.
    initial_db_texts: tuple[str, ...]
    #: X_new after pass 1 step (iii) (the U3 MVD fires).
    pass1_x_text: str
    pass1_db_texts: tuple[str, ...]
    #: X_new / DB_new after pass 2 step (i) (the U2 FD fires).
    pass2_fd_x_text: str
    pass2_fd_db_texts: tuple[str, ...]
    #: DB_new after pass 2 step (ii) (the U1 MVD fires).
    pass2_mvd_db_texts: tuple[str, ...]
    #: Final outputs (Figure 4).
    closure_text: str
    dependency_basis_texts: tuple[str, ...]

    def x(self) -> NestedAttribute:
        return parse_subattribute(self.x_text, self.root)

    def resolve(self, texts: tuple[str, ...]) -> frozenset:
        return frozenset(parse_subattribute(text, self.root) for text in texts)


def example_5_1() -> Example51:
    """Build the Example 5.1 fixture, states verbatim from the paper."""
    root = parse_attribute(
        "L1(L2[L3[L4(A, B, C)]], L5[L6(D, E)], L7(F, L8[L9(G, L10[H])], I))"
    )
    sigma = DependencySet.parse(
        root,
        [
            # U1 ->> V1
            "L1(L5[λ], L7(F, L8[L9(G)], I)) ->> L1(L2[L3[L4(C)]], L5[L6(E)])",
            # U2 -> V2
            "L1(L2[L3[λ]], L7(F)) -> L1(L2[L3[L4(A)]], L7(L8[L9(G)], I))",
            # U3 ->> V3
            "L1(L7(F, L8[L9(L10[λ])])) ->> L1(L2[L3[λ]], L5[L6(D)])",
        ],
    )
    return Example51(
        root=root,
        sigma=sigma,
        x_text="L1(L7(F, L8[L9(L10[H])]))",
        initial_db_texts=(
            "L1(L2[L3[L4(A, B, C)]], L5[L6(D, E)], L7(L8[L9(G)], I))",
            "L1(L7(F))",
            "L1(L7(L8[L9(L10[H])]))",
        ),
        pass1_x_text="L1(L2[L3[λ]], L5[λ], L7(F, L8[L9(L10[H])]))",
        pass1_db_texts=(
            "L1(L2[L3[L4(A, B, C)]], L5[L6(E)], L7(L8[L9(G)], I))",
            "L1(L7(F))",
            "L1(L7(L8[L9(L10[H])]))",
            "L1(L5[L6(D)])",
        ),
        pass2_fd_x_text="L1(L2[L3[L4(A)]], L5[λ], L7(F, L8[L9(G, L10[H])], I))",
        pass2_fd_db_texts=(
            "L1(L2[L3[L4(A)]])",
            "L1(L7(L8[L9(G)]))",
            "L1(L7(I))",
            "L1(L2[L3[L4(B, C)]], L5[L6(E)])",
            "L1(L7(F))",
            "L1(L7(L8[L9(L10[H])]))",
            "L1(L5[L6(D)])",
        ),
        pass2_mvd_db_texts=(
            "L1(L2[L3[L4(A)]])",
            "L1(L7(L8[L9(G)]))",
            "L1(L7(I))",
            "L1(L2[L3[L4(B)]])",
            "L1(L2[L3[L4(C)]], L5[L6(E)])",
            "L1(L7(F))",
            "L1(L7(L8[L9(L10[H])]))",
            "L1(L5[L6(D)])",
        ),
        closure_text="L1(L2[L3[L4(A)]], L5[λ], L7(F, L8[L9(G, L10[H])], I))",
        dependency_basis_texts=(
            "L1(L2[λ])",
            "L1(L2[L3[λ]])",
            "L1(L2[L3[L4(A)]])",
            "L1(L5[λ])",
            "L1(L7(F))",
            "L1(L7(L8[λ]))",
            "L1(L7(L8[L9(G)]))",
            "L1(L7(L8[L9(L10[λ])]))",
            "L1(L7(L8[L9(L10[H])]))",
            "L1(L7(I))",
            "L1(L5[L6(D)])",
            "L1(L2[L3[L4(B)]])",
            "L1(L2[L3[L4(C)]], L5[L6(E)])",
        ),
    )


# ---------------------------------------------------------------------------
# Figure 1 — the Brouwerian algebra of J[K(A, L[M(B, C)])]
# ---------------------------------------------------------------------------

def figure_1_root() -> NestedAttribute:
    """The root of Figure 1; its ``Sub`` has exactly 11 elements."""
    return parse_attribute("J[K(A, L[M(B, C)])]")


#: The 11 elements of Figure 1's lattice, abbreviated as in the paper.
FIGURE_1_ELEMENTS = (
    "λ",
    "J[λ]",
    "J[K(A)]",
    "J[K(L[λ])]",
    "J[K(A, L[λ])]",
    "J[K(L[M(B)])]",
    "J[K(L[M(C)])]",
    "J[K(A, L[M(B)])]",
    "J[K(A, L[M(C)])]",
    "J[K(L[M(B, C)])]",
    "J[K(A, L[M(B, C)])]",
)
