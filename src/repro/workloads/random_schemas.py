"""Seeded random nested attributes for tests and benchmarks.

Two families:

* :func:`random_attribute` — structurally random terms with bounded depth
  and fan-out, used by the hypothesis strategies and differential tests.
* the *sized* families (:func:`flat_record`, :func:`record_of_lists`,
  :func:`deep_list_chain`, :func:`mixed_family`) — schemas whose basis
  size ``|N| = |SubB(N)|`` is a controlled function of a scale parameter,
  used by the Theorem 6.4 scaling benchmarks where the x-axis must be
  ``|N|``.
"""

from __future__ import annotations

import random
from itertools import count

from ..attributes.nested import Flat, ListAttr, NestedAttribute, Record

__all__ = [
    "random_attribute",
    "flat_record",
    "record_of_lists",
    "deep_list_chain",
    "mixed_family",
]


def random_attribute(rng: random.Random, *, max_depth: int = 3,
                     max_fanout: int = 3,
                     allow_flat_root: bool = True,
                     shared_names: bool = False) -> NestedAttribute:
    """A random nested attribute (never ``λ``).

    Depth-0 draws are flat attributes with names ``A0, A1, …`` unique
    within one call tree; records draw 1–``max_fanout`` components; list
    and record constructors are equally likely below the root.

    With ``shared_names=True``, flat names and labels are drawn from a
    small pool instead, so hash-equal subtrees can occur under several
    parents — the structure that once broke the basis-poset traversal
    and that unique-name generation can never produce.
    """
    names = count()
    labels = count()

    def fresh_flat() -> Flat:
        if shared_names:
            return Flat(rng.choice("ABCD"))
        return Flat(f"A{next(names)}")

    def build(depth: int) -> NestedAttribute:
        if depth <= 0:
            return fresh_flat()
        roll = rng.random()
        if roll < 0.34:
            return fresh_flat()
        if roll < 0.67:
            label = rng.choice("LM") if shared_names else f"L{next(labels)}"
            return ListAttr(label, build(depth - 1))
        fanout = rng.randint(1, max_fanout)
        label = rng.choice("RS") if shared_names else f"R{next(labels)}"
        return Record(label, tuple(build(depth - 1) for _ in range(fanout)))

    root = build(max_depth)
    if not allow_flat_root and root.is_flat:
        return Record(f"R{next(labels)}", (root, fresh_flat()))
    return root


def flat_record(width: int, label: str = "R") -> Record:
    """``R(A1,…,Aw)`` — the relational family; ``|N| = width``."""
    if width < 1:
        raise ValueError("width must be at least 1")
    return Record(label, tuple(Flat(f"A{i}") for i in range(1, width + 1)))


def record_of_lists(width: int, label: str = "R") -> Record:
    """``R(L1[A1],…,Lw[Aw])`` — one list per field; ``|N| = 2·width``."""
    if width < 1:
        raise ValueError("width must be at least 1")
    return Record(
        label,
        tuple(ListAttr(f"L{i}", Flat(f"A{i}")) for i in range(1, width + 1)),
    )


def deep_list_chain(depth: int, label: str = "L") -> NestedAttribute:
    """``L1[L2[…[A]…]]`` — nesting depth stress; ``|N| = depth + 1``."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    attribute: NestedAttribute = Flat("A")
    for level in range(depth, 0, -1):
        attribute = ListAttr(f"{label}{level}", attribute)
    return attribute


def mixed_family(scale: int, label: str = "R") -> Record:
    """Alternating flat / list-of-record fields; ``|N| = 4·scale``.

    Field ``2i`` is flat, field ``2i+1`` is ``Li[Di(Bi, Ci)]`` — the shape
    of the paper's running examples, scaled.
    """
    if scale < 1:
        raise ValueError("scale must be at least 1")
    components: list[NestedAttribute] = []
    for i in range(1, scale + 1):
        components.append(Flat(f"A{i}"))
        components.append(
            ListAttr(f"L{i}", Record(f"D{i}", (Flat(f"B{i}"), Flat(f"C{i}"))))
        )
    return Record(label, tuple(components))
