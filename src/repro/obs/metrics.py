"""Counters and bounded histograms for the membership engine.

Two metric kinds cover everything the engine wants to report:

* **Counters** — monotone totals (closure passes, rule firings,
  encoding cache hits, exchange tuples added by the chase).
* **Histograms** — distributions over a *fixed*, bounded set of
  buckets, so a long-lived registry (shell sessions, servers) has O(1)
  memory per metric no matter how many observations flow through it.
  The default bucket boundaries are powers of two, which matches the
  engine's quantities (pass counts, fan-out widths, dirty-set sizes)
  across several orders of magnitude.

The registry is deliberately dumb: no tags, no time windows, no
locking.  Per-query attribution lives on spans; the registry answers
"what did this session do in aggregate" — the face of
``KernelStats``/``cache_info()`` generalised to every layer.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Sequence

__all__ = ["Counter", "Histogram", "MetricsRegistry", "DEFAULT_BOUNDS"]

#: Default histogram bucket upper bounds (inclusive); observations above
#: the last bound land in the overflow bucket.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(2 ** k for k in range(0, 21, 2))


class Counter:
    """A named monotone total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """A bounded histogram with fixed bucket boundaries.

    ``bounds`` are inclusive upper edges in ascending order; one
    overflow bucket catches everything beyond the last edge.  Count,
    sum, min and max ride along so averages and ranges survive the
    bucketing.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"mean={self.mean:.2f})")


class MetricsRegistry:
    """Name-keyed counters and histograms with a JSON-able snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def add(self, name: str, amount: int = 1) -> None:
        self.counter(name).add(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """``{"counters": {name: value}, "histograms": {name: {...}}}``."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def describe(self) -> str:
        """Readable dump for the CLI ``--metrics`` / shell ``metrics``."""
        lines = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name} = {counter.value}")
        for name, histogram in sorted(self._histograms.items()):
            lines.append(
                f"{name}: count={histogram.count} mean={histogram.mean:.2f} "
                f"min={histogram.min} max={histogram.max}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)
