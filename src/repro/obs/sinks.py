"""Pluggable destinations for spans and metric snapshots.

Three sinks cover the use cases the engine has today:

* :class:`NullSink` — discards everything; exists so an *enabled*
  observer with no interesting destination still has a valid fan-out
  list (the *disabled* path never reaches a sink at all).
* :class:`InMemorySink` — buffers span records and metric snapshots in
  lists, with small query helpers; what the test suite asserts against.
* :class:`JsonlSink` — appends one JSON object per line to a file for
  offline analysis; span records stream out as they finish, metric
  snapshots are written on ``flush``/``close``.  The JSONL schema is
  documented in docs/OBSERVABILITY.md.

A sink receives plain dicts (the :meth:`~repro.obs.spans.Span.as_dict`
shape), never live ``Span`` objects — the same records that cross the
process boundary from batch workers, so every sink handles local and
adopted spans identically.
"""

from __future__ import annotations

import json
from typing import IO, Any

__all__ = ["Sink", "NullSink", "InMemorySink", "JsonlSink"]


class Sink:
    """Interface: override any subset; defaults all no-op."""

    def on_span(self, record: dict[str, Any]) -> None:
        """A span finished (or was adopted from a worker)."""

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        """A metrics snapshot was flushed."""

    def flush(self) -> None:
        """Push buffered output to its destination."""

    def close(self) -> None:
        """Release resources; the sink must tolerate further events."""


class NullSink(Sink):
    """Discards everything."""


class InMemorySink(Sink):
    """Buffers records in memory — the test/debug destination."""

    def __init__(self) -> None:
        self.spans: list[dict[str, Any]] = []
        self.metrics: list[dict[str, Any]] = []

    def on_span(self, record: dict[str, Any]) -> None:
        self.spans.append(record)

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        self.metrics.append(snapshot)

    # -- query helpers -----------------------------------------------------

    def by_name(self, name: str) -> list[dict[str, Any]]:
        """All span records with the given event name, arrival order."""
        return [record for record in self.spans if record["name"] == name]

    def children_of(self, span_id: int) -> list[dict[str, Any]]:
        """Direct children of the span with id ``span_id``."""
        return [record for record in self.spans if record["parent"] == span_id]

    def roots(self) -> list[dict[str, Any]]:
        """Span records with no parent."""
        return [record for record in self.spans if record["parent"] is None]

    def clear(self) -> None:
        self.spans.clear()
        self.metrics.clear()


class JsonlSink(Sink):
    """Appends one JSON object per line to ``path`` (or a file object).

    The file is opened lazily on the first record so constructing a
    sink that never fires creates no file.

    Durability: every completed span *tree* — a record with no parent —
    triggers a flush (disable with ``flush_on_root=False``), and the
    sink registers an ``atexit`` close when it first opens its own
    file.  A process killed between requests therefore leaves a file of
    complete, parseable lines; only a kill in the middle of a single
    ``write`` can truncate, and then only the final line.  The sink is
    also a context manager::

        with JsonlSink("trace.jsonl") as sink:
            with install(Observer([sink])):
                ...
    """

    def __init__(self, path_or_file: str | IO[str], *,
                 flush_on_root: bool = True) -> None:
        if isinstance(path_or_file, str):
            self.path: str | None = path_or_file
            self._handle: IO[str] | None = None
            self._owns_handle = True
        else:
            self.path = getattr(path_or_file, "name", None)
            self._handle = path_or_file
            self._owns_handle = False
        self.records_written = 0
        self.flush_on_root = flush_on_root
        self._closed = False
        self._atexit_registered = False

    def _write(self, record: dict[str, Any]) -> None:
        if self._closed:
            return  # late events after close() are dropped, not errors
        if self._handle is None:
            assert self.path is not None
            self._handle = open(self.path, "w", encoding="utf-8")
            self._register_atexit()
        self._handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        self.records_written += 1

    def _register_atexit(self) -> None:
        """Close (flushing) at interpreter exit — a killed-off server's
        trace file must never end mid-record."""
        if self._owns_handle and not self._atexit_registered:
            import atexit

            atexit.register(self.close)
            self._atexit_registered = True

    def on_span(self, record: dict[str, Any]) -> None:
        self._write(record)
        if self.flush_on_root and record.get("parent") is None:
            self.flush()

    def on_metrics(self, snapshot: dict[str, Any]) -> None:
        self._write({"event": "metrics", "metrics": snapshot})

    def flush(self) -> None:
        if self._handle is not None and not self._closed:
            self._handle.flush()

    def close(self) -> None:
        if self._closed:
            return
        if self._handle is not None:
            if self._owns_handle:
                self._handle.close()
                self._handle = None
            else:
                self._handle.flush()
        self._closed = True
        if self._atexit_registered:
            import atexit

            atexit.unregister(self.close)
            self._atexit_registered = False

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
