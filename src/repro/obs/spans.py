"""Hierarchical tracing spans with monotonic timing.

A :class:`Span` covers one logical unit of engine work — a closure run,
a membership query, a batch sweep, a chase — with a monotonic
``start_ns``/``end_ns`` interval, a parent/child link, and a free-form
attribute dict (``|N|``, ``|Σ|``, worklist passes, verdicts, …).  Spans
are produced through :class:`Observer.span`, a context manager that
maintains the nesting stack, so instrumented call trees come out
correctly parented without any explicit plumbing::

    with observer.span("batch.implies_all", queries=60) as span:
        with observer.span("closure.compute", size=48):
            ...
        span.set(distinct_lhs=3)

The cardinal design constraint is the *disabled* path: the engine is
instrumented unconditionally, so when no observer is installed every
hook must cost no more than an attribute check.  :data:`NULL_SPAN` is a
singleton stand-in whose methods all no-op, and
:meth:`Observer.span` on a disabled observer returns it without
allocating anything.

Spans from other processes (the batch fan-out workers) are merged with
:meth:`Observer.adopt`, which re-numbers foreign span ids into the
local id space and grafts the forest under the current (or a given)
span — see :mod:`repro.batch` for the producer side.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

from .metrics import MetricsRegistry
from .sinks import Sink

__all__ = ["Span", "Observer", "NULL_SPAN", "get_observer", "set_observer"]


class Span:
    """One timed, attributed unit of work.

    Attributes
    ----------
    name:
        Dotted event name, e.g. ``"closure.compute"``.
    span_id / parent_id:
        Small integers, unique per observer; root spans have
        ``parent_id is None``.
    start_ns / end_ns:
        ``time.monotonic_ns`` timestamps; ``end_ns`` is ``None`` while
        the span is open.
    attributes:
        Free-form JSON-able payload (see docs/OBSERVABILITY.md for the
        documented keys per span name).
    """

    __slots__ = ("name", "span_id", "parent_id", "start_ns", "end_ns",
                 "attributes", "_observer")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 observer: "Observer | None" = None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = time.monotonic_ns()
        self.end_ns: int | None = None
        self.attributes: dict[str, Any] = {}
        self._observer = observer

    # -- attributes --------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns ``self`` for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_ns(self) -> int | None:
        """Elapsed nanoseconds, or ``None`` while still open."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._observer is not None:
            self._observer._finish(self)

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """The JSONL record shape (``{"event": "span", ...}``)."""
        return {
            "event": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": dict(self.attributes),
        }

    def __repr__(self) -> str:
        state = "open" if self.end_ns is None else f"{self.duration_ns}ns"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NullSpan:
    """Inert singleton returned by disabled observers — every hook on it
    is a no-op, so instrumented code needs no ``if enabled`` guards of
    its own around attribute writes."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Observer:
    """Span factory + metrics registry + sink fan-out for one session.

    Parameters
    ----------
    sinks:
        :class:`~repro.obs.sinks.Sink` instances receiving every
        finished span (and metric snapshots on :meth:`flush`).  May be
        empty — metrics still accumulate in :attr:`metrics`.
    enabled:
        A disabled observer hands out :data:`NULL_SPAN` and drops
        metric updates; the module-level default observer is disabled,
        which is what keeps the un-observed engine at native speed.

    Not thread-safe by design: the engine is single-threaded per
    process, and the multi-process batch path merges worker spans
    explicitly via :meth:`adopt`.
    """

    def __init__(self, sinks: Iterable[Sink] = (), *, enabled: bool = True) -> None:
        self.sinks: list[Sink] = list(sinks)
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self._stack: list[int] = []
        self._next_id = 1

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a child span of the innermost open span (context manager)."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(name, self._next_id, parent, observer=self)
        self._next_id += 1
        if attributes:
            span.attributes.update(attributes)
        self._stack.append(span.span_id)
        return span

    def _finish(self, span: Span) -> None:
        span.end_ns = time.monotonic_ns()
        # Exceptions can unwind several spans at once; pop to this one.
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        for sink in self.sinks:
            sink.on_span(span.as_dict())

    def current_span_id(self) -> int | None:
        """Id of the innermost open span (``None`` at the top level)."""
        return self._stack[-1] if self._stack else None

    def adopt(self, records: Sequence[dict], *,
              parent_id: int | None = None) -> list[dict]:
        """Merge foreign span records (e.g. from a pool worker).

        Ids are re-numbered into this observer's id space, preserving
        the foreign parent/child structure; foreign *root* spans are
        re-parented under ``parent_id`` (default: the innermost open
        span).  The re-numbered records go to the sinks and are
        returned.
        """
        if not self.enabled or not records:
            return []
        if parent_id is None:
            parent_id = self.current_span_id()
        id_map: dict[int, int] = {}
        for record in records:
            id_map[record["id"]] = self._next_id
            self._next_id += 1
        adopted: list[dict] = []
        for record in records:
            merged = dict(record)
            merged["id"] = id_map[record["id"]]
            foreign_parent = record.get("parent")
            merged["parent"] = (
                id_map[foreign_parent]
                if foreign_parent in id_map else parent_id
            )
            adopted.append(merged)
            for sink in self.sinks:
                sink.on_span(merged)
        return adopted

    # -- metrics -----------------------------------------------------------

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (no-op when disabled)."""
        if self.enabled:
            self.metrics.add(name, amount)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (no-op when disabled)."""
        if self.enabled:
            self.metrics.observe(name, value)

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Push a metrics snapshot to the sinks and flush them."""
        snapshot = self.metrics.snapshot()
        for sink in self.sinks:
            sink.on_metrics(snapshot)
            sink.flush()

    def close(self) -> None:
        """Flush, then close every sink."""
        self.flush()
        for sink in self.sinks:
            sink.close()


#: The installed observer; a single disabled instance by default so the
#: hot-path check ``get_observer().enabled`` is one list index + one
#: attribute read.
_CURRENT: list[Observer] = [Observer(enabled=False)]


def get_observer() -> Observer:
    """The currently installed (possibly disabled) observer."""
    return _CURRENT[0]


def set_observer(observer: Observer | None) -> Observer:
    """Install ``observer`` (``None`` = disabled default); returns the
    previous one so callers can restore it in a ``finally``."""
    previous = _CURRENT[0]
    _CURRENT[0] = observer if observer is not None else Observer(enabled=False)
    return previous
