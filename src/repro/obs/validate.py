"""Round-trip validation of JSONL traces.

The acceptance bar for a trace file is structural, not semantic: every
span must have a monotonic ``start_ns ≤ end_ns``, a parent id that
refers to a span actually present in the trace (or ``null`` for
roots), and the attribute keys documented for its span name in
docs/OBSERVABILITY.md.  :func:`validate_trace` enforces exactly that,
so the CLI tests, the overhead benchmark, and offline consumers all
agree on what a well-formed trace is.

Attributes set *after* the work (verdicts, pass counts, chase rounds)
are only required when the span finished cleanly — a span that
recorded an ``error`` attribute legitimately lacks them.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = ["REQUIRED_ATTRS", "COMPLETION_ATTRS", "validate_records",
           "validate_trace"]

#: Attribute keys every span of a given name must carry (set at open).
REQUIRED_ATTRS: dict[str, tuple[str, ...]] = {
    "closure.compute": ("lhs", "size", "sigma", "fds", "mvds", "kernel",
                        "plan"),
    "plan.compile": ("size", "sigma", "fds", "mvds", "incremental"),
    "reasoner.query": ("lhs", "cached"),
    "session.query": ("lhs", "cached", "engine", "warm"),
    "session.add": ("dependency", "sigma"),
    "session.retract": ("dependency", "sigma"),
    "reasoner.add": ("dependency", "sigma"),
    "reasoner.retract": ("dependency", "sigma"),
    "batch.implies_all": ("queries", "distinct_lhs", "workers"),
    "batch.prefetch": ("pending", "workers", "parallel"),
    "batch.query": ("index", "kind", "lhs"),
    "batch.worker": ("lhs", "pid"),
    "chase.run": ("tuples_in", "sigma", "fds", "mvds"),
    "serve.fault": ("op", "kind"),
    "client.retry": ("op", "attempt", "code", "sleep_s"),
    "command.run": ("command", "cost", "read_only"),
    "store.append": ("seq", "op"),
    "store.fsync": ("policy",),
    "store.snapshot": ("sessions", "last_seq"),
    "store.compact": ("records", "bytes"),
    "store.recover": ("data_dir",),
    "replicate.ship": ("follower", "from_seq"),
    "replicate.apply": ("from_seq",),
    "replicate.reset": ("last_seq", "sessions"),
    "replicate.fence": ("min_seq", "applied_seq"),
}

#: Attribute keys set on clean completion (absent after an error).
COMPLETION_ATTRS: dict[str, tuple[str, ...]] = {
    "closure.compute": ("passes", "firings", "requeues", "requeue_scanned",
                        "skipped_firings", "u_bar_lookups", "u_bar_blocks",
                        "block_splits", "db_rewrites",
                        "dirty_bits", "blocks", "encoding_cache_hits",
                        "encoding_cache_misses"),
    "plan.compile": ("folded",),
    "batch.query": ("verdict",),
    "chase.run": ("rounds", "added", "tuples_out"),
    "session.retract": ("evicted", "retained"),
    "reasoner.retract": ("evicted", "retained"),
    "command.run": ("ok",),
    "store.append": ("bytes",),
    "store.snapshot": ("bytes",),
    "store.compact": ("segments_removed",),
    "store.recover": ("sessions", "replayed", "torn"),
    "replicate.ship": ("records", "last_seq"),
    "replicate.apply": ("records", "applied_seq"),
    "replicate.fence": ("ok",),
}


def validate_records(records: Iterable[dict[str, Any]]) -> dict[str, int]:
    """Validate span/metrics records; returns ``{"spans": n, "metrics": m}``.

    Raises
    ------
    ValueError
        Naming the first offending record and what is wrong with it.
    """
    spans: list[dict[str, Any]] = []
    metrics = 0
    for record in records:
        event = record.get("event")
        if event == "metrics":
            if "metrics" not in record:
                raise ValueError("metrics record without a 'metrics' payload")
            metrics += 1
        elif event == "span":
            spans.append(record)
        else:
            raise ValueError(f"unknown event kind {event!r}")

    seen_ids: set[int] = set()
    for span in spans:
        name = span.get("name")
        span_id = span.get("id")
        if not isinstance(span_id, int) or span_id in seen_ids:
            raise ValueError(f"span {name!r}: missing or duplicate id {span_id!r}")
        seen_ids.add(span_id)

    for span in spans:
        name, span_id = span["name"], span["id"]
        start, end = span.get("start_ns"), span.get("end_ns")
        if not isinstance(start, int) or not isinstance(end, int) or start > end:
            raise ValueError(
                f"span {name!r} (id {span_id}): non-monotonic interval "
                f"start_ns={start!r} end_ns={end!r}"
            )
        parent = span.get("parent")
        if parent is not None and parent not in seen_ids:
            raise ValueError(
                f"span {name!r} (id {span_id}): dangling parent id {parent!r}"
            )
        attrs = span.get("attrs")
        if not isinstance(attrs, dict):
            raise ValueError(f"span {name!r} (id {span_id}): missing attrs")
        required = REQUIRED_ATTRS.get(name, ())
        if "error" not in attrs:
            required = required + COMPLETION_ATTRS.get(name, ())
        missing = [key for key in required if key not in attrs]
        if missing:
            raise ValueError(
                f"span {name!r} (id {span_id}): missing attribute keys {missing}"
            )
    return {"spans": len(spans), "metrics": metrics}


def validate_trace(path: str) -> dict[str, int]:
    """Parse and validate a ``--trace-json`` JSONL file."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not valid JSON ({error})")
    return validate_records(records)
