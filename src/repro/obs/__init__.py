"""``repro.obs`` — observability for the membership engine.

Hierarchical tracing spans, counters/bounded histograms, and pluggable
sinks, instrumenting Algorithm 5.1's hot paths (closure kernel,
reasoner cache, batch fan-out, chase) at *run/query* granularity: the
per-iteration loops stay untouched, so a disabled observer — the
default — costs one attribute check per closure run (proved <3% on the
E7 chain by ``benchmarks/bench_obs_overhead.py``).

Quick start::

    from repro.obs import Observer, InMemorySink, install

    sink = InMemorySink()
    with install(Observer([sink])):
        reasoner.implies("R(A) -> R(B)")
    sink.by_name("closure.compute")   # -> [span record, ...]

Span names, attribute keys, metric names and the JSONL schema are
documented in ``docs/OBSERVABILITY.md``.  The CLI exposes the layer via
``--trace-json PATH`` / ``--metrics``; the shell via ``trace on/off``
and ``metrics``.
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import Counter, Histogram, MetricsRegistry, DEFAULT_BOUNDS
from .sinks import InMemorySink, JsonlSink, NullSink, Sink
from .spans import NULL_SPAN, Observer, Span, get_observer, set_observer
from .validate import validate_records, validate_trace

__all__ = [
    "Counter",
    "DEFAULT_BOUNDS",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSink",
    "Observer",
    "Sink",
    "Span",
    "get_observer",
    "install",
    "set_observer",
    "validate_records",
    "validate_trace",
]


@contextmanager
def install(observer: Observer):
    """Install ``observer`` for the duration of a ``with`` block.

    Restores the previous observer on exit and closes the installed
    one's sinks (flushing a final metrics snapshot).
    """
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)
        observer.close()
