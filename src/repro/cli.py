"""Command-line interface: dependency reasoning from the shell.

Examples
--------
Decide implication (exit code 0 = implied, 1 = not implied)::

    python -m repro implies \\
        --schema "Pubcrawl(Person, Visit[Drink(Beer, Pub)])" \\
        -d "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])" \\
        "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"

Compute a closure or dependency basis, replay the algorithm trace::

    python -m repro closure --schema ... -d ... "Pubcrawl(Person)"
    python -m repro basis   --schema ... -d ... "Pubcrawl(Person)"
    python -m repro trace   --schema ... -d ... "Pubcrawl(Person)"

Schema design::

    python -m repro keys      --schema ... -d ...
    python -m repro check4nf  --schema ... -d ...
    python -m repro decompose --schema ... -d ...
    python -m repro cover     --schema ... -d ...

Dependencies can also be loaded from a file (one per line, ``#``
comments) with ``--sigma-file``.  ``python -m repro figures`` prints the
paper's Figures 1–4.

Serving (see docs/SERVER.md)::

    python -m repro serve --port 7474 --workers 4
    python -m repro query --connect 127.0.0.1:7474 open \\
        --session pub --schema "Pubcrawl(Person, Visit[Drink(Beer, Pub)])" \\
        -d "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"
    python -m repro query --connect 127.0.0.1:7474 implies \\
        --session pub "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .exceptions import ReproError
from .schema import Schema

__all__ = ["main", "build_parser"]


def _add_obs(parser: argparse.ArgumentParser) -> None:
    """The engine/observability flags (any command touching the kernel)."""
    parser.add_argument(
        "--engine", metavar="NAME",
        help="closure engine from the registry (worklist, naive, "
        "reference); the process default for this command",
    )
    parser.add_argument(
        "--trace-json", metavar="PATH",
        help="write the observability spans (and a final metrics "
        "snapshot) as JSON lines to PATH — see docs/OBSERVABILITY.md",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the observability metrics (counters + histograms) "
        "to stderr after the command",
    )


def _add_common(parser: argparse.ArgumentParser, *, with_sigma: bool = True) -> None:
    parser.add_argument(
        "--schema", required=True,
        help="the nested attribute N, e.g. 'R(A, L[B])'",
    )
    if with_sigma:
        parser.add_argument(
            "-d", "--dependency", action="append", default=[],
            metavar="DEP", help="a dependency of Σ, e.g. 'R(A) -> R(B)' "
            "or 'R(A) ->> R(L[λ])'; repeatable",
        )
        parser.add_argument(
            "--sigma-file", metavar="PATH",
            help="file with one dependency per line ('#' comments allowed)",
        )
        parser.add_argument(
            "--stats", action="store_true",
            help="print kernel/cache instrumentation counters to stderr "
            "(implies/closure/basis)",
        )
        _add_obs(parser)


def _load_sigma(schema: Schema, args: argparse.Namespace):
    texts = list(args.dependency)
    if args.sigma_file:
        with open(args.sigma_file, encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    texts.append(stripped)
    return schema.dependencies(*texts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FDs and MVDs in the presence of lists "
        "(Hartmann & Link, ENTCS 91, 2004)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    implies = commands.add_parser(
        "implies", help="decide Σ ⊨ σ (exit 0 = implied, 1 = not)"
    )
    _add_common(implies)
    implies.add_argument("query", help="the dependency σ to decide")

    closure = commands.add_parser("closure", help="the attribute-set closure X⁺")
    _add_common(closure)
    closure.add_argument("x", help="the subattribute X")

    basis = commands.add_parser("basis", help="the dependency basis DepB(X)")
    _add_common(basis)
    basis.add_argument("x", help="the subattribute X")

    trace = commands.add_parser(
        "trace", help="replay Algorithm 5.1 state by state (Figures 3-4 style)"
    )
    _add_common(trace)
    trace.add_argument("x", help="the subattribute X")

    keys = commands.add_parser("keys", help="candidate keys")
    _add_common(keys)

    check4nf = commands.add_parser(
        "check4nf", help="generalised fourth-normal-form test (exit 0 = in 4NF)"
    )
    _add_common(check4nf)

    decompose = commands.add_parser(
        "decompose", help="lossless 4NF-style decomposition"
    )
    _add_common(decompose)

    cover = commands.add_parser(
        "cover", help="an equivalent redundancy-free subset of Σ"
    )
    _add_common(cover)

    check = commands.add_parser(
        "check", help="validate a problem file's instance against its Σ "
        "(exit 0 = satisfied)"
    )
    check.add_argument("problem", help="a problem JSON file (see repro.io)")

    chase_cmd = commands.add_parser(
        "chase", help="complete a problem file's instance to satisfy its "
        "MVDs; prints the chased instance as JSON"
    )
    chase_cmd.add_argument("problem", help="a problem JSON file (see repro.io)")
    _add_obs(chase_cmd)

    audit = commands.add_parser(
        "audit", help="redundancy audit of a problem file's instance "
        "(exit 0 = redundancy-free)"
    )
    audit.add_argument("problem", help="a problem JSON file (see repro.io)")
    _add_obs(audit)

    figures = commands.add_parser(
        "figures", help="print the paper's Figures 1-4"
    )
    figures.add_argument(
        "--dot", action="store_true",
        help="emit Graphviz DOT for Figures 1-2 instead of ASCII",
    )
    commands.add_parser("shell", help="interactive reasoning shell")

    serve = commands.add_parser(
        "serve", help="run the asyncio reasoning server "
        "(NDJSON protocol, see docs/SERVER.md; SIGTERM drains)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7474,
        help="TCP port (0 = ephemeral; the bound address is printed)",
    )
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="process-pool width for cold-closure offload (0 = inline)",
    )
    serve.add_argument("--max-sessions", type=int, default=64,
                       help="LRU cap on open sessions")
    serve.add_argument(
        "--idle-ttl", type=float, default=300.0, metavar="SECONDS",
        help="evict sessions idle this long (<= 0 disables)",
    )
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="server-wide concurrent-request cap")
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request deadline (<= 0 disables)",
    )
    serve.add_argument(
        "--shed-cold-at", type=float, default=None, metavar="FRACTION",
        help="shed cold-closure work (typed 'overloaded') once inflight "
        "reaches this fraction of --max-inflight; hot cache hits keep "
        "being served (default: disabled)",
    )
    serve.add_argument(
        "--data-dir", metavar="PATH",
        help="durable session persistence: WAL + snapshots under PATH; "
        "on start the server recovers every session the directory "
        "holds (see docs/PERSISTENCE.md)",
    )
    serve.add_argument(
        "--replicate-from", metavar="HOST:PORT", dest="replicate_from",
        help="run as a read-only replica tailing the primary at "
        "HOST:PORT; with --data-dir the replica catches up from its own "
        "log, without one it bootstraps from a snapshot reset (see "
        "docs/REPLICATION.md)",
    )
    serve.add_argument(
        "--replica-id", metavar="NAME",
        help="(replica) follower name reported to the primary "
        "(default: the bound host:port)",
    )
    serve.add_argument(
        "--fence-wait", type=float, default=2.0, metavar="SECONDS",
        help="(replica) how long a fenced read (params carry 'min_seq') "
        "waits for replication to catch up before failing with typed "
        "'replica_behind'",
    )
    serve.add_argument(
        "--fsync", choices=("always", "interval", "off"),
        default="interval",
        help="WAL durability: fsync every append ('always'), at most "
        "once per interval ('interval', default — flushed writes still "
        "survive process death), or never ('off')",
    )
    serve.add_argument(
        "--store-compact-records", type=int, default=4096, metavar="N",
        help="compact the store once the live WAL segment holds N "
        "records (default: 4096)",
    )
    serve.add_argument(
        "--store-compact-bytes", type=int, default=1 << 22, metavar="N",
        help="compact the store once the live WAL segment holds N "
        "bytes (default: 4 MiB)",
    )
    serve.add_argument(
        "--fault-plan", metavar="PATH_OR_JSON",
        help="TESTS ONLY: inject deterministic faults from a JSON fault "
        "plan (a file path, or inline JSON starting with '{'); see "
        "docs/SERVER.md",
    )
    _add_obs(serve)

    store = commands.add_parser(
        "store", help="inspect or compact a repro.store data directory "
        "(see docs/PERSISTENCE.md)"
    )
    store.add_argument(
        "action", choices=("inspect", "compact"),
        help="'inspect' prints a read-only JSON summary; 'compact' "
        "snapshots the recovered sessions and truncates the WAL",
    )
    store.add_argument("path", help="the server's --data-dir")

    query = commands.add_parser(
        "query", help="drive a running reasoning server"
    )
    query.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="server address, e.g. 127.0.0.1:7474",
    )
    query.add_argument("--session", default="default", metavar="NAME",
                       help="session name (default: 'default')")
    query.add_argument("--timeout", type=float, default=10.0,
                       help="client socket timeout in seconds")
    query.add_argument(
        "--replicas", action="append", default=[], metavar="HOST:PORT",
        help="fan read-only ops across these replicas (repeatable, or "
        "comma-separated) with bounded-staleness read fences; mutations "
        "still go to --connect (see docs/REPLICATION.md)",
    )
    query.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry retryable failures (overloaded/timeout/dropped "
        "connections) up to N times with jittered backoff (default: 0 "
        "= fail fast)",
    )
    query.add_argument("--schema", help="(open) the nested attribute N")
    query.add_argument(
        "-d", "--dependency", action="append", default=[], metavar="DEP",
        help="(open) a dependency of Σ; repeatable",
    )
    query.add_argument("--sigma-file", metavar="PATH",
                       help="(open) file with one dependency per line")
    query.add_argument("--engine", metavar="NAME",
                       help="(open) closure engine for the new session")
    query.add_argument("--replace", action="store_true",
                       help="(open) replace an existing session of this name")
    from .core.commands import wire_commands

    query.add_argument(
        "op",
        # The verb list is the registry's wire-exposed set, in
        # declaration order — new commands appear here automatically.
        choices=[cls.spec.name for cls in wire_commands()],
        help="server operation",
    )
    query.add_argument(
        "args", nargs="*",
        help="operation arguments (dependencies for implies/add/retract, "
        "a subattribute for closure/basis)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "figures":
        if getattr(args, "dot", False):
            from .viz.figures import figure_1, figure_2

            print(figure_1(fmt="dot"))
            print(figure_2(fmt="dot"))
        else:
            from .viz.figures import render_all

            print(render_all())
        return 0

    if args.command == "shell":
        from .shell import run_shell

        return run_shell()

    engine = getattr(args, "engine", None)
    if engine is not None:
        from .core.engines import set_default_engine

        try:
            previous = set_default_engine(engine)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        try:
            return _dispatch_with_obs(args)
        finally:
            # Never leak the override: tests (and library users) drive
            # main() repeatedly within one process.
            set_default_engine(previous)
    return _dispatch_with_obs(args)


def _dispatch_with_obs(args: argparse.Namespace) -> int:
    """Install the optional observer around the command dispatch."""
    trace_json = getattr(args, "trace_json", None)
    want_metrics = getattr(args, "metrics", False)
    if trace_json or want_metrics:
        from .obs import JsonlSink, Observer, set_observer

        observer = Observer([JsonlSink(trace_json)] if trace_json else [])
        previous = set_observer(observer)
        try:
            return _dispatch(args)
        finally:
            set_observer(previous)
            observer.close()
            if want_metrics:
                print(observer.metrics.describe(), file=sys.stderr)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    """Run the non-shell, non-figures command; returns the exit code."""
    try:
        if args.command in ("check", "chase", "audit"):
            return _run_problem_command(args)

        if args.command == "serve":
            return _run_serve(args)

        if args.command == "store":
            return _run_store(args)

        if args.command == "query":
            return _run_query(args)

        schema = Schema(args.schema)
        sigma = _load_sigma(schema, args)

        if args.command in ("implies", "closure", "basis") and args.stats:
            return _run_with_stats(schema, sigma, args)

        if args.command == "decompose":
            print(schema.decompose(sigma).describe())
            return 0

        return _run_local_command(schema, sigma, args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_serve(args: argparse.Namespace) -> int:
    """``python -m repro serve`` — run until SIGTERM/SIGINT drains it."""
    import asyncio

    from .serve.server import ReasoningServer, ServeConfig

    fault_plan = None
    if args.fault_plan:
        from .serve.faults import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_sessions=args.max_sessions,
        idle_ttl=args.idle_ttl if args.idle_ttl > 0 else None,
        max_inflight=args.max_inflight,
        request_timeout=(args.request_timeout
                         if args.request_timeout > 0 else None),
        shed_cold_at=args.shed_cold_at,
        fault_plan=fault_plan,
        data_dir=args.data_dir,
        fsync=args.fsync,
        store_compact_records=args.store_compact_records,
        store_compact_bytes=args.store_compact_bytes,
        replicate_from=args.replicate_from,
        replica_id=args.replica_id,
        fence_wait=args.fence_wait,
    )

    async def run() -> None:
        server = ReasoningServer(config)
        host, port = await server.start()
        server.install_signal_handlers()
        if server.store is not None:
            stats = server.store.stats()
            print(f"store: {args.data_dir} (fsync={args.fsync}, "
                  f"recovered {stats.get('recovered_sessions', 0)} "
                  f"session(s), replayed "
                  f"{stats.get('replayed_records', 0)} record(s))",
                  file=sys.stderr, flush=True)
        if args.replicate_from:
            print(f"replica: tailing {args.replicate_from} (read-only; "
                  f"mutations answer typed 'not_primary')",
                  file=sys.stderr, flush=True)
        if fault_plan is not None:
            print(f"FAULT INJECTION ENABLED ({len(fault_plan.rules)} "
                  f"rule(s), seed {fault_plan.seed}) — tests only",
                  file=sys.stderr, flush=True)
        # announce only once a signal already means "drain gracefully"
        print(f"serving on {host}:{port}", flush=True)
        await server.serve_forever(handle_signals=False)

    asyncio.run(run())
    return 0


def _run_store(args: argparse.Namespace) -> int:
    """``python -m repro store inspect|compact PATH`` (offline — never
    run against a directory a live server is using)."""
    import json

    if args.action == "inspect":
        import os

        from .store import inspect_store

        # A wrong path or a directory no server ever wrote deserves a
        # diagnosis, not a stack of JSON (or a generic StoreError): say
        # what is missing and exit 1.  Actual corruption inside an
        # initialized directory still surfaces as an error (exit 2).
        if not os.path.isdir(args.path):
            print(f"error: no manifest at {args.path!r}: "
                  f"not a directory", file=sys.stderr)
            return 1
        summary = inspect_store(args.path)
        if not summary.get("initialized", True):
            print(f"error: no manifest at {args.path!r} (empty or "
                  f"uninitialized data directory)", file=sys.stderr)
            return 1
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    from .serve.server import SessionManager
    from .store import SessionStore

    # Offline compaction recovers into a throwaway manager (an
    # effectively unbounded LRU: nothing may be evicted mid-compact),
    # snapshots it, and truncates the replayed segments.
    manager = SessionManager(max_sessions=2 ** 31)
    store = SessionStore(args.path, fsync="always")
    report = store.start(manager)
    result = store.compact(manager.snapshot_state())
    store.close()
    print(f"compacted {args.path}: {len(report.sessions)} session(s) -> "
          f"{result['snapshot']} (last_seq {result['last_seq']}, "
          f"{result['segments_removed']} segment(s) removed)")
    return 0


def _run_query(args: argparse.Namespace) -> int:
    """``python -m repro query --connect host:port OP ...``."""
    import json

    from .serve.client import Client, ServerError

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"error: --connect wants HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    replicas = [address.strip() for spec in args.replicas
                for address in spec.split(",") if address.strip()]
    if replicas:
        from .replicate import RoutedClient, parse_address

        try:
            targets = [parse_address(address) for address in replicas]
        except ValueError as error:
            print(f"error: --replicas: {error}", file=sys.stderr)
            return 2

        def _connect():
            return RoutedClient((host, int(port_text)), targets,
                                timeout=args.timeout)
    elif args.retries > 0:
        from .serve.resilience import RetryingClient, RetryPolicy

        def _connect():
            return RetryingClient.connect(
                host, int(port_text), timeout=args.timeout,
                policy=RetryPolicy(max_retries=args.retries,
                                   deadline=max(args.timeout, 1.0)))
    else:
        def _connect():
            return Client.connect(host, int(port_text), timeout=args.timeout)
    try:
        with _connect() as client:
            op, op_args, session = args.op, args.args, args.session
            if op == "ping":
                print(json.dumps(client.ping()))
                return 0
            if op == "health":
                print(json.dumps(client.health(), indent=2, sort_keys=True))
                return 0
            if op == "open":
                if not args.schema:
                    print("error: 'open' needs --schema", file=sys.stderr)
                    return 2
                texts = list(args.dependency)
                if args.sigma_file:
                    with open(args.sigma_file, encoding="utf-8") as handle:
                        for line in handle:
                            stripped = line.strip()
                            if stripped and not stripped.startswith("#"):
                                texts.append(stripped)
                result = client.open(session, args.schema, texts,
                                     engine=args.engine, replace=args.replace)
                print(f"opened session {result['name']!r} "
                      f"(|Σ|={result['sigma']}, engine={result['engine']})")
                return 0
            if op == "metrics":
                print(json.dumps(client.metrics(), indent=2, sort_keys=True))
                return 0
            if op == "replicate.status":
                print(json.dumps(client.replicate_status(), indent=2,
                                 sort_keys=True))
                return 0
            if op == "close":
                client.close_session(session)
                print(f"closed session {session!r}")
                return 0
            # Every session-scope op is driven from the registry: the
            # spec's positional params bind the CLI arguments, the raw
            # wire result is rendered by the command class.
            from .core import commands as registry

            command_cls = registry.REGISTRY[op]
            take = command_cls.spec.positional()
            params = {"session": session}
            if len(take) == 1 and take[0].type == "list[string]":
                params[take[0].name] = list(op_args)
            elif len(op_args) != len(take):
                wants = ("exactly one argument" if len(take) == 1
                         else f"exactly {len(take)} arguments")
                print(f"error: {op!r} takes {wants}", file=sys.stderr)
                return 2
            else:
                params.update(
                    (param.name, value)
                    for param, value in zip(take, op_args))
            rendered = dict(client.request(op, **params))
            # renderers that echo the query texts (implies_batch) find
            # them here; ops whose results carry the key keep their own.
            rendered.setdefault("dependencies", list(op_args))
            lines, exit_code = command_cls.render(rendered)
            for line in lines:
                print(line)
            return exit_code
    except ServerError as error:
        print(f"error: [{error.code}] {error.message}", file=sys.stderr)
        return 2
    except (ConnectionError, TimeoutError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_local_command(schema: Schema, sigma,
                       args: argparse.Namespace) -> int:
    """The local reasoning verbs, dispatched through the command layer.

    Each CLI verb names a registered command (``implies``, ``closure``,
    ``basis``, ``trace``, ``keys``, ``check4nf``, ``cover``); the spec's
    positional params bind the parsed arguments, and the command's own
    renderer prints the result — the same objects the wire dispatches.
    """
    from .core import commands as registry
    from .reasoner import Reasoner

    command_cls = registry.REGISTRY.get(args.command)
    if command_cls is None:                              # pragma: no cover
        raise AssertionError(f"unhandled command {args.command}")
    supplied = {"dependency": getattr(args, "query", None),
                "x": getattr(args, "x", None)}
    command = command_cls(**{param.name: supplied[param.name]
                             for param in command_cls.spec.positional()})
    session = Reasoner(schema, sigma).session
    outcome = registry.execute(command, session)
    lines, exit_code = command_cls.render(outcome.result)
    for line in lines:
        print(line)
    return exit_code


def _run_with_stats(schema: Schema, sigma, args: argparse.Namespace) -> int:
    """The membership commands via a Reasoner, with counters on stderr."""
    from .reasoner import Reasoner

    reasoner = Reasoner(schema, sigma)
    try:
        if args.command == "implies":
            implied = reasoner.implies(args.query)
            print("implied" if implied else "not implied")
            return 0 if implied else 1
        if args.command == "closure":
            print(schema.show(reasoner.closure(args.x)))
            return 0
        for member in reasoner.dependency_basis(args.x):
            print(schema.show(member))
        return 0
    finally:
        print(reasoner.describe_stats(), file=sys.stderr)


def _run_problem_command(args: argparse.Namespace) -> int:
    """The problem-file commands: ``check`` and ``chase``."""
    import json

    from .dependencies.satisfaction import violating_fd_pair, violating_mvd_pair
    from .io import instance_to_json, load_problem

    problem = load_problem(args.problem)
    if problem.instance is None:
        print("error: the problem file has no instance", file=sys.stderr)
        return 2
    schema = problem.schema

    if args.command == "check":
        clean = True
        for dependency in problem.sigma:
            if dependency.is_fd:
                pair = violating_fd_pair(schema.root, problem.instance, dependency)
            else:
                pair = violating_mvd_pair(schema.root, problem.instance, dependency)
            if pair is not None:
                clean = False
                print(f"VIOLATED  {dependency.display(schema.root)}")
            else:
                print(f"ok        {dependency.display(schema.root)}")
        return 0 if clean else 1

    if args.command == "audit":
        from .normalization import redundancy_report

        report = redundancy_report(
            problem.sigma, problem.instance, encoding=schema.encoding
        )
        if not report:
            print("no redundant occurrences")
            return 0
        for basis_attribute, count in sorted(
            report.items(), key=lambda kv: -kv[1]
        ):
            print(f"{count:6d}  π_{schema.show(basis_attribute)}")
        return 1

    from .chase import ChaseFailure, chase

    try:
        result = chase(schema.root, problem.instance, problem.sigma)
    except ChaseFailure as failure:
        print(f"error: {failure}", file=sys.stderr)
        if failure.implied_by_sigma:
            print("note: the violated FD is implied by Σ — no "
                  "Σ-satisfying superset of this instance exists",
                  file=sys.stderr)
        return 1
    print(json.dumps(instance_to_json(schema.root, result.instance),
                     indent=2, ensure_ascii=False))
    print(f"# added {len(result.added)} exchange tuple(s) in "
          f"{result.rounds} round(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
