"""A query-caching reasoner bound to one ``(N, Σ)`` pair.

Algorithm 5.1 computes, for one left-hand side ``X``, *everything* there
is to know about ``X`` (its closure and dependency basis). Applications
typically fire many queries against one fixed ``Σ`` — schema design
tools, the 4NF checker, interactive sessions — so re-running the
algorithm per query wastes exactly the structure the paper's approach
provides. :class:`Reasoner` memoises one :class:`ClosureResult` per
distinct left-hand side and answers everything else from the cache.

Example
-------
>>> from repro import Schema
>>> from repro.reasoner import Reasoner
>>> schema = Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
>>> sigma = schema.dependencies(
...     "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
>>> reasoner = Reasoner(schema, sigma)
>>> reasoner.implies("Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
True
>>> reasoner.implies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])")
True
>>> reasoner.cache_info()   # one LHS computed, the second query hit it
(1, 1)
"""

from __future__ import annotations

from typing import Iterable

from .core.closure import ClosureResult, compute_closure
from .dependencies.dependency import Dependency, FunctionalDependency
from .dependencies.sigma import DependencySet
from .attributes.nested import NestedAttribute
from .schema import Schema

__all__ = ["Reasoner"]


class Reasoner:
    """Memoised membership queries against a fixed dependency set.

    Parameters
    ----------
    schema:
        The :class:`~repro.schema.Schema` (or anything accepted by its
        constructor — an attribute or its textual form).
    sigma:
        The dependency set ``Σ``, as a :class:`DependencySet` or an
        iterable of dependency texts/objects.
    """

    def __init__(self, schema: Schema | NestedAttribute | str,
                 sigma: DependencySet | Iterable) -> None:
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self.sigma = self.schema._sigma(sigma)
        self._results: dict[int, ClosureResult] = {}
        self._hits = 0

    # -- cache ---------------------------------------------------------------

    def result_for(self, x: NestedAttribute | str) -> ClosureResult:
        """The (cached) Algorithm 5.1 output for left-hand side ``x``."""
        mask = self.schema.encoding.encode(self.schema.attribute(x))
        cached = self._results.get(mask)
        if cached is not None:
            self._hits += 1
            return cached
        result = compute_closure(self.schema.encoding, mask, self.sigma)
        self._results[mask] = result
        return result

    def cache_info(self) -> tuple[int, int]:
        """``(distinct left-hand sides computed, cache hits)``."""
        return (len(self._results), self._hits)

    # -- queries ---------------------------------------------------------------

    def implies(self, dependency: Dependency | str) -> bool:
        """Decide ``Σ ⊨ σ`` using the per-LHS cache."""
        dependency = self.schema.dependency(dependency)
        dependency.validate(self.schema.root)
        result = self.result_for(dependency.lhs)
        rhs_mask = self.schema.encoding.encode(dependency.rhs)
        if isinstance(dependency, FunctionalDependency):
            return result.implies_fd_rhs(rhs_mask)
        return result.implies_mvd_rhs(rhs_mask)

    def closure(self, x: NestedAttribute | str) -> NestedAttribute:
        """The attribute-set closure ``X⁺``."""
        return self.result_for(x).closure

    def dependency_basis(self, x: NestedAttribute | str
                         ) -> tuple[NestedAttribute, ...]:
        """The dependency basis ``DepB(X)``."""
        return self.result_for(x).dependency_basis()

    def is_superkey(self, x: NestedAttribute | str) -> bool:
        """Whether ``Σ ⊨ X → N``."""
        return self.result_for(x).closure_mask == self.schema.encoding.full

    def implied_mvd_rhs_masks(self, x: NestedAttribute | str) -> frozenset[int]:
        """All DepB member masks — the generators of ``Dep(X)``.

        By Proposition 4.10, the right-hand sides ``Y`` with
        ``X ↠ Y ∈ Σ⁺`` are exactly the joins of subsets of these; the set
        of all such ``Y`` forms a Brouwerian subalgebra of ``Sub(N)``
        (the remark before Definition 4.9).
        """
        return self.result_for(x).dependency_basis_masks()

    def __repr__(self) -> str:
        computed, hits = self.cache_info()
        return (
            f"Reasoner(root={self.schema.root}, |Σ|={len(self.sigma)}, "
            f"cached={computed}, hits={hits})"
        )
