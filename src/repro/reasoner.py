"""A query-caching reasoner bound to one ``(N, Σ)`` pair.

Algorithm 5.1 computes, for one left-hand side ``X``, *everything* there
is to know about ``X`` (its closure and dependency basis). Applications
typically fire many queries against one fixed ``Σ`` — schema design
tools, the 4NF checker, interactive sessions — so re-running the
algorithm per query wastes exactly the structure the paper's approach
provides. :class:`Reasoner` memoises one :class:`ClosureResult` per
distinct left-hand side and answers everything else from the cache.

The cache is unbounded by default; pass ``maxsize`` to cap it, in which
case the least recently used left-hand side is evicted first.  For
batches of queries known up front, :class:`repro.batch.BulkReasoner`
adds grouped (optionally multi-process) evaluation on top of this class.

Example
-------
>>> from repro import Schema
>>> from repro.reasoner import Reasoner
>>> schema = Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
>>> sigma = schema.dependencies(
...     "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
>>> reasoner = Reasoner(schema, sigma)
>>> reasoner.implies("Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
True
>>> reasoner.implies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])")
True
>>> reasoner.cache_info()   # one LHS computed, the second query hit it
ReasonerCacheInfo(computed=1, hits=1, evictions=0, maxsize=None)
>>> reasoner.cache_info() == (1, 1)   # still a two-tuple underneath
True
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from .core.closure import ClosureResult, compute_closure
from .core.engine import KernelStats
from .obs import get_observer
from .dependencies.dependency import Dependency, FunctionalDependency
from .dependencies.sigma import DependencySet
from .attributes.nested import NestedAttribute
from .schema import Schema

__all__ = ["Reasoner", "ReasonerCacheInfo"]


class ReasonerCacheInfo(tuple):
    """Cache statistics; compares and unpacks as ``(computed, hits)``.

    The historical two-tuple shape is preserved (``computed, hits =
    reasoner.cache_info()`` and ``cache_info() == (1, 1)`` keep
    working); the richer counters ride along as attributes.
    """

    def __new__(cls, computed: int, hits: int, *, evictions: int = 0,
                maxsize: int | None = None, encoding=None,
                kernel: KernelStats | None = None) -> "ReasonerCacheInfo":
        self = super().__new__(cls, (computed, hits))
        self.evictions = evictions
        self.maxsize = maxsize
        #: The :class:`~repro.attributes.encoding.EncodingCacheInfo`.
        self.encoding = encoding
        #: Accumulated :class:`~repro.core.engine.KernelStats`.
        self.kernel = kernel
        return self

    @property
    def computed(self) -> int:
        return self[0]

    @property
    def hits(self) -> int:
        return self[1]

    def __repr__(self) -> str:
        return (
            f"ReasonerCacheInfo(computed={self[0]}, hits={self[1]}, "
            f"evictions={self.evictions}, maxsize={self.maxsize})"
        )


class Reasoner:
    """Memoised membership queries against a fixed dependency set.

    Parameters
    ----------
    schema:
        The :class:`~repro.schema.Schema` (or anything accepted by its
        constructor — an attribute or its textual form).
    sigma:
        The dependency set ``Σ``, as a :class:`DependencySet` or an
        iterable of dependency texts/objects.
    maxsize:
        Optional cap on the number of cached left-hand sides; least
        recently used results are evicted beyond it.  ``None`` (the
        default) keeps every result.
    """

    def __init__(self, schema: Schema | NestedAttribute | str,
                 sigma: DependencySet | Iterable, *,
                 maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be None or >= 1, got {maxsize!r}")
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self.sigma = self.schema._sigma(sigma)
        self.maxsize = maxsize
        self.kernel_stats = KernelStats()
        self._results: OrderedDict[int, ClosureResult] = OrderedDict()
        self._hits = 0
        self._evictions = 0

    # -- cache ---------------------------------------------------------------

    def result_for(self, x: NestedAttribute | str) -> ClosureResult:
        """The (cached) Algorithm 5.1 output for left-hand side ``x``."""
        mask = self.schema.encoding.encode(self.schema.attribute(x))
        return self.result_for_mask(mask)

    def result_for_mask(self, mask: int) -> ClosureResult:
        """Mask-level :meth:`result_for` (the batch API's entry point)."""
        cached = self._results.get(mask)
        if cached is not None:
            self._hits += 1
            self._results.move_to_end(mask)
            get_observer().add("reasoner.cache.hits")
            return cached
        obs = get_observer()
        if obs.enabled:
            obs.add("reasoner.cache.misses")
            with obs.span("reasoner.query", lhs=format(mask, "#x"),
                          cached=False):
                result = compute_closure(self.schema.encoding, mask,
                                         self.sigma, stats=self.kernel_stats)
        else:
            result = compute_closure(self.schema.encoding, mask, self.sigma,
                                     stats=self.kernel_stats)
        self._store(mask, result)
        return result

    def _store(self, mask: int, result: ClosureResult) -> None:
        self._results[mask] = result
        self._results.move_to_end(mask)
        if self.maxsize is not None:
            while len(self._results) > self.maxsize:
                self._results.popitem(last=False)
                self._evictions += 1
                get_observer().add("reasoner.cache.evictions")

    def cache_info(self) -> ReasonerCacheInfo:
        """``(distinct left-hand sides cached, cache hits)`` plus extras.

        The return value equals and unpacks like the historical
        two-tuple; ``.evictions``, ``.maxsize``, ``.encoding`` and
        ``.kernel`` expose the bounded-cache and instrumentation
        counters added with the worklist kernel.
        """
        return ReasonerCacheInfo(
            len(self._results), self._hits,
            evictions=self._evictions,
            maxsize=self.maxsize,
            encoding=self.schema.encoding.cache_info(),
            kernel=self.kernel_stats,
        )

    def cache_clear(self, *, encoding: bool = False) -> None:
        """Drop all cached results and reset the counters.

        This signature is the library-wide cache-clearing contract:
        every ``cache_clear`` takes keyword-only flags, resets exactly
        the state its ``cache_info()`` reports on (entries *and*
        counters), and the ``encoding`` flag cascades one layer down.
        :meth:`BulkReasoner.cache_clear` forwards here verbatim;
        :meth:`BasisEncoding.cache_clear` is the bottom of the chain
        and takes no flags.

        With ``encoding=True`` the underlying
        :class:`~repro.attributes.encoding.BasisEncoding` memo caches
        (complement / pseudo-difference / possession) are cleared too;
        by default they survive, since they are keyed by masks that stay
        valid for the lifetime of the schema.
        """
        self._results.clear()
        self._hits = 0
        self._evictions = 0
        self.kernel_stats.reset()
        if encoding:
            self.schema.encoding.cache_clear()

    def describe_stats(self) -> str:
        """Readable counter dump for the CLI/shell ``stats`` surfaces."""
        info = self.cache_info()
        kernel = info.kernel
        reasoner_line = (
            f"reasoner: computed={info.computed} hits={info.hits} "
            f"evictions={info.evictions}"
        )
        if info.maxsize is not None:
            reasoner_line += f" maxsize={info.maxsize}"
        kernel_line = (
            f"kernel:   runs={kernel.runs} passes={kernel.passes} "
            f"firings={kernel.firings} requeues={kernel.requeues} "
            f"skipped={kernel.skipped_firings} "
            f"u_bar_lookups={kernel.u_bar_lookups} "
            f"splits={kernel.block_splits} rewrites={kernel.db_rewrites}"
        )
        ops = ", ".join(
            f"{op}={hits}/{hits + misses}"
            for op, (hits, misses, _size, _maxsize) in sorted(info.encoding.items())
        )
        encoding_line = (
            f"encoding: {ops} (hit rate {info.encoding.hit_rate():.1%})"
        )
        return "\n".join((reasoner_line, kernel_line, encoding_line))

    # -- queries ---------------------------------------------------------------

    def implies(self, dependency: Dependency | str) -> bool:
        """Decide ``Σ ⊨ σ`` using the per-LHS cache."""
        dependency = self.schema.dependency(dependency)
        dependency.validate(self.schema.root)
        result = self.result_for(dependency.lhs)
        rhs_mask = self.schema.encoding.encode(dependency.rhs)
        if isinstance(dependency, FunctionalDependency):
            return result.implies_fd_rhs(rhs_mask)
        return result.implies_mvd_rhs(rhs_mask)

    def closure(self, x: NestedAttribute | str) -> NestedAttribute:
        """The attribute-set closure ``X⁺``."""
        return self.result_for(x).closure

    def dependency_basis(self, x: NestedAttribute | str
                         ) -> tuple[NestedAttribute, ...]:
        """The dependency basis ``DepB(X)``."""
        return self.result_for(x).dependency_basis()

    def is_superkey(self, x: NestedAttribute | str) -> bool:
        """Whether ``Σ ⊨ X → N``."""
        return self.result_for(x).closure_mask == self.schema.encoding.full

    def implied_mvd_rhs_masks(self, x: NestedAttribute | str) -> frozenset[int]:
        """All DepB member masks — the generators of ``Dep(X)``.

        By Proposition 4.10, the right-hand sides ``Y`` with
        ``X ↠ Y ∈ Σ⁺`` are exactly the joins of subsets of these; the set
        of all such ``Y`` forms a Brouwerian subalgebra of ``Sub(N)``
        (the remark before Definition 4.9).
        """
        return self.result_for(x).dependency_basis_masks()

    def __repr__(self) -> str:
        computed, hits = self.cache_info()
        return (
            f"Reasoner(root={self.schema.root}, |Σ|={len(self.sigma)}, "
            f"cached={computed}, hits={hits})"
        )
