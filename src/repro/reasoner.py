"""A query-caching reasoner bound to one ``(N, Σ)`` pair.

Algorithm 5.1 computes, for one left-hand side ``X``, *everything* there
is to know about ``X`` (its closure and dependency basis). Applications
typically fire many queries against one fixed ``Σ`` — schema design
tools, the 4NF checker, interactive sessions — so re-running the
algorithm per query wastes exactly the structure the paper's approach
provides. :class:`Reasoner` memoises one :class:`ClosureResult` per
distinct left-hand side and answers everything else from the cache.

Since the session refactor this class is a thin façade over
:class:`repro.core.session.Session` (exposed as ``.session``), created
with ``label="reasoner"`` so the historical ``reasoner.*`` telemetry
names are preserved.  Use the session directly for incremental Σ
editing (``add`` / ``retract`` with provenance-exact cache retention);
the Reasoner keeps the original fixed-Σ query surface.

The cache is unbounded by default; pass ``maxsize`` to cap it, in which
case the least recently used left-hand side is evicted first.  For
batches of queries known up front, :class:`repro.batch.BulkReasoner`
adds grouped (optionally multi-process) evaluation on top of this class.

Example
-------
>>> from repro import Schema
>>> from repro.reasoner import Reasoner
>>> schema = Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
>>> sigma = schema.dependencies(
...     "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
>>> reasoner = Reasoner(schema, sigma)
>>> reasoner.implies("Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
True
>>> reasoner.implies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])")
True
>>> reasoner.cache_info()   # one LHS computed, the second query hit it
ReasonerCacheInfo(computed=1, hits=1, evictions=0, maxsize=None)
>>> reasoner.cache_info() == (1, 1)   # still a two-tuple underneath
True
"""

from __future__ import annotations

from typing import Iterable

from .core import commands
from .core.closure import ClosureResult
from .core.engine import KernelStats
from .core.session import Session
from .dependencies.dependency import Dependency
from .dependencies.sigma import DependencySet
from .attributes.nested import NestedAttribute
from .schema import Schema

__all__ = ["Reasoner", "ReasonerCacheInfo"]


class ReasonerCacheInfo(tuple):
    """Cache statistics; compares and unpacks as ``(computed, hits)``.

    The historical two-tuple shape is preserved (``computed, hits =
    reasoner.cache_info()`` and ``cache_info() == (1, 1)`` keep
    working); the richer counters ride along as attributes.
    """

    def __new__(cls, computed: int, hits: int, *, evictions: int = 0,
                maxsize: int | None = None, encoding=None,
                kernel: KernelStats | None = None,
                plan=None) -> "ReasonerCacheInfo":
        self = super().__new__(cls, (computed, hits))
        self.evictions = evictions
        self.maxsize = maxsize
        #: The :class:`~repro.attributes.encoding.EncodingCacheInfo`.
        self.encoding = encoding
        #: Accumulated :class:`~repro.core.engine.KernelStats`.
        self.kernel = kernel
        #: The :class:`~repro.core.plan.PlanCacheInfo` of the session's
        #: closure-interval cache (``None`` only for hand-built infos).
        self.plan = plan
        return self

    @property
    def computed(self) -> int:
        return self[0]

    @property
    def hits(self) -> int:
        return self[1]

    def __repr__(self) -> str:
        return (
            f"ReasonerCacheInfo(computed={self[0]}, hits={self[1]}, "
            f"evictions={self.evictions}, maxsize={self.maxsize})"
        )


class Reasoner:
    """Memoised membership queries against a fixed dependency set.

    Parameters
    ----------
    schema:
        The :class:`~repro.schema.Schema` (or anything accepted by its
        constructor — an attribute or its textual form).
    sigma:
        The dependency set ``Σ``, as a :class:`DependencySet` or an
        iterable of dependency texts/objects.
    maxsize:
        Optional cap on the number of cached left-hand sides; least
        recently used results are evicted beyond it.  ``None`` (the
        default) keeps every result.
    engine:
        Optional engine name from the
        :mod:`repro.core.engines` registry; ``None`` uses the process
        default (normally ``"worklist"``).
    session:
        Optional pre-built :class:`~repro.core.session.Session` to wrap
        instead of creating one (its root must match the schema's).
    """

    def __init__(self, schema: Schema | NestedAttribute | str,
                 sigma: DependencySet | Iterable = (), *,
                 maxsize: int | None = None,
                 engine: str | None = None,
                 session: Session | None = None) -> None:
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        if session is not None:
            self.schema.encoding.require_root(session.root)
            self.session = session
        else:
            self.session = Session(
                self.schema.root,
                self.schema._sigma(sigma),
                engine=engine,
                encoding=self.schema.encoding,
                maxsize=maxsize,
                label="reasoner",
            )

    # -- session passthrough -------------------------------------------------

    @property
    def sigma(self) -> DependencySet:
        """The session's current Σ (a snapshot; edit via ``.session``)."""
        return self.session.sigma

    @property
    def maxsize(self) -> int | None:
        return self.session.maxsize

    @property
    def kernel_stats(self) -> KernelStats:
        """The session's accumulated kernel counters."""
        return self.session.kernel_stats

    # -- cache ---------------------------------------------------------------

    def result_for(self, x: NestedAttribute | str) -> ClosureResult:
        """The (cached) Algorithm 5.1 output for left-hand side ``x``."""
        mask = self.schema.encoding.encode(self.schema.attribute(x))
        return self.session.result_for_mask(mask)

    def result_for_mask(self, mask: int) -> ClosureResult:
        """Mask-level :meth:`result_for` (the batch API's entry point)."""
        return self.session.result_for_mask(mask)

    def cache_info(self) -> ReasonerCacheInfo:
        """``(distinct left-hand sides cached, cache hits)`` plus extras.

        The return value equals and unpacks like the historical
        two-tuple; ``.evictions``, ``.maxsize``, ``.encoding`` and
        ``.kernel`` expose the bounded-cache and instrumentation
        counters added with the worklist kernel.  The full incremental
        counters (warm starts, provenance invalidations) live on
        ``self.session.cache_info()``.
        """
        info = self.session.cache_info()
        return ReasonerCacheInfo(
            info.computed, info.hits,
            evictions=info.evictions,
            maxsize=info.maxsize,
            encoding=info.encoding,
            kernel=info.kernel,
            plan=info.plan,
        )

    def cache_clear(self, *, encoding: bool = False) -> None:
        """Drop all cached results and reset the counters.

        This signature is the library-wide cache-clearing contract:
        every ``cache_clear`` takes keyword-only flags, resets exactly
        the state its ``cache_info()`` reports on (entries *and*
        counters), and the ``encoding`` flag cascades one layer down.
        :meth:`BulkReasoner.cache_clear` forwards here verbatim;
        :meth:`BasisEncoding.cache_clear` is the bottom of the chain
        and takes no flags.

        With ``encoding=True`` the underlying
        :class:`~repro.attributes.encoding.BasisEncoding` memo caches
        (complement / pseudo-difference / possession) are cleared too;
        by default they survive, since they are keyed by masks that stay
        valid for the lifetime of the schema.
        """
        self.session.cache_clear(encoding=encoding)

    def describe_stats(self) -> str:
        """Readable counter dump for the CLI/shell ``stats`` surfaces."""
        return self.session.describe_stats()

    # -- queries ---------------------------------------------------------------

    def implies(self, dependency: Dependency | str) -> bool:
        """Decide ``Σ ⊨ σ`` using the per-LHS cache.

        Routed through the typed command layer
        (:class:`repro.core.commands.Implies`) — the same object the
        wire, CLI and shell dispatch — so every surface answers
        membership through one code path.
        """
        command = commands.Implies(
            dependency=self.schema.dependency(dependency))
        return commands.execute(command, self.session).value

    def closure(self, x: NestedAttribute | str) -> NestedAttribute:
        """The attribute-set closure ``X⁺``."""
        return self.session.closure(self.schema.attribute(x))

    def dependency_basis(self, x: NestedAttribute | str
                         ) -> tuple[NestedAttribute, ...]:
        """The dependency basis ``DepB(X)`` (via the command layer)."""
        command = commands.Basis(x=self.schema.attribute(x))
        return commands.execute(command, self.session).value

    def is_superkey(self, x: NestedAttribute | str) -> bool:
        """Whether ``Σ ⊨ X → N``."""
        return self.session.is_superkey(self.schema.attribute(x))

    def implied_mvd_rhs_masks(self, x: NestedAttribute | str) -> frozenset[int]:
        """All DepB member masks — the generators of ``Dep(X)``.

        By Proposition 4.10, the right-hand sides ``Y`` with
        ``X ↠ Y ∈ Σ⁺`` are exactly the joins of subsets of these; the set
        of all such ``Y`` forms a Brouwerian subalgebra of ``Sub(N)``
        (the remark before Definition 4.9).
        """
        return self.session.implied_mvd_rhs_masks(self.schema.attribute(x))

    def __repr__(self) -> str:
        computed, hits = self.cache_info()
        return (
            f"Reasoner(root={self.schema.root}, |Σ|={len(self.sigma)}, "
            f"cached={computed}, hits={hits})"
        )
