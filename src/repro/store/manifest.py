"""The manifest: which snapshot is live and which WAL segments follow it.

``manifest.json`` is the single source of truth for a data directory::

    {"version": 1, "snapshot": "snapshot-000000000000002a.json",
     "segments": ["wal-00000002.log"]}

Recovery reads *only* what the manifest names; every other
``snapshot-*``/``wal-*`` file is an orphan from a crashed compaction
and is swept on startup.  The manifest is replaced atomically
(write-temp + ``os.replace`` + directory fsync), so a crash at any
point leaves either the old consistent view or the new one — never a
half-written pointer.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any

from .wal import StoreError, WalCorruptionError

__all__ = ["MANIFEST_NAME", "Manifest", "load_manifest", "save_manifest",
           "segment_name", "segment_index", "fsync_dir", "atomic_write"]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")


def segment_name(index: int) -> str:
    """``wal-00000007.log`` for index 7."""
    if index < 1:
        raise ValueError(f"segment index must be >= 1, got {index!r}")
    return f"wal-{index:08d}.log"


def segment_index(name: str) -> int:
    """The inverse of :func:`segment_name`."""
    match = _SEGMENT_RE.match(name)
    if match is None:
        raise StoreError(f"not a WAL segment name: {name!r}")
    return int(match.group(1))


@dataclass(frozen=True)
class Manifest:
    """The live snapshot (or ``None``) plus the WAL segment chain."""

    snapshot: str | None
    segments: tuple[str, ...]

    def as_dict(self) -> dict[str, Any]:
        return {"version": MANIFEST_VERSION, "snapshot": self.snapshot,
                "segments": list(self.segments)}


def fsync_dir(path: str) -> None:
    """Make a rename in ``path`` durable (best-effort off POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path: str, data: bytes) -> None:
    """Write-temp + fsync + rename + directory fsync."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(os.path.dirname(path) or ".")


def load_manifest(data_dir: str) -> Manifest | None:
    """The directory's manifest, or ``None`` for a fresh directory.

    A directory that already holds store files but no manifest is not
    fresh — it is a broken installation, and pretending otherwise would
    silently discard its WAL — so that raises.
    """
    path = os.path.join(data_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        strays = [name for name in sorted(os.listdir(data_dir))
                  if name.startswith(("wal-", "snapshot-"))
                  and not name.endswith(".tmp")]
        if strays:
            raise WalCorruptionError(
                f"{data_dir}: store files {strays[:3]} present but "
                f"{MANIFEST_NAME} is missing")
        return None
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise WalCorruptionError(
            f"{path}: unreadable manifest ({error})") from error
    if (not isinstance(data, dict)
            or data.get("version") != MANIFEST_VERSION
            or not isinstance(data.get("segments"), list)
            or not all(isinstance(name, str) for name in data["segments"])
            or not isinstance(data.get("snapshot"), (str, type(None)))):
        raise WalCorruptionError(f"{path}: malformed manifest {data!r}")
    if not data["segments"]:
        raise WalCorruptionError(f"{path}: manifest names no WAL segments")
    for name in data["segments"]:
        segment_index(name)  # validates the shape
    return Manifest(data["snapshot"], tuple(data["segments"]))


def save_manifest(data_dir: str, manifest: Manifest) -> None:
    """Atomically replace the directory's manifest."""
    payload = json.dumps(manifest.as_dict(), indent=2,
                         sort_keys=True).encode("utf-8")
    atomic_write(os.path.join(data_dir, MANIFEST_NAME), payload + b"\n")
