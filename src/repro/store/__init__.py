"""Durable session persistence for the reasoning server.

The subsystem behind ``repro serve --data-dir``: every acknowledged
mutating command (``open``/``add``/``retract``/``close``) is appended
to a length-prefixed, CRC-checksummed NDJSON write-ahead log *before*
the response leaves the server; snapshots serialize the full session
state ``(N, Σ, epoch, generation)``; a manifest pins the live snapshot
and WAL segment chain so compaction can atomically truncate replayed
history; and recovery rebuilds the session manager on boot by loading
the snapshot and replaying the WAL tail through the command registry.

Modules
-------
:mod:`~repro.store.wal`
    Record format, torn-tail vs corruption policy, the fsync policies
    and the :class:`~repro.store.wal.WalWriter`.
:mod:`~repro.store.snapshot`
    Atomic snapshot files and the startup orphan sweep.
:mod:`~repro.store.manifest`
    The ``manifest.json`` source of truth (write-temp + rename).
:mod:`~repro.store.recovery`
    Boot-time replay and the read-only ``repro store inspect`` view.
:mod:`~repro.store.store`
    :class:`~repro.store.store.SessionStore`, the orchestrator the
    server owns.

See docs/PERSISTENCE.md for format, fsync semantics and the crash
matrix the chaos suite enforces.
"""

from .manifest import Manifest, load_manifest, save_manifest
from .recovery import RecoveryReport, apply_record, inspect_store, recover
from .snapshot import load_snapshot, snapshot_name, write_snapshot
from .store import SessionStore
from .wal import (
    FSYNC_POLICIES,
    StoreError,
    WalCorruptionError,
    WalRecord,
    WalWriter,
    decode_record,
    encode_record,
    read_segment,
)

__all__ = [
    "FSYNC_POLICIES",
    "Manifest",
    "RecoveryReport",
    "SessionStore",
    "StoreError",
    "WalCorruptionError",
    "WalRecord",
    "WalWriter",
    "apply_record",
    "decode_record",
    "encode_record",
    "inspect_store",
    "load_manifest",
    "load_snapshot",
    "read_segment",
    "recover",
    "save_manifest",
    "snapshot_name",
    "write_snapshot",
]
