"""Snapshots: the full session state at one WAL sequence number.

A snapshot file serializes every open session — schema text, Σ member
displays (the same strings the wire speaks), engine name, and the
server-side ``(epoch, generation)`` pair — together with ``last_seq``,
the sequence number of the last WAL record it covers::

    {"snapshot_version": 1, "last_seq": 42,
     "sessions": {"pub": {"schema": "...", "dependencies": [...],
                          "engine": "worklist", "epoch": 3,
                          "generation": 7}}}

Recovery rebuilds sessions from the snapshot and replays only WAL
records with ``seq > last_seq``, which makes snapshotting idempotent:
a compaction that crashes after the snapshot rename but before the
manifest update merely leaves an orphan file.

Snapshots are written atomically (write-temp + fsync + rename) and
named by the sequence they cover, so two snapshots never collide and
the newest is self-describing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping

from ..obs import get_observer
from .manifest import atomic_write, fsync_dir
from .wal import WalCorruptionError, apply_crash, crash_action

__all__ = ["SNAPSHOT_VERSION", "snapshot_name", "write_snapshot",
           "load_snapshot", "remove_stale"]

SNAPSHOT_VERSION = 1

_SESSION_KEYS = frozenset({"schema", "dependencies", "engine", "epoch",
                           "generation"})


def snapshot_name(last_seq: int) -> str:
    """``snapshot-<last_seq as 16-digit hex>.json``."""
    if last_seq < 0:
        raise ValueError(f"last_seq must be >= 0, got {last_seq!r}")
    return f"snapshot-{last_seq:016x}.json"


def write_snapshot(data_dir: str, sessions: Mapping[str, Mapping[str, Any]],
                   last_seq: int, *, counters: Any | None = None,
                   faults: Any | None = None) -> str:
    """Write one snapshot atomically; returns its file name.

    The injected ``store.snapshot`` crash points model a death before
    any write (``pre``), mid-way through the temp file (``mid``) and
    after the temp file is complete but before the rename (``post``) —
    in every case the previous snapshot stays the live one.
    """
    name = snapshot_name(last_seq)
    path = os.path.join(data_dir, name)
    payload = json.dumps(
        {"snapshot_version": SNAPSHOT_VERSION, "last_seq": last_seq,
         "sessions": {session: dict(state)
                      for session, state in sessions.items()}},
        indent=2, sort_keys=True, ensure_ascii=False).encode("utf-8")
    action = crash_action(faults, "store.snapshot")
    obs = get_observer()
    if obs.enabled:
        with obs.span("store.snapshot", sessions=len(sessions),
                      last_seq=last_seq) as span:
            _write(path, payload, action)
            span.set(bytes=len(payload))
    else:
        _write(path, payload, action)
    if counters is not None:
        counters["store.snapshots"] += 1
        counters["store.snapshot_bytes"] += len(payload)
    return name


def _write(path: str, payload: bytes, action: Any | None) -> None:
    if action is not None and action.when == "pre":
        apply_crash(action)
    if action is not None and action.when == "mid":
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(payload[:max(1, len(payload) // 2)])
            handle.flush()
        apply_crash(action)
    if action is not None and action.when == "post":
        # complete temp file, death before the rename publishes it
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        apply_crash(action)
    atomic_write(path, payload)


def load_snapshot(path: str) -> dict[str, Any]:
    """Load and validate one snapshot; raises
    :class:`~repro.store.wal.WalCorruptionError` on any malformation
    (a *named* snapshot that does not load is never tolerable — the
    manifest only ever points at fully renamed files)."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise WalCorruptionError(
            f"{path}: unreadable snapshot ({error})") from error
    if (not isinstance(data, dict)
            or data.get("snapshot_version") != SNAPSHOT_VERSION
            or not isinstance(data.get("last_seq"), int)
            or isinstance(data.get("last_seq"), bool)
            or data["last_seq"] < 0
            or not isinstance(data.get("sessions"), dict)):
        raise WalCorruptionError(f"{path}: malformed snapshot")
    for session, state in data["sessions"].items():
        if (not isinstance(session, str) or not isinstance(state, dict)
                or set(state) != _SESSION_KEYS
                or not isinstance(state["schema"], str)
                or not isinstance(state["dependencies"], list)
                or not all(isinstance(d, str)
                           for d in state["dependencies"])
                or not isinstance(state["engine"], str)
                or not isinstance(state["epoch"], int)
                or not isinstance(state["generation"], int)):
            raise WalCorruptionError(
                f"{path}: malformed session entry {session!r}")
    return data


def remove_stale(data_dir: str, keep: frozenset[str]) -> int:
    """Delete ``snapshot-*``/``wal-*``/``*.tmp`` files not in ``keep``.

    Orphans are the debris of crashed compactions (a renamed snapshot
    the manifest never adopted, a rolled segment, temp files); sweeping
    them on startup keeps the directory equal to the manifest's view.
    Returns the number of files removed.
    """
    removed = 0
    for name in sorted(os.listdir(data_dir)):
        if name in keep:
            continue
        if (name.endswith(".tmp") or name.startswith("snapshot-")
                or name.startswith("wal-")):
            try:
                os.unlink(os.path.join(data_dir, name))
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
    if removed:
        fsync_dir(data_dir)
    return removed
