"""Crash recovery: rebuild live sessions from snapshot + WAL tail.

:func:`recover` is the boot path of ``repro serve --data-dir``: load
the manifest, rebuild every snapshotted session (restoring its
``(epoch, generation)`` so a :class:`~repro.serve.resilience.RetryingClient`
sees the same lineage across the restart), then replay WAL records
with ``seq > snapshot.last_seq`` through the command registry —
``add``/``retract`` run via :func:`repro.core.commands.execute`
exactly as they did live (generation bumps included), ``open``/``close``
apply against the session manager.

The manager is duck-typed (``restore``/``open``/``close``/``peek``) so
this module never imports :mod:`repro.serve`; the server passes its
:class:`~repro.serve.server.SessionManager`.

Failure policy: a torn trailing record in the *final* segment is
tolerated — logged, counted (``store.torn_records``) and truncated by
the :class:`~repro.store.store.SessionStore` before new appends — but
any other malformation (checksum failure mid-stream, a non-monotonic
sequence, a record that will not re-execute, a named-but-missing
snapshot) raises :class:`~repro.store.wal.WalCorruptionError` and
refuses startup: better down than silently divergent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from ..core import commands
from .manifest import Manifest, load_manifest
from .snapshot import load_snapshot
from .wal import StoreError, WalCorruptionError, WalRecord, read_segment

__all__ = ["RecoveryReport", "recover", "apply_record", "inspect_store"]


@dataclass
class RecoveryReport:
    """What one recovery pass found and rebuilt."""

    data_dir: str
    #: ``None`` for a fresh (empty) directory.
    manifest: Manifest | None = None
    #: Session names rebuilt from the snapshot.
    restored: tuple[str, ...] = ()
    #: WAL records replayed (after the ``last_seq`` filter).
    replayed: int = 0
    #: Records skipped because the snapshot already covers them.
    skipped: int = 0
    #: Torn trailing records tolerated (0 or 1).
    torn: int = 0
    #: Bytes of the final segment that decode cleanly (truncate target).
    last_segment_valid_bytes: int = 0
    #: Records / bytes already in the final segment (writer seed).
    last_segment_records: int = 0
    #: The next sequence number to mint.
    next_seq: int = 1
    #: Highest restored epoch (the server reserves past it).
    max_epoch: int = 0
    #: Sessions open after recovery.
    sessions: tuple[str, ...] = ()
    #: Per-segment record counts, manifest order.
    segment_records: dict[str, int] = field(default_factory=dict)


def recover(data_dir: str, manager: Any) -> RecoveryReport:
    """Rebuild ``manager`` from ``data_dir``; returns the report.

    ``manager`` must be empty (fresh) — recovery is a boot-time
    operation, not a merge.
    """
    report = RecoveryReport(data_dir)
    report.manifest = load_manifest(data_dir)
    if report.manifest is None:
        return report

    last_seq = 0
    if report.manifest.snapshot is not None:
        snapshot = load_snapshot(os.path.join(data_dir,
                                              report.manifest.snapshot))
        last_seq = snapshot["last_seq"]
        restored = []
        for name in sorted(snapshot["sessions"]):
            state = snapshot["sessions"][name]
            try:
                managed = manager.restore(
                    name, state["schema"], state["dependencies"],
                    engine=state["engine"], epoch=state["epoch"],
                    generation=state["generation"])
            except Exception as error:
                raise WalCorruptionError(
                    f"{data_dir}: snapshot session {name!r} does not "
                    f"rebuild ({error})") from error
            restored.append(name)
            report.max_epoch = max(report.max_epoch, managed.epoch)
        report.restored = tuple(restored)

    highest = last_seq
    final = report.manifest.segments[-1]
    for segment in report.manifest.segments:
        path = os.path.join(data_dir, segment)
        if not os.path.exists(path):
            raise WalCorruptionError(
                f"{data_dir}: manifest names missing segment {segment!r}")
        records, valid_bytes, tail = read_segment(path)
        if tail and segment != final:
            raise WalCorruptionError(
                f"{data_dir}: segment {segment!r} has a torn tail but is "
                f"not the final segment")
        if segment == final:
            report.last_segment_valid_bytes = valid_bytes
            report.last_segment_records = len(records)
            report.torn = 1 if tail else 0
        for record in records:
            if record.seq <= highest:
                if record.seq <= last_seq:
                    report.skipped += 1
                    continue
                raise WalCorruptionError(
                    f"{data_dir}: {segment}: sequence {record.seq} is not "
                    f"monotonic (already at {highest})")
            apply_record(manager, record, origin=data_dir)
            highest = record.seq
            report.replayed += 1

    report.next_seq = highest + 1
    report.sessions = tuple(manager.names())
    return report


def apply_record(manager: Any, record: WalRecord, *,
                 origin: str = "wal") -> None:
    """Re-apply one acknowledged mutation; failure means divergence.

    The single replay semantics shared by crash recovery and streaming
    replication (:mod:`repro.replicate`): ``open``/``close`` run against
    the session manager, everything else re-executes through the
    command registry with the same generation bump the live path took.
    ``origin`` only labels the error (a data dir, or the primary's
    address on a follower).
    """
    try:
        command = commands.from_wire(record.op, record.params)
    except (KeyError, ValueError) as error:
        raise WalCorruptionError(
            f"{origin}: WAL record seq={record.seq} is not a wire "
            f"command ({error})") from error
    try:
        if record.op == "open":
            manager.open(command.name, command.schema,
                         list(command.dependencies), engine=command.engine,
                         replace=command.replace)
        elif record.op == "close":
            manager.close(command.session)
        else:
            managed = manager.peek(command.session)
            outcome = commands.execute(command, managed.session)
            if outcome.mutated:
                managed.generation += 1
    except Exception as error:
        raise WalCorruptionError(
            f"{origin}: WAL record seq={record.seq} op={record.op!r} "
            f"does not re-execute ({error})") from error


def inspect_store(data_dir: str) -> dict[str, Any]:
    """A read-only summary of a data directory (``repro store inspect``).

    Never mutates anything: the torn tail, if any, is reported but not
    truncated.
    """
    if not os.path.isdir(data_dir):
        raise StoreError(f"not a directory: {data_dir!r}")
    manifest = load_manifest(data_dir)
    if manifest is None:
        return {"data_dir": data_dir, "initialized": False}
    info: dict[str, Any] = {
        "data_dir": data_dir,
        "initialized": True,
        "snapshot": None,
        "segments": [],
        "torn_tail_bytes": 0,
    }
    last_seq = 0
    if manifest.snapshot is not None:
        snapshot = load_snapshot(os.path.join(data_dir, manifest.snapshot))
        last_seq = snapshot["last_seq"]
        info["snapshot"] = {
            "name": manifest.snapshot,
            "last_seq": last_seq,
            "sessions": {
                name: {"sigma": len(state["dependencies"]),
                       "engine": state["engine"],
                       "epoch": state["epoch"],
                       "generation": state["generation"]}
                for name, state in sorted(snapshot["sessions"].items())},
        }
    highest = last_seq
    final = manifest.segments[-1]
    for segment in manifest.segments:
        records, valid_bytes, tail = read_segment(
            os.path.join(data_dir, segment))
        if tail and segment != final:
            raise WalCorruptionError(
                f"{data_dir}: segment {segment!r} has a torn tail but is "
                f"not the final segment")
        highest = max([highest] + [record.seq for record in records])
        info["segments"].append({"name": segment, "records": len(records),
                                 "bytes": valid_bytes})
        if segment == final:
            info["torn_tail_bytes"] = len(tail)
    info["last_seq"] = highest
    info["next_seq"] = highest + 1
    return info
