"""The write-ahead log: length-prefixed, CRC-checksummed NDJSON records.

Every mutating command the server acknowledges is first appended here
as one line::

    llllllll cccccccc {"op":"add","params":{...},"seq":7}\\n

where ``llllllll`` is the payload length and ``cccccccc`` its CRC-32,
both as fixed-width lowercase hex.  The payload is the command's wire
encoding (the PR 8 registry's ``op``/``params``) plus a global,
strictly monotonic ``seq`` — recovery replays records with
``seq > snapshot.last_seq`` through :func:`repro.core.commands.execute`,
so a snapshot taken at any point makes the replay idempotent.

Torn tails vs corruption
------------------------
A crash mid-append leaves a *torn tail*: a partial record at the very
end of the final segment, never followed by more data (appends are a
single ``write`` of one line).  :func:`read_segment` tolerates exactly
that shape — the partial record is reported and truncated away before
new appends.  An undecodable record *followed by further data* can
only mean real corruption (bit rot, concurrent writers, a truncated
middle) and raises :class:`WalCorruptionError`: recovery refuses to
start rather than silently drop acknowledged mutations.

Durability levels (``fsync`` policy)
------------------------------------
``always``
    ``fsync`` after every append — survives power loss at ~one disk
    flush per mutation.
``interval``
    ``flush`` to the OS after every append (survives process death,
    including SIGKILL), ``fsync`` at most once per
    ``fsync_interval_s`` — the default; the edit-path overhead target.
``off``
    ``flush`` only; no ``fsync`` ever.  Benchmarks and tests.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from typing import Any, Mapping

from ..exceptions import ReproError
from ..obs import get_observer

__all__ = ["FSYNC_POLICIES", "StoreError", "WalCorruptionError",
           "WalRecord", "WalWriter", "encode_record", "decode_record",
           "read_segment", "crash_action", "apply_crash"]

#: The configurable durability levels (see module docstring).
FSYNC_POLICIES = ("always", "interval", "off")

#: Exit status used by injected ``crash`` faults — ``os._exit`` with
#: the conventional SIGKILL code, skipping every buffer flush and
#: ``atexit`` hook a graceful exit would run.
CRASH_EXIT_STATUS = 137

#: ``len("llllllll cccccccc ")`` — the fixed record header width.
_HEADER = 18


class StoreError(ReproError):
    """Any failure of the durable store (I/O, format, recovery)."""


class WalCorruptionError(StoreError):
    """Undecodable data that cannot be a torn tail: refuse startup."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL entry: a wire command plus its sequence number."""

    seq: int
    op: str
    params: dict[str, Any]


#: ``json.dumps`` with keyword arguments builds a fresh ``JSONEncoder``
#: per call; the append hot path reuses one canonical encoder instead.
_encode_json = json.JSONEncoder(separators=(",", ":"), sort_keys=True,
                                ensure_ascii=False).encode


def encode_record(seq: int, op: str, params: Mapping[str, Any]) -> bytes:
    """One record as bytes (header + canonical JSON payload + newline)."""
    if type(params) is not dict:
        params = dict(params)
    payload = _encode_json({"op": op, "params": params,
                            "seq": seq}).encode("utf-8")
    header = f"{len(payload):08x} {zlib.crc32(payload):08x} "
    return header.encode("ascii") + payload + b"\n"


def decode_record(line: bytes) -> WalRecord:
    """Decode one record line (without its newline); raises
    :class:`WalCorruptionError` on any mismatch."""
    if len(line) < _HEADER:
        raise WalCorruptionError(f"record shorter than its header "
                                 f"({len(line)} bytes)")
    try:
        length = int(line[0:8], 16)
        crc = int(line[9:17], 16)
    except ValueError as error:
        raise WalCorruptionError(f"unparsable record header "
                                 f"{line[:_HEADER]!r}") from error
    payload = line[_HEADER:]
    if len(payload) != length:
        raise WalCorruptionError(f"record length mismatch: header says "
                                 f"{length}, payload is {len(payload)} bytes")
    if zlib.crc32(payload) != crc:
        raise WalCorruptionError(f"record checksum mismatch "
                                 f"(expected {crc:08x})")
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WalCorruptionError(
            f"record payload is not valid JSON: {error}") from error
    if (not isinstance(data, dict)
            or not isinstance(data.get("seq"), int)
            or isinstance(data.get("seq"), bool)
            or not isinstance(data.get("op"), str)
            or not isinstance(data.get("params"), dict)):
        raise WalCorruptionError(f"record payload misses seq/op/params: "
                                 f"{data!r}")
    return WalRecord(data["seq"], data["op"], data["params"])


def read_segment(path: str) -> tuple[list[WalRecord], int, bytes]:
    """Read one segment; returns ``(records, valid_bytes, torn_tail)``.

    ``valid_bytes`` is the offset of the last cleanly decoded record
    boundary and ``torn_tail`` the undecodable bytes after it (empty
    for a clean segment).  A tail is only *torn* — and therefore
    tolerable — when nothing follows it; an undecodable record with
    further data after its line raises :class:`WalCorruptionError`.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: list[WalRecord] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        end = len(data) if newline < 0 else newline
        try:
            record = decode_record(data[offset:end])
        except WalCorruptionError as error:
            rest = data[end + 1:] if newline >= 0 else b""
            if rest.strip():
                raise WalCorruptionError(
                    f"{path}: corrupt record at byte {offset} with "
                    f"{len(rest)} bytes after it ({error})") from error
            return records, offset, data[offset:]
        if newline < 0:
            # a full record missing only its newline is still a torn
            # write (the terminator never hit the disk)
            return records, offset, data[offset:]
        records.append(record)
        offset = newline + 1
    return records, offset, b""


# --------------------------------------------------------------------------
# Injected crash faults (tests only; see repro.serve.faults)

def crash_action(faults: Any, point: str) -> Any | None:
    """Consult a fault injector for a ``crash`` decision at ``point``.

    ``faults`` is duck-typed (anything with ``decide(op)``) so the
    store never imports :mod:`repro.serve` — the server injects its own
    :class:`~repro.serve.faults.FaultInjector`.  Non-crash decisions at
    store points are ignored.
    """
    if faults is None:
        return None
    action = faults.decide(point)
    if action is not None and getattr(action, "kind", None) == "crash":
        return action
    return None


def apply_crash(action: Any) -> None:
    """Die the way SIGKILL would: no flush, no atexit, no goodbye."""
    os._exit(CRASH_EXIT_STATUS)


# --------------------------------------------------------------------------
# The writer

class WalWriter:
    """Appends records to one segment file under an fsync policy.

    ``start_records`` / ``start_bytes`` seed the segment tallies when
    the writer re-opens a segment that already has content (recovery).
    """

    def __init__(self, path: str, *, fsync: str = "interval",
                 fsync_interval_s: float = 0.05,
                 start_records: int = 0, start_bytes: int = 0,
                 counters: Any | None = None,
                 faults: Any | None = None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of "
                             f"{FSYNC_POLICIES}, got {fsync!r}")
        self.path = path
        self.policy = fsync
        self.fsync_interval_s = fsync_interval_s
        self.records = start_records
        self.bytes = start_bytes
        self._counters = counters
        self._faults = faults
        self._handle = open(path, "ab")
        self._last_fsync = time.monotonic()

    def append(self, seq: int, op: str, params: Mapping[str, Any]) -> int:
        """Write one record and make it durable per policy; returns its
        size in bytes.  The record is on its way to the OS before this
        returns — the caller may acknowledge the mutation."""
        data = encode_record(seq, op, params)
        action = crash_action(self._faults, "store.append")
        obs = get_observer()
        if obs.enabled:
            with obs.span("store.append", seq=seq, op=op) as span:
                self._write(data, action)
                span.set(bytes=len(data))
        else:
            self._write(data, action)
        self.records += 1
        self.bytes += len(data)
        if self._counters is not None:
            self._counters["store.appends"] += 1
            self._counters["store.append_bytes"] += len(data)
        self._maybe_fsync()
        return len(data)

    def _write(self, data: bytes, action: Any | None) -> None:
        if action is not None and action.when == "pre":
            apply_crash(action)
        if action is not None and action.when == "mid":
            # a torn write: half the record reaches the file, then death
            self._handle.write(data[:max(1, len(data) // 2)])
            self._handle.flush()
            apply_crash(action)
        self._handle.write(data)
        self._handle.flush()
        if action is not None and action.when == "post":
            # written and flushed (survives SIGKILL) but never fsynced
            # and never acknowledged — recovery may legitimately keep it
            apply_crash(action)

    def _maybe_fsync(self) -> None:
        if self.policy == "always":
            self.sync()
        elif (self.policy == "interval"
              and time.monotonic() - self._last_fsync
              >= self.fsync_interval_s):
            self.sync()

    def sync(self) -> None:
        """``fsync`` the segment now (also used at snapshot boundaries)."""
        obs = get_observer()
        if obs.enabled:
            with obs.span("store.fsync", policy=self.policy):
                os.fsync(self._handle.fileno())
        else:
            os.fsync(self._handle.fileno())
        self._last_fsync = time.monotonic()
        if self._counters is not None:
            self._counters["store.fsyncs"] += 1

    def close(self) -> None:
        """Flush (and, unless ``off``, fsync) then close the segment."""
        if self._handle.closed:
            return
        self._handle.flush()
        if self.policy != "off":
            os.fsync(self._handle.fileno())
        self._handle.close()
