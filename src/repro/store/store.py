""":class:`SessionStore` — the orchestrator the server owns.

One instance per data directory.  ``start`` recovers into the server's
session manager (repairing a torn tail and sweeping compaction
orphans), then the server calls :meth:`append` for every mutation it
acknowledges and :meth:`maybe_compact` afterwards; :meth:`snapshot`
and :meth:`compact` are also driven directly by ``repro store compact``
and by tests.

Compaction = snapshot + roll.  A snapshot covering every appended
record is written, a fresh empty segment is created, the manifest
atomically adopts ``(snapshot, [fresh segment])``, and only then are
the replayed segments and the previous snapshot deleted.  A crash
between any two steps leaves a consistent manifest view; startup's
orphan sweep collects the debris.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

from ..obs import get_observer
from .manifest import (
    Manifest,
    load_manifest,
    save_manifest,
    segment_index,
    segment_name,
)
from .recovery import RecoveryReport, recover
from .snapshot import remove_stale, write_snapshot
from .wal import (
    FSYNC_POLICIES,
    StoreError,
    WalRecord,
    WalWriter,
    apply_crash,
    crash_action,
    read_segment,
)

__all__ = ["SessionStore"]


class SessionStore:
    """Durable per-session state for one server (one data directory)."""

    def __init__(self, data_dir: str, *, fsync: str = "interval",
                 fsync_interval_s: float = 0.05,
                 compact_records: int = 4096,
                 compact_bytes: int = 1 << 22,
                 counters: Any | None = None,
                 faults: Any | None = None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of "
                             f"{FSYNC_POLICIES}, got {fsync!r}")
        if compact_records < 1 or compact_bytes < 1:
            raise ValueError("compaction thresholds must be >= 1")
        self.data_dir = data_dir
        self.fsync = fsync
        self.fsync_interval_s = fsync_interval_s
        self.compact_records = compact_records
        self.compact_bytes = compact_bytes
        self.counters = counters
        self.faults = faults
        self._manifest: Manifest | None = None
        self._writer: WalWriter | None = None
        self._next_seq = 1
        self._report: RecoveryReport | None = None
        self._compactions = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self, manager: Any) -> RecoveryReport:
        """Recover ``manager`` from disk and open the WAL for appends."""
        if self._writer is not None:
            raise RuntimeError("store is already started")
        os.makedirs(self.data_dir, exist_ok=True)
        obs = get_observer()
        if obs.enabled:
            with obs.span("store.recover", data_dir=self.data_dir) as span:
                report = recover(self.data_dir, manager)
                span.set(sessions=len(report.sessions),
                         replayed=report.replayed, torn=report.torn)
        else:
            report = recover(self.data_dir, manager)
        if report.manifest is None:
            # fresh directory: one empty segment, no snapshot
            first = segment_name(1)
            open(os.path.join(self.data_dir, first), "ab").close()
            self._manifest = Manifest(None, (first,))
            save_manifest(self.data_dir, self._manifest)
            report.manifest = self._manifest
        else:
            self._manifest = report.manifest
            if report.torn:
                # repair: drop the torn tail so new appends start at a
                # clean record boundary
                last = os.path.join(self.data_dir,
                                    self._manifest.segments[-1])
                with open(last, "ab") as handle:
                    handle.truncate(report.last_segment_valid_bytes)
                if self.counters is not None:
                    self.counters["store.torn_records"] += report.torn
            keep = (frozenset(self._manifest.segments)
                    | frozenset({self._manifest.snapshot} - {None}))
            orphans = remove_stale(self.data_dir, keep)
            if orphans and self.counters is not None:
                self.counters["store.orphans_removed"] += orphans
        self._next_seq = report.next_seq
        last = self._manifest.segments[-1]
        self._writer = WalWriter(
            os.path.join(self.data_dir, last), fsync=self.fsync,
            fsync_interval_s=self.fsync_interval_s,
            start_records=report.last_segment_records,
            start_bytes=report.last_segment_valid_bytes,
            counters=self.counters, faults=self.faults)
        if self.counters is not None:
            self.counters["store.recoveries"] += 1
            self.counters["store.replayed"] += report.replayed
        self._report = report
        return report

    def close(self) -> None:
        """Flush and close the WAL (fsync unless policy is ``off``)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # -- the hot path ------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The sequence number of the newest appended record."""
        return self._next_seq - 1

    def append(self, op: str, params: Mapping[str, Any]) -> int:
        """Log one acknowledged mutation; returns its sequence number."""
        if self._writer is None:
            raise RuntimeError("store is not started")
        seq = self._next_seq
        self._writer.append(seq, op, params)
        self._next_seq = seq + 1
        return seq

    def append_record(self, seq: int, op: str,
                      params: Mapping[str, Any]) -> int:
        """Log one *already sequenced* record (a follower applying its
        primary's stream keeps the primary's numbering).  The sequence
        must be exactly the next one — a gap would acknowledge records
        this store never saw."""
        if self._writer is None:
            raise RuntimeError("store is not started")
        if seq != self._next_seq:
            raise StoreError(f"replicated record seq={seq} does not follow "
                             f"local last_seq={self.last_seq}")
        self._writer.append(seq, op, params)
        self._next_seq = seq + 1
        return seq

    # -- replication tailing -----------------------------------------------

    def records_since(self, from_seq: int,
                      limit: int | None = None) -> list[WalRecord] | None:
        """Acknowledged records with ``seq > from_seq``, oldest first.

        Reads the manifest's segments back off disk (every acknowledged
        append is flushed to the OS before the mutation is answered, so
        the files are current).  Returns ``None`` when the tail cannot
        be served contiguously — ``from_seq`` predates the retained
        history (compaction folded it into the snapshot) or lies beyond
        this store's ``last_seq`` — in which case the subscriber needs a
        snapshot reset instead of a tail.
        """
        if self._manifest is None:
            raise RuntimeError("store is not started")
        if from_seq > self.last_seq:
            return None
        if from_seq == self.last_seq:
            return []
        out: list[WalRecord] = []
        final = self._manifest.segments[-1]
        for segment in self._manifest.segments:
            records, _, tail = read_segment(
                os.path.join(self.data_dir, segment))
            if tail and segment != final:
                raise StoreError(f"{self.data_dir}: segment {segment!r} has "
                                 f"a torn tail but is not the final segment")
            for record in records:
                if record.seq > from_seq:
                    out.append(record)
                    if limit is not None and len(out) >= limit:
                        return self._contiguous(out, from_seq)
        return self._contiguous(out, from_seq)

    def _contiguous(self, records: list[WalRecord],
                    from_seq: int) -> list[WalRecord] | None:
        """A tail is only servable when it starts right after the fence.

        An *empty* scan is just as unservable when ``from_seq`` lies
        below ``last_seq``: the gap lives in the snapshot (compaction
        folded those records away), so the subscriber needs a reset.
        """
        if not records:
            return None if from_seq < self.last_seq else []
        if records[0].seq != from_seq + 1:
            return None
        return records

    def reset_to(self, sessions: Mapping[str, Mapping[str, Any]],
                 last_seq: int) -> dict[str, Any]:
        """Adopt a bootstrap snapshot at the primary's ``last_seq``.

        A cold (or lagging-past-history) follower lands here: its local
        log is superseded wholesale by the shipped session snapshot, so
        the store re-bases — snapshot + fresh segment + manifest adopt,
        exactly a compaction, just at an externally supplied sequence.
        """
        if last_seq < 0:
            raise StoreError(f"cannot reset to negative seq {last_seq}")
        self._next_seq = last_seq + 1
        return self.compact(sessions)

    def should_compact(self) -> bool:
        """Whether the live segment crossed a compaction threshold."""
        writer = self._writer
        return (writer is not None
                and (writer.records >= self.compact_records
                     or writer.bytes >= self.compact_bytes))

    def maybe_compact(self, sessions: Mapping[str, Mapping[str, Any]]) -> bool:
        """Compact when a threshold is crossed; returns whether it ran."""
        if not self.should_compact():
            return False
        self.compact(sessions)
        return True

    # -- snapshot + compaction ---------------------------------------------

    def snapshot(self, sessions: Mapping[str, Mapping[str, Any]]) -> str:
        """Write a snapshot of ``sessions`` covering every appended
        record and make it the manifest's live one; segments are kept
        (recovery skips the covered records).  Returns the file name."""
        if self._writer is None or self._manifest is None:
            raise RuntimeError("store is not started")
        self._writer.sync()
        previous = self._manifest.snapshot
        name = write_snapshot(self.data_dir, sessions, self.last_seq,
                              counters=self.counters, faults=self.faults)
        self._manifest = Manifest(name, self._manifest.segments)
        save_manifest(self.data_dir, self._manifest)
        if previous is not None and previous != name:
            self._unlink(previous)
        return name

    def compact(self, sessions: Mapping[str, Mapping[str, Any]]) -> dict[str, Any]:
        """Snapshot, roll a fresh segment, drop the replayed ones.

        The injected ``store.compact`` crash points model a death
        before anything happens (``pre``), after the snapshot is
        published but before the manifest adopts it (``mid``) and after
        the manifest update but before the old files are deleted
        (``post``) — recovery is correct at every one of them.
        """
        if self._writer is None or self._manifest is None:
            raise RuntimeError("store is not started")
        old = self._manifest
        action = crash_action(self.faults, "store.compact")
        obs = get_observer()
        if obs.enabled:
            with obs.span("store.compact", records=self._writer.records,
                          bytes=self._writer.bytes) as span:
                removed = self._compact(sessions, old, action)
                span.set(segments_removed=removed)
        else:
            removed = self._compact(sessions, old, action)
        self._compactions += 1
        if self.counters is not None:
            self.counters["store.compactions"] += 1
        return {"snapshot": self._manifest.snapshot,
                "last_seq": self.last_seq, "segments_removed": removed}

    def _compact(self, sessions: Mapping[str, Mapping[str, Any]],
                 old: Manifest, action: Any | None) -> int:
        if action is not None and action.when == "pre":
            apply_crash(action)
        self._writer.sync()
        snapshot = write_snapshot(self.data_dir, sessions, self.last_seq,
                                  counters=self.counters, faults=self.faults)
        fresh = segment_name(segment_index(old.segments[-1]) + 1)
        open(os.path.join(self.data_dir, fresh), "ab").close()
        if action is not None and action.when == "mid":
            # snapshot renamed, manifest not yet updated: on recovery
            # the old manifest view still replays everything
            apply_crash(action)
        self._manifest = Manifest(snapshot, (fresh,))
        save_manifest(self.data_dir, self._manifest)
        if action is not None and action.when == "post":
            # manifest updated, old files linger as orphans
            apply_crash(action)
        removed = 0
        for name in old.segments:
            self._unlink(name)
            removed += 1
        if old.snapshot is not None and old.snapshot != snapshot:
            self._unlink(old.snapshot)
        self._writer.close()
        self._writer = WalWriter(
            os.path.join(self.data_dir, fresh), fsync=self.fsync,
            fsync_interval_s=self.fsync_interval_s,
            counters=self.counters, faults=self.faults)
        return removed

    def _unlink(self, name: str) -> None:
        try:
            os.unlink(os.path.join(self.data_dir, name))
        except OSError:  # pragma: no cover - already gone
            pass

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``health``/``metrics`` payload for this store."""
        stats: dict[str, Any] = {
            "data_dir": self.data_dir,
            "fsync": self.fsync,
            "last_seq": self.last_seq,
            "compactions": self._compactions,
        }
        if self._writer is not None:
            stats["segment"] = os.path.basename(self._writer.path)
            stats["segment_records"] = self._writer.records
            stats["segment_bytes"] = self._writer.bytes
        if self._report is not None:
            stats["recovered_sessions"] = len(self._report.restored)
            stats["replayed_records"] = self._report.replayed
            stats["torn_records"] = self._report.torn
        return stats
