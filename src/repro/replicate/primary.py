"""Primary-side replication bookkeeping.

The primary's wire surface (``replicate.subscribe`` / ``replicate.ack``)
lives in :class:`~repro.serve.server.ReasoningServer`; this module holds
the pure pieces under it — the follower lag table the ``replicate.status``
op and the health payload report, and the batch encoding that turns
:class:`~repro.store.wal.WalRecord` tails into wire JSON.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable

from ..store.wal import WalRecord

__all__ = ["FollowerTable", "encode_batch", "decode_batch"]


def encode_batch(records: Iterable[WalRecord]) -> list[dict[str, Any]]:
    """WAL records as the ``replicate.subscribe`` wire payload."""
    return [{"seq": record.seq, "op": record.op, "params": record.params}
            for record in records]


def decode_batch(payload: Any) -> list[WalRecord]:
    """The inverse of :func:`encode_batch`, with structural validation.

    Followers apply whatever the primary shipped; a malformed batch is
    a protocol violation, not a torn tail, so it raises ``ValueError``
    (the replicator treats it as a broken stream rather than guessing).
    """
    if not isinstance(payload, list):
        raise ValueError(f"replication batch is not a list: {payload!r}")
    records = []
    for entry in payload:
        if (not isinstance(entry, dict)
                or not isinstance(entry.get("seq"), int)
                or isinstance(entry.get("seq"), bool)
                or not isinstance(entry.get("op"), str)
                or not isinstance(entry.get("params"), dict)):
            raise ValueError(f"malformed replication record: {entry!r}")
        records.append(WalRecord(entry["seq"], entry["op"], entry["params"]))
    return records


class FollowerTable:
    """Who is subscribed and how far behind they are.

    Purely advisory: the primary never blocks on followers (replication
    is asynchronous — an acknowledged mutation is durable locally and
    ships on the next poll).  The table feeds ``replicate.status``,
    ``health`` and the lag numbers the scale-out benchmark records.
    """

    def __init__(self, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._rows: dict[str, dict[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def _row(self, follower: str) -> dict[str, Any]:
        return self._rows.setdefault(
            follower, {"acked_seq": 0, "from_seq": 0,
                       "acked_at": None, "polled_at": None})

    def seen(self, follower: str | None, from_seq: int) -> None:
        """A subscribe poll arrived (anonymous followers are not tracked)."""
        if not follower:
            return
        row = self._row(follower)
        row["from_seq"] = from_seq
        row["polled_at"] = self._clock()

    def ack(self, follower: str, seq: int) -> int:
        """Record an applied position; returns the follower's high mark."""
        row = self._row(follower)
        row["acked_seq"] = max(row["acked_seq"], seq)
        row["acked_at"] = self._clock()
        return row["acked_seq"]

    def stats(self, last_seq: int) -> dict[str, dict[str, Any]]:
        """Per-follower ``{acked_seq, lag, age_s}`` for status payloads."""
        now = self._clock()
        out: dict[str, dict[str, Any]] = {}
        for name in sorted(self._rows):
            row = self._rows[name]
            out[name] = {
                "acked_seq": row["acked_seq"],
                "lag": max(0, last_seq - row["acked_seq"]),
                "age_s": (None if row["acked_at"] is None
                          else round(now - row["acked_at"], 3)),
            }
        return out

    def min_acked(self, default: int = 0) -> int:
        """The slowest follower's position (compaction horizon hint)."""
        if not self._rows:
            return default
        return min(row["acked_seq"] for row in self._rows.values())
