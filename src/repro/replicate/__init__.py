"""Read scale-out: WAL-shipping replication for the reasoning server.

One primary serializes every Σ-mutation through its write-ahead log
(:mod:`repro.store`); any number of followers tail that log over the
wire (``replicate.subscribe`` / ``replicate.ack``), re-execute each
record through the command registry exactly like crash recovery, and
answer read-only commands locally — rejecting mutations with the typed
``not_primary`` error.  Because the implication workload the paper's
Algorithm 5.1 serves is read-dominated (implies/closure/basis against a
slowly edited Σ), this scales reads linearly with follower count while
keeping a single, totally ordered edit history.

Pieces
------
:class:`~repro.replicate.follower.Replicator`
    The follower-side streaming loop (runs inside a follower server).
:class:`~repro.replicate.primary.FollowerTable`
    Primary-side lag bookkeeping behind ``replicate.status``.
:class:`~repro.replicate.router.RoutedClient`
    Client-side routing: reads fan across replicas with ``min_seq``
    read fences (bounded staleness, read-your-writes), mutations go to
    the primary, failures fail over.

See docs/REPLICATION.md for topology, staleness and failover semantics.
"""

from .follower import Replicator
from .primary import FollowerTable, decode_batch, encode_batch
from .router import RoutedClient, parse_address

__all__ = [
    "FollowerTable",
    "Replicator",
    "RoutedClient",
    "decode_batch",
    "encode_batch",
    "parse_address",
]
