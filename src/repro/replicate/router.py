"""Client-side read scale-out: route reads to replicas, writes home.

:class:`RoutedClient` wraps one :class:`~repro.serve.resilience.RetryingClient`
per node — the primary plus any number of replicas — behind the same
per-op surface every other client speaks (``_OpsMixin``).  Routing is
derived from the command registry, never hand-kept: an op whose spec is
``read_only`` **and** session-scoped fans out round-robin across the
replicas; everything else (mutations, admin ops) goes to the primary.

Bounded staleness
-----------------
Every mutation acknowledged by a store-backed primary carries the WAL
``seq`` it was persisted at.  The router remembers the highest one and
sends it as a ``min_seq`` fence with each replica read: a replica at or
past the fence answers immediately, one behind it waits briefly for the
tail to catch up and otherwise answers with the typed
``replica_behind`` — at which point the router *redirects* (next
replica, finally the primary, which is never stale).  Read-your-writes
therefore holds across the whole fleet while unfenced readers enjoy
raw replica throughput.

Failover
--------
A replica whose circuit opens (:class:`CircuitOpenError`), drops the
connection, or answers ``not_primary``/``unknown_session`` (a lagging
replica may not have a freshly opened session yet) is skipped for that
request; the primary is the read path of last resort.  Failures are
per-node: one replica's open circuit never blocks the others.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Any, Callable, Sequence

from ..core import commands
from ..obs import get_observer
from ..serve.client import ServerError, _OpsMixin
from ..serve.protocol import ErrorCode
from ..serve.resilience import CircuitOpenError, RetryingClient

__all__ = ["RoutedClient", "parse_address"]

#: Typed codes that mean "ask a different node", not "give up".
_REDIRECT_CODES = frozenset({ErrorCode.REPLICA_BEHIND,
                             ErrorCode.NOT_PRIMARY,
                             ErrorCode.UNKNOWN_SESSION})


def parse_address(text: str) -> tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)`` (host defaults to loopback)."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host or "127.0.0.1", int(port)


class RoutedClient(_OpsMixin):
    """Fan read-only commands across replicas; send the rest home.

    ``primary`` and each entry of ``replicas`` are ``(host, port)``
    pairs (or ``"host:port"`` strings).  ``connect`` is the per-node
    client factory — :meth:`RetryingClient.connect` by default, injectable
    for tests.  ``fence=False`` disables read-your-writes fencing (pure
    throughput mode; reads may be arbitrarily stale).
    """

    def __init__(self, primary: Any, replicas: Sequence[Any] = (), *,
                 fence: bool = True,
                 connect: Callable[..., Any] | None = None,
                 **client_kwargs: Any) -> None:
        factory = connect if connect is not None else RetryingClient.connect
        self._nodes: list[Any] = []
        self._addresses: list[tuple[str, int]] = []
        for address in [primary, *replicas]:
            host, port = (parse_address(address)
                          if isinstance(address, str) else address)
            self._addresses.append((host, port))
            self._nodes.append(factory(host, port, **client_kwargs))
        self._rr = 0
        #: The read-your-writes fence: highest acknowledged WAL seq.
        self.min_seq = 0
        self.fence = fence
        self.counters: TallyCounter = TallyCounter()

    # -- lifecycle -----------------------------------------------------------

    @property
    def primary(self) -> Any:
        return self._nodes[0]

    @property
    def replicas(self) -> tuple[Any, ...]:
        return tuple(self._nodes[1:])

    @property
    def addresses(self) -> tuple[tuple[str, int], ...]:
        return tuple(self._addresses)

    def __enter__(self) -> "RoutedClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        for node in self._nodes:
            try:
                node.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass

    # -- routing -------------------------------------------------------------

    def _tick(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        get_observer().add(name, amount)

    @staticmethod
    def _fans_out(op: str) -> bool:
        cls = commands.REGISTRY.get(op)
        return (cls is not None and cls.spec.wire and cls.spec.read_only
                and cls.spec.scope == "session")

    def _read_plan(self) -> list[Any]:
        """Replicas starting at the round-robin cursor, primary last."""
        replicas = self._nodes[1:]
        if not replicas:
            return [self._nodes[0]]
        self._rr = (self._rr + 1) % len(replicas)
        rotated = replicas[self._rr:] + replicas[:self._rr]
        return rotated + [self._nodes[0]]

    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request along the derived route."""
        if not self._fans_out(op) or len(self._nodes) == 1:
            result = self._nodes[0].request(op, **params)
            seq = result.get("seq")
            if self.fence and isinstance(seq, int) and not isinstance(seq, bool):
                self.min_seq = max(self.min_seq, seq)
            return result
        plan = self._read_plan()
        if self.fence and self.min_seq > 0:
            params = {**params, "min_seq": self.min_seq}
        last_error: Exception | None = None
        for index, node in enumerate(plan):
            final = index == len(plan) - 1
            if final:
                # the primary never carries a fence — it defines it
                params.pop("min_seq", None)
            try:
                result = node.request(op, **params)
            except CircuitOpenError as error:
                self._tick("routed.failover")
                last_error = error
                continue
            except (ConnectionError, TimeoutError, OSError) as error:
                self._tick("routed.failover")
                last_error = error
                continue
            except ServerError as error:
                if error.code in _REDIRECT_CODES and not final:
                    self._tick("routed.redirects")
                    last_error = error
                    continue
                raise
            self._tick("routed.primary_reads" if final
                       else "routed.replica_reads")
            return result
        raise last_error  # type: ignore[misc]  # plan is never empty

    _request = request

    @staticmethod
    def _map(result, extract):
        return extract(result)
