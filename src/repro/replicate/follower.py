"""The follower side: tail the primary's WAL and re-execute it.

A :class:`Replicator` runs inside a follower server's event loop.  It
long-polls ``replicate.subscribe`` on the primary, appends each shipped
record to the follower's *own* store (same bytes, same sequence
numbers — a promoted follower recovers exactly like a primary), applies
it through :func:`repro.store.recovery.apply_record` — the identical
replay path crash recovery uses — then acknowledges its position with
``replicate.ack``.

When the primary answers with a ``reset`` (the follower's position
predates the retained history, or the follower diverged), the
replicator rebuilds wholesale from the shipped session snapshot and
re-bases its store at the primary's ``last_seq``.

Staleness is observable, not hidden: ``applied_seq`` is published to
the server (read fences compare it against a client's ``min_seq``) and
:meth:`Replicator.wait_for_seq` lets a fenced read block until the tail
catches up or its budget expires.
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from ..obs import get_observer
from ..store.recovery import apply_record
from ..store.wal import StoreError, WalRecord
from .primary import decode_batch

__all__ = ["Replicator"]

#: Replicator lifecycle states (``replicate.status`` / ``health``).
STATES = ("connecting", "streaming", "stopped", "broken")


class Replicator:
    """Streams one primary's WAL into a follower's manager + store."""

    def __init__(self, manager: Any, store: Any | None,
                 host: str, port: int, *,
                 follower_id: str | None = None,
                 poll_wait: float = 5.0,
                 batch: int = 256,
                 retry_delay: float = 0.25,
                 max_retry_delay: float = 2.0,
                 counters: Any | None = None) -> None:
        self.manager = manager
        self.store = store
        self.host = host
        self.port = port
        self.follower_id = follower_id or f"replica-{id(self) & 0xffff:04x}"
        self.poll_wait = poll_wait
        self.batch = batch
        self.retry_delay = retry_delay
        self.max_retry_delay = max_retry_delay
        self.counters = counters
        #: Highest sequence applied locally (starts at the store's
        #: recovered position, so a restarted follower resumes its tail).
        self.applied_seq = store.last_seq if store is not None else 0
        self.state = "connecting"
        self.error: str | None = None
        self.resets = 0
        self.batches = 0
        self._task: asyncio.Task | None = None
        self._stopping = False
        #: ``(seq, future)`` fence waiters resolved as the tail advances.
        self._waiters: list[tuple[int, asyncio.Future]] = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def primary_name(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> None:
        """Spawn the streaming task on the running event loop."""
        if self._task is not None:
            raise RuntimeError("replicator is already started")
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name=f"replicate<{self.primary_name}")

    async def stop(self) -> None:
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self.state not in ("broken",):
            self.state = "stopped"
        self._resolve_waiters()

    def status(self) -> dict[str, Any]:
        """The ``replicate.status`` / ``health`` payload for this node."""
        return {"primary": self.primary_name,
                "follower_id": self.follower_id,
                "state": self.state,
                "applied_seq": self.applied_seq,
                "resets": self.resets,
                "batches": self.batches,
                **({"error": self.error} if self.error else {})}

    # -- read fences ---------------------------------------------------------

    async def wait_for_seq(self, seq: int, timeout: float) -> bool:
        """Block until ``applied_seq >= seq`` (True) or timeout (False)."""
        if self.applied_seq >= seq:
            return True
        if timeout <= 0 or self.state in ("stopped", "broken"):
            return False
        future = asyncio.get_running_loop().create_future()
        self._waiters.append((seq, future))
        try:
            await asyncio.wait_for(future, timeout)
            return True
        except asyncio.TimeoutError:
            return False
        finally:
            self._waiters = [(s, f) for s, f in self._waiters
                             if not f.done() and f is not future]

    def _resolve_waiters(self) -> None:
        pending = []
        for seq, future in self._waiters:
            if future.done():
                continue
            if self.applied_seq >= seq or self._stopping:
                future.set_result(self.applied_seq)
            else:
                pending.append((seq, future))
        self._waiters = pending

    # -- the streaming loop --------------------------------------------------

    def _tick(self, name: str, amount: int = 1) -> None:
        if self.counters is not None:
            self.counters[name] += amount
        get_observer().add(name, amount)

    async def _run(self) -> None:
        # imported here, not at module top: repro.serve.server imports
        # this module, and client/resilience live in the same package
        from ..serve.client import AsyncClient, ServerError

        delay = self.retry_delay
        while not self._stopping:
            try:
                client = await AsyncClient.connect(self.host, self.port)
            except (ConnectionError, TimeoutError, OSError):
                self._tick("replicate.reconnects")
                await asyncio.sleep(delay)
                delay = min(delay * 2, self.max_retry_delay)
                continue
            try:
                delay = self.retry_delay
                await self._stream(client)
            except (ConnectionError, TimeoutError, OSError):
                self._tick("replicate.reconnects")
                self.state = "connecting"
                await asyncio.sleep(delay)
                delay = min(delay * 2, self.max_retry_delay)
            except ServerError as error:
                if error.retryable:
                    self._tick("replicate.reconnects")
                    self.state = "connecting"
                    await asyncio.sleep(delay)
                    delay = min(delay * 2, self.max_retry_delay)
                    continue
                # a typed, non-retryable answer (bad_params: the target
                # has no WAL; shutting_down; …) — do not spin on it
                self.state = "broken"
                self.error = f"{error.code}: {error}"
                self._tick("replicate.broken")
                return
            except (StoreError, ValueError) as error:
                # shipped records that do not decode or re-execute mean
                # divergence; serving stale reads silently would be worse
                self.state = "broken"
                self.error = str(error)
                self._tick("replicate.broken")
                return
            finally:
                await client.close()

    async def _stream(self, client: Any) -> None:
        while not self._stopping:
            result = await client.request(
                "replicate.subscribe", from_seq=self.applied_seq,
                max_records=self.batch, wait=self.poll_wait,
                follower=self.follower_id)
            self.state = "streaming"
            if result.get("reset") is not None:
                self._apply_reset(result["reset"])
            elif result.get("records"):
                self._apply_records(result["records"])
            else:
                continue  # caught up: immediately long-poll again
            await client.request("replicate.ack", follower=self.follower_id,
                                 seq=self.applied_seq)

    def _apply_records(self, payload: Any) -> None:
        records = decode_batch(payload)
        obs = get_observer()
        from_seq = self.applied_seq
        if obs.enabled:
            with obs.span("replicate.apply", from_seq=from_seq) as span:
                applied = self._apply(records)
                span.set(records=applied, applied_seq=self.applied_seq)
        else:
            applied = self._apply(records)
        self.batches += 1
        self._tick("replicate.applied", applied)
        if self.store is not None and self.store.should_compact():
            self.store.compact(self.manager.snapshot_state())

    def _apply(self, records: list[WalRecord]) -> int:
        applied = 0
        for record in records:
            if record.seq <= self.applied_seq:
                continue  # duplicate ship (reconnect overlap) — idempotent
            if record.seq != self.applied_seq + 1:
                raise StoreError(
                    f"{self.primary_name}: replication gap — got "
                    f"seq={record.seq} after {self.applied_seq}")
            if self.store is not None:
                self.store.append_record(record.seq, record.op, record.params)
            apply_record(self.manager, record, origin=self.primary_name)
            self.applied_seq = record.seq
            applied += 1
        self._resolve_waiters()
        return applied

    def _apply_reset(self, reset: Any) -> None:
        if (not isinstance(reset, dict)
                or not isinstance(reset.get("last_seq"), int)
                or isinstance(reset.get("last_seq"), bool)
                or not isinstance(reset.get("sessions"), dict)):
            raise ValueError(f"malformed replication reset: {reset!r}")
        sessions: Mapping[str, Any] = reset["sessions"]
        obs = get_observer()
        with obs.span("replicate.reset", last_seq=reset["last_seq"],
                      sessions=len(sessions)):
            for name in list(self.manager.names()):
                self.manager.close(name)
            for name in sorted(sessions):
                state = sessions[name]
                self.manager.restore(
                    name, state["schema"], state["dependencies"],
                    engine=state["engine"], epoch=state["epoch"],
                    generation=state["generation"])
            if self.store is not None:
                self.store.reset_to(self.manager.snapshot_state(),
                                    reset["last_seq"])
            self.applied_seq = reset["last_seq"]
        self.resets += 1
        self._tick("replicate.resets")
        self._resolve_waiters()
