"""A chase for nested MVDs: completing instances by exchange tuples.

Definition 4.1 reads an MVD ``X ↠ Y`` as a *closure condition*: whenever
two tuples agree on ``X``, the instance must also contain the tuple
combining the first's ``X ⊔ Y``-part with the second's ``X ⊔ Y^C``-part.
The **chase** makes that condition constructive — repeatedly add the
missing exchange tuples until a fixpoint:

* it terminates: every added tuple is an amalgam of projections of the
  *original* tuples within one ``X``-group, a finite space;
* the result is the **least** superset of ``r`` satisfying all MVDs of
  ``Σ`` (exchange requirements are monotone in the instance: an added
  tuple never removes an obligation and all obligations are eventually
  met), so ``chase`` is a closure operator: increasing, monotone,
  idempotent — property-tested;
* FDs are *equality-generating*, not tuple-generating: over sets of
  tuples there is nothing sound to add, so FD violations — whether
  present initially or exposed by new exchange tuples — are reported,
  not repaired.  Notably, the mixed meet rule means a pure-MVD ``Σ`` can
  force FD failures: chasing ``{[], [3]}`` with ``λ ↠ L[λ]`` cannot
  succeed, and :func:`chase` says so instead of looping.

Uses: turning near-compliant data into Σ-satisfying test fixtures,
quantifying "how far" an instance is from satisfying Σ (the number of
tuples the chase adds), and one more independent oracle — a chased
instance must satisfy every implied MVD, which the property suite
checks against Algorithm 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .attributes.lattice import complement, join, meet
from .attributes.nested import NestedAttribute
from .dependencies.dependency import (
    Dependency,
    FunctionalDependency,
    MultivaluedDependency,
)
from .dependencies.satisfaction import violating_fd_pair
from .dependencies.sigma import DependencySet
from .exceptions import ReproError
from .obs import get_observer
from .values.join import amalgamate, compatible
from .values.projection import project
from .values.value import Value

__all__ = ["ChaseResult", "ChaseFailure", "chase"]


class ChaseFailure(ReproError, RuntimeError):
    """The chase met an FD violation it cannot repair by adding tuples.

    ``implied_by_sigma`` (filled in by :func:`chase` via an Algorithm
    5.1 membership check) is the semantic cross-check on the diagnosis:
    ``True`` confirms ``Σ ⊨`` the violated FD — whether a stated member
    or a mixed-meet consequence of an MVD — so *no* Σ-satisfying
    superset of the instance exists and the data is irreparable under
    this design.  Soundness says a successful check always confirms;
    ``None`` means the check was not (or could not be) run.
    """

    def __init__(self, dependency: FunctionalDependency,
                 pair: tuple[Value, Value],
                 root: NestedAttribute | None = None) -> None:
        self.dependency = dependency
        self.pair = pair
        self.implied_by_sigma: bool | None = None
        shown = dependency.display(root) if root is not None else str(dependency)
        super().__init__(
            f"FD {shown} is violated and cannot be chased "
            "(tuple-generating repairs only)"
        )


@dataclass(frozen=True)
class ChaseResult:
    """The outcome of a successful chase.

    Attributes
    ----------
    instance:
        The least MVD-closed superset of the input.
    added:
        The exchange tuples the chase generated (disjoint from the input).
    rounds:
        Number of fixpoint iterations.
    """

    instance: frozenset
    added: frozenset
    rounds: int

    @property
    def was_satisfied(self) -> bool:
        """Whether the input already satisfied all the MVDs."""
        return not self.added


def chase(root: NestedAttribute, instance: Iterable[Value],
          sigma: DependencySet | Iterable[Dependency],
          *, max_tuples: int = 100_000,
          engine: str | None = None) -> ChaseResult:
    """Close ``instance`` under the exchange requirements of ``Σ``'s MVDs.

    FDs in ``Σ`` act as *checks*: a violation (initial or chase-exposed)
    raises :class:`ChaseFailure` naming the culprit, with
    ``failure.implied_by_sigma`` diagnosing whether the violated FD is
    forced by ``Σ`` itself (decided by Algorithm 5.1 through the
    ``engine``-selected kernel).

    Raises
    ------
    ChaseFailure
        On an unrepairable FD violation.
    ReproError
        If the closure would exceed ``max_tuples`` (only possible with
        pathological group sizes; the bound is a safety valve, not a
        tightness claim).
    """
    dependencies = list(sigma)
    fds = [d for d in dependencies if isinstance(d, FunctionalDependency)]
    mvds = [d for d in dependencies if isinstance(d, MultivaluedDependency)]
    for dependency in dependencies:
        dependency.validate(root)

    current: set[Value] = set(instance)

    def check_fds() -> None:
        for fd in fds:
            pair = violating_fd_pair(root, current, fd)
            if pair is not None:
                raise ChaseFailure(fd, pair, root)

    obs = get_observer()
    with obs.span("chase.run", tuples_in=len(current), sigma=len(dependencies),
                  fds=len(fds), mvds=len(mvds)) as span:
        try:
            rounds, added = _chase_rounds(
                root, current, fds, mvds, check_fds, max_tuples
            )
        except ChaseFailure as failure:
            try:
                from .core.session import Session

                failure.implied_by_sigma = Session(
                    root, dependencies, engine=engine
                ).implies(failure.dependency)
            except Exception:  # pragma: no cover - diagnosis must not mask
                pass
            raise
        span.set(rounds=rounds, added=len(added), tuples_out=len(current))
    obs.add("chase.runs")
    obs.add("chase.rounds", rounds)
    obs.add("chase.exchange_tuples", len(added))
    obs.observe("chase.rounds_per_run", rounds)

    return ChaseResult(
        frozenset(current), added, rounds
    )


def _chase_rounds(root, current, fds, mvds, check_fds, max_tuples):
    """The fixpoint loop of :func:`chase`; mutates ``current`` in place.

    Returns ``(rounds, added_tuples)``.  Factored out so the span
    wrapper around it stays flat — the observability layer wants one
    span per chase, not per round.
    """
    original = frozenset(current)
    check_fds()
    rounds = 0
    changed = True
    while changed:
        rounds += 1
        changed = False
        for mvd in mvds:
            left_attr = join(root, mvd.lhs, mvd.rhs)
            right_attr = join(root, mvd.lhs, complement(root, mvd.rhs))

            groups: dict[Value, list[Value]] = {}
            for value in current:
                groups.setdefault(project(root, mvd.lhs, value), []).append(value)

            for members in groups.values():
                if len(members) < 2:
                    continue
                left_parts = {project(root, left_attr, t): t for t in members}
                right_parts = {project(root, right_attr, t): t for t in members}
                for left_value, left_owner in left_parts.items():
                    for right_value, right_owner in right_parts.items():
                        if not compatible(
                            root, left_attr, right_attr, left_value, right_value
                        ):
                            # The exchange tuple does not exist in dom(N):
                            # the mixed-meet FD X → Y⊓Y^C is violated.
                            overlap = meet(
                                root, mvd.rhs, complement(root, mvd.rhs)
                            )
                            raise ChaseFailure(
                                FunctionalDependency(mvd.lhs, overlap),
                                (left_owner, right_owner),
                                root,
                            )
                        combined = amalgamate(
                            root, left_attr, right_attr, left_value, right_value
                        )
                        if combined not in current:
                            current.add(combined)
                            changed = True
                            if len(current) > max_tuples:
                                raise ReproError(
                                    f"chase exceeded {max_tuples} tuples"
                                )
        if changed:
            check_fds()

    return rounds, frozenset(current - original)
