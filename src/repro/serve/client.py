"""Clients for the reasoning server: a pipelining async one, a simple
sync one.

:class:`AsyncClient` keeps any number of requests in flight on one
connection (a background reader task matches responses to requests by
id — the server may answer out of order), which is what the load
generator and the ``implies_batch``-heavy workloads want.
:class:`Client` is the blocking convenience used by the CLI
(``repro query --connect``) and by scripts: one request at a time over a
plain socket.

Both raise :class:`ServerError` (carrying the typed wire
:attr:`~ServerError.code`) for failure responses, and
:class:`ConnectionError` when the server goes away mid-request.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Iterable

from .protocol import (
    RETRYABLE,
    Request,
    decode_response,
    encode,
)

__all__ = ["ServerError", "AsyncClient", "Client"]


class ServerError(Exception):
    """A failure response from the server, with its typed error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message

    @property
    def retryable(self) -> bool:
        """Whether retrying the same request later can succeed
        (``overloaded`` / ``timeout``)."""
        return self.code in RETRYABLE


def _result_or_raise(response: dict[str, Any]) -> dict[str, Any]:
    if response.get("ok"):
        return response.get("result", {})
    error = response.get("error") or {}
    raise ServerError(error.get("code", "internal"),
                      error.get("message", "malformed error response"))


class _OpsMixin:
    """The op surface shared by both clients (thin wrappers over
    ``request``; see docs/SERVER.md for params and results)."""

    def _request(self, op: str, **params: Any):
        raise NotImplementedError  # pragma: no cover

    def ping(self):
        return self._request("ping")

    def health(self):
        return self._request("health")

    def open(self, name: str, schema: str,
             dependencies: Iterable[str] = (), *,
             engine: str | None = None, replace: bool = False):
        params: dict[str, Any] = {"name": name, "schema": schema,
                                  "dependencies": list(dependencies)}
        if engine is not None:
            params["engine"] = engine
        if replace:
            params["replace"] = True
        return self._request("open", **params)

    def add(self, session: str, dependency: str):
        return self._request("add", session=session, dependency=dependency)

    def retract(self, session: str, dependency: str):
        return self._request("retract", session=session, dependency=dependency)

    def implies(self, session: str, dependency: str):
        return self._map(
            self._request("implies", session=session, dependency=dependency),
            lambda result: result["implied"])

    def implies_batch(self, session: str, dependencies: Iterable[str]):
        return self._map(
            self._request("implies_batch", session=session,
                          dependencies=list(dependencies)),
            lambda result: result["verdicts"])

    def closure(self, session: str, x: str):
        return self._map(self._request("closure", session=session, x=x),
                         lambda result: result["closure"])

    def basis(self, session: str, x: str):
        return self._map(self._request("basis", session=session, x=x),
                         lambda result: result["basis"])

    def cover(self, session: str):
        return self._map(self._request("cover", session=session),
                         lambda result: result["cover"])

    def keys(self, session: str):
        return self._map(self._request("keys", session=session),
                         lambda result: result["keys"])

    def check4nf(self, session: str):
        return self._request("check4nf", session=session)

    def is_redundant(self, session: str, dependency: str):
        return self._map(
            self._request("is_redundant", session=session,
                          dependency=dependency),
            lambda result: result["redundant"])

    def metrics(self, session: str | None = None):
        if session is None:
            return self._request("metrics")
        return self._request("metrics", session=session)

    def close_session(self, session: str):
        return self._request("close", session=session)

    def replicate_subscribe(self, from_seq: int, *,
                            max_records: int | None = None,
                            wait: float | None = None,
                            follower: str | None = None):
        params: dict[str, Any] = {"from_seq": from_seq}
        if max_records is not None:
            params["max_records"] = max_records
        if wait is not None:
            params["wait"] = wait
        if follower is not None:
            params["follower"] = follower
        return self._request("replicate.subscribe", **params)

    def replicate_ack(self, follower: str, seq: int):
        return self._request("replicate.ack", follower=follower, seq=seq)

    def replicate_status(self):
        return self._request("replicate.status")


class AsyncClient(_OpsMixin):
    """Pipelining asyncio client; create via :meth:`connect`.

    >>> client = await AsyncClient.connect(host, port)   # doctest: +SKIP
    >>> await client.open("s", "R(A, B, C)", ["R(A) -> R(B)"])  # doctest: +SKIP
    >>> await client.implies("s", "R(A) -> R(B)")        # doctest: +SKIP
    True
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 1
        #: First failure that tore the connection down; once set, every
        #: later request is rejected immediately (see :meth:`request`).
        self._conn_error: Exception | None = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      limit: int = 1 << 20) -> "AsyncClient":
        # The limit must cover the largest line the server may emit
        # (ServeConfig.max_line_bytes, 1 MiB) — check4nf on a wide
        # schema can list hundreds of KB of violations in one response.
        reader, writer = await asyncio.open_connection(host, port,
                                                       limit=limit)
        return cls(reader, writer)

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        """Close the connection; outstanding requests fail."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
        self._fail_pending(ConnectionError("client closed"))

    # -- plumbing ----------------------------------------------------------

    async def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request; await its (possibly out-of-order) response.

        Raises :class:`ConnectionError` *promptly* once the connection
        has failed: a request submitted after (or racing with) the read
        loop's teardown must never register a future nobody will ever
        resolve — ``_fail_pending`` marks the connection dead before it
        rejects the in-flight futures, and this check observes the mark.
        """
        if self._conn_error is not None:
            raise ConnectionError(
                f"connection is closed ({self._conn_error})"
            ) from self._conn_error
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(encode(Request(request_id, op, params).as_dict()))
            await self._writer.drain()
            response = await future
        finally:
            self._pending.pop(request_id, None)
        return _result_or_raise(response)

    # the mixin's wrappers return the coroutine from request()
    _request = request

    @staticmethod
    async def _map(awaitable, extract):
        return extract(await awaitable)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line or not line.endswith(b"\n"):
                    break
                response = decode_response(line)
                future = self._pending.get(response.get("id"))
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            self._fail_pending(
                ConnectionError("server closed the connection"))

    def _fail_pending(self, error: Exception) -> None:
        # Mark the connection dead *first*: a request() racing with this
        # teardown either registered its future before now (it gets the
        # exception below) or checks the mark and rejects immediately —
        # in neither case can it hang on a future nobody resolves.
        if self._conn_error is None:
            self._conn_error = error
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()


class Client(_OpsMixin):
    """Blocking one-request-at-a-time client (CLI and scripts).

    >>> with Client.connect(host, port) as client:      # doctest: +SKIP
    ...     client.open("s", "R(A, B, C)", ["R(A) -> R(B)"])
    ...     client.implies("s", "R(A) -> R(B)")
    True
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rb")
        self._next_id = 1

    @classmethod
    def connect(cls, host: str, port: int, *,
                timeout: float | None = 10.0) -> "Client":
        return cls(socket.create_connection((host, port), timeout=timeout))

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    # -- plumbing ----------------------------------------------------------

    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request and block for its response."""
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(encode(Request(request_id, op, params).as_dict()))
        while True:
            line = self._file.readline()
            if not line or not line.endswith(b"\n"):
                raise ConnectionError("server closed the connection")
            response = decode_response(line)
            if response.get("id") == request_id:
                return _result_or_raise(response)
            if response.get("id") is None and not response.get("ok"):
                # An id-less failure means the server could not decode a
                # line; with one request in flight it can only be ours,
                # so raise now rather than block until the socket times
                # out waiting for a response that will never come.
                _result_or_raise(response)
            # A response to an id we no longer track (cannot happen with
            # sequential use); keep reading for ours.

    _request = request

    @staticmethod
    def _map(result, extract):
        return extract(result)
