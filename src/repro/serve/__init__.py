"""``repro.serve`` — the network front-end over the reasoning engine.

A versioned newline-delimited-JSON protocol (:mod:`repro.serve.protocol`),
an asyncio TCP server with session management, worker-pool offload,
backpressure and graceful shutdown (:mod:`repro.serve.server`), and
sync/async clients (:mod:`repro.serve.client`).

Quick start::

    python -m repro serve --port 7474 --workers 4          # terminal 1
    python -m repro query --connect 127.0.0.1:7474 --session pub \\
        --schema "Pubcrawl(Person, Visit[Drink(Beer, Pub)])" \\
        -d "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])" open  # terminal 2
    python -m repro query --connect 127.0.0.1:7474 --session pub \\
        implies "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"

See ``docs/SERVER.md`` for the protocol specification, error codes and
deployment notes.
"""

from .client import AsyncClient, Client, ServerError
from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    Request,
)
from .server import ReasoningServer, ServeConfig, SessionManager

__all__ = [
    "AsyncClient",
    "Client",
    "ErrorCode",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReasoningServer",
    "Request",
    "ServeConfig",
    "ServerError",
    "SessionManager",
]
