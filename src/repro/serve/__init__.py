"""``repro.serve`` — the network front-end over the reasoning engine.

A versioned newline-delimited-JSON protocol (:mod:`repro.serve.protocol`),
an asyncio TCP server with session management, worker-pool offload,
backpressure, graceful shutdown and cold-work load shedding
(:mod:`repro.serve.server`), sync/async clients
(:mod:`repro.serve.client`), a client-side resilience layer — retry
policy with full-jitter backoff, circuit breaker, reconnect and
session replay (:mod:`repro.serve.resilience`) — and deterministic
seed-driven fault injection for chaos testing
(:mod:`repro.serve.faults`).

Read scale-out lives in the sibling :mod:`repro.replicate` package:
``--replicate-from`` turns a server into a read-only follower of a
WAL-shipping primary, and :class:`repro.replicate.RoutedClient` fans
read-only ops across replicas with bounded-staleness read fences
(``RoutedClient`` is deliberately *not* re-exported here — importing
it would cycle back into this package; see docs/REPLICATION.md).

Quick start::

    python -m repro serve --port 7474 --workers 4          # terminal 1
    python -m repro query --connect 127.0.0.1:7474 --session pub \\
        --schema "Pubcrawl(Person, Visit[Drink(Beer, Pub)])" \\
        -d "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])" open  # terminal 2
    python -m repro query --connect 127.0.0.1:7474 --session pub \\
        implies "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"

See ``docs/SERVER.md`` for the protocol specification, error codes and
deployment notes.
"""

from .client import AsyncClient, Client, ServerError
from .faults import FaultInjector, FaultPlan, FaultRule
from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    Request,
)
from .resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RetryingAsyncClient,
    RetryingClient,
    RetryPolicy,
)
from .server import ReasoningServer, ServeConfig, SessionManager

__all__ = [
    "AsyncClient",
    "CircuitBreaker",
    "CircuitOpenError",
    "Client",
    "ErrorCode",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReasoningServer",
    "Request",
    "RetryingAsyncClient",
    "RetryingClient",
    "RetryPolicy",
    "ServeConfig",
    "ServerError",
    "SessionManager",
]
