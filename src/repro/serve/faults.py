"""Deterministic, seed-driven server-side fault injection (tests only).

The chaos/differential test suite needs the server to misbehave *on
purpose* and *reproducibly*: the same :class:`FaultPlan` against the
same request sequence must inject exactly the same faults, so a faulted
run can be compared byte-for-byte against a fault-free replay.  Four
fault kinds cover the failure modes the resilience layer
(:mod:`repro.serve.resilience`) must survive:

* ``delay``    — sleep before handling (injected latency);
* ``error``    — answer with a typed *retryable* error (``overloaded``
  or ``timeout``) instead of executing the request;
* ``drop``     — close the connection, either ``pre`` (before the
  request executes — it never runs) or ``post`` (after its response
  was delivered);
* ``truncate`` — execute, then deliver only a prefix of the response
  frame and close — the client must treat the torn frame as a lost
  connection;
* ``crash``    — die the way SIGKILL would (``os._exit``, no flush, no
  atexit) at a *store* fault point.  Crash rules match the durable
  store's internal point names (``store.append``, ``store.snapshot``,
  ``store.compact``) instead of wire ops, with ``when`` selecting the
  phase: ``pre`` (before any byte is written), ``mid`` (a torn,
  partial write) or ``post`` (written and flushed, but the state
  transition unfinished — e.g. a compaction whose manifest never
  adopted its snapshot).  The crash-recovery suite drives its whole
  SIGKILL matrix through these (see docs/PERSISTENCE.md).

Store points never match an ``op: "*"`` rule — a wildcard delay/error
plan must not accidentally kill the process — and only ``crash`` rules
may name them.

Determinism: every rule owns a private :class:`random.Random` seeded
from ``(plan seed, rule index)``, and probabilistic draws consume that
stream once per *matching* request — so a rule's firing sequence
depends only on the sequence of requests it matched, never on what
other rules did.  Counting triggers (``every``/``after``/``times``)
are plain per-rule counters.

A plan is plain JSON (see docs/SERVER.md), enabled on a served process
with ``python -m repro serve --fault-plan PATH_OR_JSON``::

    {"seed": 42, "rules": [
        {"op": "implies", "kind": "error", "code": "overloaded", "p": 0.1},
        {"op": "*", "kind": "delay", "seconds": 0.005, "every": 7},
        {"op": "closure", "kind": "truncate", "every": 3, "times": 5},
        {"op": "ping", "kind": "drop", "when": "pre", "after": 2}
    ]}

Every injected fault is counted (``serve.fault.injected``,
``serve.fault.<kind>``) and traced as a ``serve.fault`` span through
:mod:`repro.obs`; the ``health`` op is answered before injection and
backpressure, so a probe can always reach a faulted server.
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Iterable

from .protocol import OPS, RETRYABLE

__all__ = ["FAULT_KINDS", "STORE_POINTS", "FaultAction", "FaultRule",
           "FaultPlan", "FaultInjector"]

#: Every fault kind a rule may inject.
FAULT_KINDS = frozenset({"delay", "error", "drop", "truncate", "crash"})

#: The durable store's internal fault points (crash rules only; see
#: :mod:`repro.store`).
STORE_POINTS = frozenset({"store.append", "store.snapshot",
                          "store.compact"})


class FaultAction:
    """One decided injection: what to do to the current request."""

    __slots__ = ("kind", "code", "seconds", "when", "rule")

    def __init__(self, kind: str, *, code: str = "", seconds: float = 0.0,
                 when: str = "pre", rule: int = -1) -> None:
        self.kind = kind
        self.code = code
        self.seconds = seconds
        self.when = when
        self.rule = rule

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        detail = {"error": self.code, "delay": f"{self.seconds}s",
                  "drop": self.when}.get(self.kind, "")
        return f"FaultAction({self.kind}{f' {detail}' if detail else ''})"


class FaultRule:
    """A matcher (``op``), a trigger (``p``/``every``/``after``/``times``)
    and the fault to inject when it fires.

    Exactly one of ``p`` (seeded probability per matching request) and
    ``every`` (fire on every *k*-th matching request) selects firings;
    omitting both fires on every match.  ``after`` skips the first *n*
    matches entirely; ``times`` caps the total number of firings.
    """

    __slots__ = ("op", "kind", "code", "seconds", "when", "p", "every",
                 "times", "after")

    def __init__(self, *, op: str = "*", kind: str, code: str | None = None,
                 seconds: float | None = None, when: str = "pre",
                 p: float | None = None, every: int | None = None,
                 times: int | None = None, after: int = 0) -> None:
        if op != "*" and op not in OPS and op not in STORE_POINTS:
            raise ValueError(f"fault rule op {op!r} is neither a server op "
                             f"nor a store fault point")
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} "
                             f"(one of {sorted(FAULT_KINDS)})")
        if kind == "crash":
            if op not in STORE_POINTS:
                raise ValueError(
                    f"'crash' rules only apply to store fault points "
                    f"({sorted(STORE_POINTS)}), got op {op!r}")
            if when not in ("pre", "mid", "post"):
                raise ValueError(f"'when' must be 'pre', 'mid' or 'post' "
                                 f"for kind 'crash', got {when!r}")
        elif op in STORE_POINTS:
            raise ValueError(f"store fault point {op!r} only accepts "
                             f"kind 'crash', not {kind!r}")
        if kind == "error":
            if code not in RETRYABLE:
                raise ValueError(
                    f"injected error code must be retryable "
                    f"({sorted(RETRYABLE)}), got {code!r}")
        elif code is not None:
            raise ValueError(f"'code' only applies to kind 'error', "
                             f"not {kind!r}")
        if kind == "delay":
            if seconds is None or seconds <= 0:
                raise ValueError("'delay' rules need seconds > 0")
        elif seconds is not None:
            raise ValueError(f"'seconds' only applies to kind 'delay', "
                             f"not {kind!r}")
        if kind == "drop":
            if when not in ("pre", "post"):
                raise ValueError(f"'when' must be 'pre' or 'post', got {when!r}")
        if p is not None and every is not None:
            raise ValueError("give either 'p' or 'every', not both")
        if p is not None and not 0.0 < p <= 1.0:
            raise ValueError(f"'p' must be in (0, 1], got {p!r}")
        if every is not None and every < 1:
            raise ValueError(f"'every' must be >= 1, got {every!r}")
        if times is not None and times < 1:
            raise ValueError(f"'times' must be >= 1, got {times!r}")
        if after < 0:
            raise ValueError(f"'after' must be >= 0, got {after!r}")
        self.op = op
        self.kind = kind
        self.code = code or ""
        self.seconds = seconds or 0.0
        self.when = when
        self.p = p
        self.every = every
        self.times = times
        self.after = after

    def matches(self, op: str) -> bool:
        if op in STORE_POINTS:
            # wildcard rules must never reach inside the store
            return self.op == op
        return self.op == "*" or self.op == op

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"op": self.op, "kind": self.kind}
        if self.kind == "error":
            data["code"] = self.code
        if self.kind == "delay":
            data["seconds"] = self.seconds
        if self.kind in ("drop", "crash"):
            data["when"] = self.when
        if self.p is not None:
            data["p"] = self.p
        if self.every is not None:
            data["every"] = self.every
        if self.times is not None:
            data["times"] = self.times
        if self.after:
            data["after"] = self.after
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultRule":
        if not isinstance(data, dict):
            raise ValueError(f"a fault rule must be a JSON object, "
                            f"got {type(data).__name__}")
        known = {"op", "kind", "code", "seconds", "when", "p", "every",
                 "times", "after"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault rule keys {sorted(unknown)}")
        if "kind" not in data:
            raise ValueError("a fault rule needs a 'kind'")
        return cls(**data)


class FaultPlan:
    """An ordered rule list plus the seed that makes it deterministic."""

    __slots__ = ("seed", "rules")

    def __init__(self, rules: Iterable[FaultRule | dict], *,
                 seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: tuple[FaultRule, ...] = tuple(
            rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
            for rule in rules)
        if not self.rules:
            raise ValueError("a fault plan needs at least one rule")

    def as_dict(self) -> dict[str, Any]:
        return {"seed": self.seed,
                "rules": [rule.as_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"fault plan is not valid JSON: {error}") from error
        if not isinstance(data, dict) or "rules" not in data:
            raise ValueError("fault plan must be an object with 'rules'")
        return cls(data["rules"], seed=data.get("seed", 0))

    @classmethod
    def load(cls, spec: str) -> "FaultPlan":
        """Parse ``spec`` as inline JSON (starts with ``{``) or a file path."""
        stripped = spec.strip()
        if stripped.startswith("{"):
            return cls.from_json(stripped)
        if not os.path.exists(spec):
            raise ValueError(f"fault plan file not found: {spec!r}")
        with open(spec, encoding="utf-8") as handle:
            return cls.from_json(handle.read())


class _RuleState:
    """Per-rule runtime state: match/fire counters and a private RNG."""

    __slots__ = ("rule", "rng", "matched", "fired")

    def __init__(self, rule: FaultRule, seed: int, index: int) -> None:
        self.rule = rule
        # Rule-private stream: a rule's decisions depend only on the
        # requests *it* matched, so adding a rule never perturbs the
        # firing pattern of the others.
        self.rng = random.Random(f"{seed}:{index}")
        self.matched = 0
        self.fired = 0

    def fires(self, op: str) -> bool:
        rule = self.rule
        if not rule.matches(op):
            return False
        self.matched += 1
        if self.matched <= rule.after:
            return False
        if rule.times is not None and self.fired >= rule.times:
            return False
        if rule.p is not None:
            # draw even when the outcome is predetermined-false so the
            # stream position stays a pure function of the match count
            if self.rng.random() >= rule.p:
                return False
        elif rule.every is not None:
            if (self.matched - rule.after) % rule.every != 0:
                return False
        self.fired += 1
        return True


class FaultInjector:
    """The stateful decision engine a :class:`ReasoningServer` consults.

    ``decide(op)`` walks the plan's rules in order and returns the
    first one that fires as a :class:`FaultAction` (or ``None``).
    Rules that match but do not fire still advance their counters and
    RNG stream, so decisions are a pure function of the per-rule match
    sequences.  Every injection is appended to :attr:`injected` and
    tallied into ``counters`` (``serve.fault.injected`` and
    ``serve.fault.<kind>``) — the server mirrors those into
    :mod:`repro.obs` and emits the ``serve.fault`` span at the point
    the fault is applied.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._states = [_RuleState(rule, plan.seed, index)
                        for index, rule in enumerate(plan.rules)]
        #: Chronological ``(op, kind)`` log of every injected fault.
        self.injected: list[tuple[str, str]] = []

    def decide(self, op: str) -> FaultAction | None:
        action = None
        for index, state in enumerate(self._states):
            if state.fires(op) and action is None:
                rule = state.rule
                action = FaultAction(rule.kind, code=rule.code,
                                     seconds=rule.seconds, when=rule.when,
                                     rule=index)
                # keep walking: later rules must still consume their
                # match (and, for p-rules, their draw) for determinism
        if action is not None:
            self.injected.append((op, action.kind))
        return action

    def stats(self) -> dict[str, int]:
        """Injection tallies by kind (plus the total)."""
        tallies: dict[str, int] = {"injected": len(self.injected)}
        for _op, kind in self.injected:
            tallies[kind] = tallies.get(kind, 0) + 1
        return tallies
