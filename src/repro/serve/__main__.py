"""``python -m repro.serve`` — registry-derived docs utilities.

The serve *runtime* entry point stays ``python -m repro serve``; this
module owns the documentation side of the command registry:

``--op-table``
    Print the operations table for ``docs/SERVER.md``, generated from
    :mod:`repro.core.commands` (so the docs can never drift from the
    registry by hand-editing).

``--check``
    Exit non-zero if the committed table (the section between the
    ``op-table:begin`` / ``op-table:end`` markers in ``docs/SERVER.md``)
    differs from the generated one — the CI ``registry-docs-sync`` step.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..core.commands import op_table

MARK_BEGIN = "<!-- op-table:begin -->"
MARK_END = "<!-- op-table:end -->"


def committed_table(text: str) -> str | None:
    """The table between the markers of a SERVER.md text, or ``None``."""
    try:
        _, rest = text.split(MARK_BEGIN, 1)
        inside, _ = rest.split(MARK_END, 1)
    except ValueError:
        return None
    return inside.strip("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="print or verify the registry-generated op table",
    )
    parser.add_argument("--op-table", action="store_true",
                        help="print the generated docs/SERVER.md op table")
    parser.add_argument("--check", action="store_true",
                        help="fail if the committed docs table has drifted")
    parser.add_argument("--docs", default="docs/SERVER.md", metavar="PATH",
                        help="SERVER.md location for --check "
                        "(default: docs/SERVER.md)")
    args = parser.parse_args(argv)

    if args.check:
        path = Path(args.docs)
        if not path.is_file():
            print(f"error: {path} not found", file=sys.stderr)
            return 2
        committed = committed_table(path.read_text(encoding="utf-8"))
        if committed is None:
            print(f"error: {path} has no {MARK_BEGIN} / {MARK_END} markers",
                  file=sys.stderr)
            return 2
        generated = op_table()
        if committed != generated:
            print(f"error: the op table in {path} is out of date — "
                  "regenerate it with: python -m repro.serve --op-table",
                  file=sys.stderr)
            return 1
        print("op table is in sync")
        return 0

    if args.op_table:
        print(op_table())
        return 0

    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
