"""The ``repro.serve`` wire protocol: versioned newline-delimited JSON.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
Responses carry the request's ``id`` and may arrive **out of order** —
the server pipelines requests per connection (that is what lets a single
connection keep the worker pool busy), so clients must match responses
to requests by id, not by arrival order.

Request::

    {"v": 1, "id": 7, "op": "implies",
     "params": {"session": "design", "dependency": "R(A) -> R(B)"}}

Success / error response::

    {"v": 1, "id": 7, "ok": true,  "result": {"implied": true}}
    {"v": 1, "id": 7, "ok": false,
     "error": {"code": "unknown_session", "message": "no session 'design'"}}

``id`` is any JSON string or integer chosen by the client; the server
echoes it verbatim.  ``v`` is :data:`PROTOCOL_VERSION`; the server
rejects other versions with ``invalid_request`` so wire-format changes
fail loudly instead of mis-decoding.

The operation set (:data:`OPS`) and per-op params/results are specified
in ``docs/SERVER.md``; the typed error codes are the :class:`ErrorCode`
constants below.  Problem-file texts reuse the :mod:`repro.io` encoding
(schemas in paper notation, dependencies as ``"X -> Y"`` displays), so a
served session is the same reproducible artifact shape as a problem
file on disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..core import commands as _commands

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ErrorCode",
    "ProtocolError",
    "Request",
    "encode",
    "decode_request",
    "decode_response",
    "ok_response",
    "error_response",
]

#: Wire-format version; bump on any incompatible change.
PROTOCOL_VERSION = 1

#: Every operation the server understands — derived from the typed
#: command registry (:mod:`repro.core.commands`), never hand-kept:
#: registering a wire command there *is* adding it to the protocol.
OPS = _commands.wire_ops()


class ErrorCode:
    """Typed error codes (the ``error.code`` field of a failure response).

    Clients should branch on these, never on message text.
    """

    #: The line was not valid JSON, or not a JSON object.
    PARSE_ERROR = "parse_error"
    #: Structurally broken request: bad ``v``, missing/invalid ``id``,
    #: ``op`` or ``params`` of the wrong type.
    INVALID_REQUEST = "invalid_request"
    #: ``op`` is not a member of :data:`OPS`.
    UNKNOWN_OP = "unknown_op"
    #: The named session does not exist (never opened, closed, or evicted).
    UNKNOWN_SESSION = "unknown_session"
    #: ``open`` without ``replace`` for a name that is already open.
    SESSION_EXISTS = "session_exists"
    #: Op-specific parameter problems: unparsable schema/dependency/
    #: subattribute, wrong types, retracting a non-member, …
    BAD_PARAMS = "bad_params"
    #: The request exceeded the server's per-request deadline.
    TIMEOUT = "timeout"
    #: Backpressure: the server (or this connection) is at capacity and
    #: the request was rejected *immediately* instead of being queued.
    OVERLOADED = "overloaded"
    #: The server is draining for shutdown and accepts no new work.
    SHUTTING_DOWN = "shutting_down"
    #: Unexpected server-side failure (a bug; the message is a summary).
    INTERNAL = "internal"
    #: A mutation sent to a read-only replica; the message names the
    #: primary to send it to instead.
    NOT_PRIMARY = "not_primary"
    #: A fenced read (``min_seq``) against a replica that could not
    #: catch up to the fence within its wait budget.
    REPLICA_BEHIND = "replica_behind"


#: Codes whose requests may be retried against the same server later.
RETRYABLE = frozenset({ErrorCode.TIMEOUT, ErrorCode.OVERLOADED})


class ProtocolError(Exception):
    """A request that cannot be honoured, with its typed wire code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """A decoded, structurally validated request."""

    id: int | str
    op: str
    params: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"v": PROTOCOL_VERSION, "id": self.id, "op": self.op,
                "params": dict(self.params)}


def encode(message: dict[str, Any]) -> bytes:
    """Serialise one protocol message to a wire line (bytes incl. ``\\n``)."""
    return json.dumps(message, ensure_ascii=False,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def _decode_object(line: bytes | str) -> dict[str, Any]:
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(ErrorCode.PARSE_ERROR,
                                f"line is not UTF-8: {error}") from error
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(ErrorCode.PARSE_ERROR,
                            f"line is not JSON: {error}") from error
    if not isinstance(data, dict):
        raise ProtocolError(ErrorCode.PARSE_ERROR,
                            f"expected a JSON object, got {type(data).__name__}")
    return data


def decode_request(line: bytes | str) -> Request:
    """Parse and validate one request line.

    Raises
    ------
    ProtocolError
        With :data:`ErrorCode.PARSE_ERROR` for non-JSON input,
        :data:`ErrorCode.INVALID_REQUEST` for structural problems and
        :data:`ErrorCode.UNKNOWN_OP` for unknown operations.
    """
    data = _decode_object(line)
    version = data.get("v")
    # bool is rejected explicitly: True == 1 in Python, so it would
    # otherwise slip past an equality check against the version number.
    if isinstance(version, bool) or version != PROTOCOL_VERSION:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})",
        )
    request_id = data.get("id")
    if not isinstance(request_id, (int, str)) or isinstance(request_id, bool):
        raise ProtocolError(ErrorCode.INVALID_REQUEST,
                            "'id' must be a JSON string or integer")
    op = data.get("op")
    if not isinstance(op, str):
        raise ProtocolError(ErrorCode.INVALID_REQUEST, "'op' must be a string")
    if op not in OPS:
        raise ProtocolError(ErrorCode.UNKNOWN_OP, f"unknown op {op!r}")
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(ErrorCode.INVALID_REQUEST,
                            "'params' must be a JSON object")
    return Request(request_id, op, params)


def decode_response(line: bytes | str) -> dict[str, Any]:
    """Parse one response line (client side); minimal structural checks."""
    data = _decode_object(line)
    if "id" not in data or "ok" not in data:
        raise ProtocolError(ErrorCode.PARSE_ERROR,
                            "response must carry 'id' and 'ok'")
    return data


def ok_response(request_id: int | str, result: dict[str, Any]) -> dict[str, Any]:
    """Build a success response message."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
            "result": result}


def error_response(request_id: int | str | None, code: str,
                   message: str) -> dict[str, Any]:
    """Build a failure response message.

    ``request_id`` is ``None`` when the line was too broken to recover
    an id (parse errors) — the client sees ``"id": null``.
    """
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False,
            "error": {"code": code, "message": message}}
