"""Client-side resilience: retry policy, circuit breaker, healing clients.

The server's failure surface is typed — ``overloaded`` and ``timeout``
are the two *retryable* wire codes (:data:`repro.serve.protocol.RETRYABLE`)
and a dropped connection is always worth one reconnect — but the plain
clients surface every failure to the caller.  This module closes the
loop:

* :class:`RetryPolicy` — exponential backoff with **full jitter**
  (each sleep is uniform in ``[0, min(cap, base·multiplier^attempt)]``),
  a bounded retry budget (``max_retries``) and per-request deadline
  awareness: the total time a request may spend across attempts and
  sleeps never exceeds ``deadline`` (each sleep is clamped to the time
  remaining, and an exhausted deadline stops retrying).  A
  ``max_retries=0`` policy is a transparent pass-through: the original
  error surfaces unchanged.

* :class:`CircuitBreaker` — after ``failure_threshold`` *consecutive*
  retryable failures the circuit opens and calls fail fast with
  :class:`CircuitOpenError` (no socket traffic) until ``reset_after``
  seconds pass; the first call after the cooldown is the half-open
  probe — its success closes the circuit, its failure re-opens it.
  Non-retryable errors never touch breaker state.

* :class:`RetryingClient` / :class:`RetryingAsyncClient` — the
  blocking and pipelining clients wrapped in both of the above, plus
  connection healing: a dropped connection is re-dialled before the
  retry, and a session the *wrapper itself* opened that comes back
  ``unknown_session`` (evicted, or the server restarted) is re-opened
  with ``replace=True`` and its add/retract log replayed before the
  original request is retried.  Replay safety is the server's
  ``(epoch, generation)`` machinery (docs/SERVER.md): a re-opened name
  is a brand-new epoch server-side, so a replay can never be answered
  from state warmed for the evicted predecessor.  ``unknown_session``
  for a session this client did *not* open stays a hard error —
  zero retries, zero breaker change.

Every retry sleep is traced as a ``client.retry`` span and counted
(``client.retry.attempts``, ``client.retry.reconnects``,
``client.retry.reopens``, ``client.retry.exhausted``,
``client.retry.circuit_open``) through :mod:`repro.obs`; the same
tallies are kept on the wrapper's always-on ``counters``.

One layer up, :class:`repro.replicate.RoutedClient` composes a
*fleet* of these wrappers — one per replica plus the primary — and
uses the per-connection circuit breakers as its failover signal: a
replica whose circuit opens is skipped for a cooldown instead of
stalling every fanned-out read (docs/REPLICATION.md).
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import Counter as TallyCounter
from dataclasses import dataclass
from typing import Any, Callable

from ..core import commands
from ..obs import get_observer
from .client import AsyncClient, Client, ServerError, _OpsMixin
from .protocol import ErrorCode

__all__ = ["RetryPolicy", "CircuitBreaker", "CircuitOpenError",
           "RetryingClient", "RetryingAsyncClient"]


class CircuitOpenError(ConnectionError):
    """Raised instead of touching the socket while the circuit is open."""

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        #: Seconds until the breaker's half-open probe becomes available.
        self.retry_after = retry_after


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter, bounded budget and deadline.

    The backoff ceiling for attempt *k* (0-based) is
    ``min(max_delay, base_delay · multiplier^k)`` and the actual sleep
    is drawn uniformly from ``[0, ceiling]`` (*full jitter* — the
    de-synchronising variant, so a thundering herd of rejected clients
    does not re-converge on the server in lockstep).
    """

    #: Retry budget: how many times a failed request may be re-sent
    #: (``0`` = never retry, surface the original error unchanged).
    max_retries: int = 4
    #: First-attempt backoff ceiling in seconds.
    base_delay: float = 0.05
    #: Ceiling growth factor per attempt.
    multiplier: float = 2.0
    #: Hard cap on any single backoff sleep, in seconds.
    max_delay: float = 2.0
    #: Wall-clock budget for one logical request including all retries
    #: and sleeps (``None`` = unbounded).
    deadline: float | None = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    def backoff_ceiling(self, attempt: int) -> float:
        """The jitter interval's upper bound for 0-based ``attempt``."""
        return min(self.max_delay, self.base_delay * self.multiplier ** attempt)

    def next_delay(self, attempt: int, elapsed: float,
                   rng: random.Random) -> float | None:
        """The sleep before retry number ``attempt + 1``, or ``None``.

        ``None`` means *give up* (budget spent or deadline passed);
        otherwise the returned delay is jittered in
        ``[0, backoff_ceiling(attempt)]`` and clamped so
        ``elapsed + delay`` never exceeds :attr:`deadline`.
        """
        if attempt >= self.max_retries:
            return None
        delay = rng.uniform(0.0, self.backoff_ceiling(attempt))
        if self.deadline is not None:
            remaining = self.deadline - elapsed
            if remaining <= 0:
                return None
            delay = min(delay, remaining)
        return delay


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    Deliberately simple: ``failure_threshold`` consecutive retryable
    failures open the circuit; :meth:`allow` fails fast for
    ``reset_after`` seconds, then admits exactly one half-open probe;
    the probe's success closes the circuit, its failure re-opens it
    for another full cooldown.  A breaker is per-client state — share
    one instance across wrappers to pool their evidence.
    """

    def __init__(self, *, failure_threshold: int = 5,
                 reset_after: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_after <= 0:
            raise ValueError(f"reset_after must be positive, got {reset_after}")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (probe in flight)."""
        return self._state

    @property
    def failures(self) -> int:
        """Consecutive retryable failures since the last success."""
        return self._failures

    def retry_after(self) -> float:
        """Seconds until an open circuit admits its half-open probe."""
        if self._state != "open":
            return 0.0
        return max(0.0, self.reset_after - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """Whether a call may proceed now (may transition to half-open)."""
        if self._state == "closed":
            return True
        if self._state == "open":
            if self._clock() - self._opened_at >= self.reset_after:
                self._state = "half_open"
                return True
            return False
        # half-open: the probe slot is taken until it reports back
        return False

    def record_success(self) -> None:
        self._state = "closed"
        self._failures = 0

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == "half_open" or self._failures >= self.failure_threshold:
            self._state = "open"
            self._opened_at = self._clock()


class _SessionLog:
    """What the wrapper needs to rebuild one of *its* sessions: the
    ``open`` arguments plus the chronological add/retract log."""

    __slots__ = ("schema", "dependencies", "engine", "ops")

    def __init__(self, schema: str, dependencies: list[str],
                 engine: str | None) -> None:
        self.schema = schema
        self.dependencies = list(dependencies)
        self.engine = engine
        self.ops: list[tuple[str, str]] = []


class _ResilienceCore(_OpsMixin):
    """Book-keeping shared by the sync and async retrying clients."""

    def __init__(self, host: str, port: int, *,
                 policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 rng: random.Random | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._host = host
        self._port = port
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._sessions: dict[str, _SessionLog] = {}
        self._replaying = False
        #: Always-on local tallies (mirrored into the observer).
        self.counters: TallyCounter = TallyCounter()

    # -- counters / spans ---------------------------------------------------

    def _tick(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        get_observer().add(name, amount)

    def _check_circuit(self) -> None:
        if not self.breaker.allow():
            self._tick("client.retry.circuit_open")
            raise CircuitOpenError(
                "circuit breaker is open after "
                f"{self.breaker.failures} consecutive failures",
                retry_after=self.breaker.retry_after())

    def _classify(self, op: str, error: Exception) -> str | None:
        """The retry class of ``error``: a code string, or ``None`` for
        errors that must surface immediately (no retry, no breaker).

        For typed server errors the verdict comes from the command
        registry (:func:`repro.core.commands.retry_safe`): ``overloaded``
        is a pre-execution rejection and always safe to resend, while
        ``timeout`` may have executed server-side and is only resent for
        commands whose declared wire schema marks them read-only.
        Connection-level failures stay op-agnostic — the ``(epoch,
        generation)`` replay machinery heals any divergence they cause.
        """
        if isinstance(error, ServerError):
            if error.retryable and commands.retry_safe(op, error.code):
                return error.code
            return None
        if isinstance(error, (ConnectionError, TimeoutError, OSError)):
            return "connection"
        return None  # pragma: no cover - nothing else is caught

    # -- session log --------------------------------------------------------

    def tracked_sessions(self) -> tuple[str, ...]:
        """Names of sessions this wrapper opened (and would replay)."""
        return tuple(self._sessions)

    def _can_recover(self, op: str, params: dict[str, Any]) -> bool:
        """Whether an ``unknown_session`` for this request is healable:
        the wrapper opened (and still tracks) the named session."""
        if self._replaying or op in ("open", "close"):
            return False
        return params.get("session") in self._sessions

    def _note_success(self, op: str, params: dict[str, Any],
                      result: dict[str, Any]) -> None:
        if self._replaying:
            return  # replays re-issue logged ops; never re-log them
        if op == "open":
            self._sessions[params["name"]] = _SessionLog(
                params["schema"], list(params.get("dependencies", [])),
                params.get("engine"))
        elif op == "close":
            self._sessions.pop(params.get("session"), None)
        elif op == "add" and result.get("added"):
            log = self._sessions.get(params.get("session"))
            if log is not None:
                log.ops.append(("add", params["dependency"]))
        elif op == "retract":
            log = self._sessions.get(params.get("session"))
            if log is not None:
                log.ops.append(("retract", params["dependency"]))


class RetryingClient(_ResilienceCore):
    """The blocking :class:`~repro.serve.client.Client` with retries,
    reconnects, session replay and a circuit breaker.

    >>> with RetryingClient.connect(host, port) as client:  # doctest: +SKIP
    ...     client.open("s", "R(A, B, C)", ["R(A) -> R(B)"])
    ...     client.implies("s", "R(A) -> R(B)")   # survives overload/drops
    True
    """

    def __init__(self, host: str, port: int, *,
                 policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 rng: random.Random | None = None,
                 timeout: float | None = 10.0,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        super().__init__(host, port, policy=policy, breaker=breaker,
                         rng=rng, clock=clock)
        self._timeout = timeout
        self._sleep = sleep
        self._client: Client | None = None

    @classmethod
    def connect(cls, host: str, port: int, **kwargs: Any) -> "RetryingClient":
        client = cls(host, port, **kwargs)
        client._ensure()
        return client

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        self._disconnect()

    # -- plumbing -----------------------------------------------------------

    def _ensure(self) -> Client:
        if self._client is None:
            self._client = Client.connect(self._host, self._port,
                                          timeout=self._timeout)
        return self._client

    def _disconnect(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:  # pragma: no cover - teardown best-effort
                pass
            self._client = None

    def _reopen(self, name: str) -> None:
        """Replay a tracked session after ``unknown_session``."""
        log = self._sessions[name]
        self._tick("client.retry.reopens")
        self._replaying = True
        try:
            self.open(name, log.schema, log.dependencies,
                      engine=log.engine, replace=True)
            for op, dependency in log.ops:
                self.request(op, session=name, dependency=dependency)
        finally:
            self._replaying = False

    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request, retrying within policy/breaker/deadline."""
        started = self._clock()
        attempt = 0
        recovered = False
        while True:
            self._check_circuit()
            try:
                result = self._ensure().request(op, **params)
            except ServerError as error:
                if (error.code == ErrorCode.UNKNOWN_SESSION
                        and not recovered and self._can_recover(op, params)):
                    recovered = True
                    self._reopen(params["session"])
                    continue  # same attempt: recovery is not a retry
                code = self._classify(op, error)
                if code is None:
                    raise
                last_error: Exception = error
            except (ConnectionError, TimeoutError, OSError) as error:
                code = "connection"
                last_error = error
                self._disconnect()
            else:
                self.breaker.record_success()
                self._note_success(op, params, result)
                return result
            self.breaker.record_failure()
            delay = self.policy.next_delay(attempt,
                                           self._clock() - started, self._rng)
            if delay is None:
                self._tick("client.retry.exhausted")
                raise last_error
            self._tick("client.retry.attempts")
            if code == "connection":
                self._tick("client.retry.reconnects")
            with get_observer().span("client.retry", op=op, attempt=attempt,
                                     code=code, sleep_s=round(delay, 6)):
                if delay > 0:
                    self._sleep(delay)
            attempt += 1

    _request = request

    @staticmethod
    def _map(result, extract):
        return extract(result)


class RetryingAsyncClient(_ResilienceCore):
    """The pipelining :class:`~repro.serve.client.AsyncClient` with the
    same retry/reconnect/replay/breaker behaviour as
    :class:`RetryingClient`.

    Concurrent requests share the breaker and the underlying
    connection; a reconnect re-dials once and every queued retry reuses
    the fresh connection.
    """

    def __init__(self, host: str, port: int, *,
                 policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 rng: random.Random | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        super().__init__(host, port, policy=policy, breaker=breaker,
                         rng=rng, clock=clock)
        self._client: AsyncClient | None = None
        self._connecting: asyncio.Lock | None = None

    @classmethod
    async def connect(cls, host: str, port: int,
                      **kwargs: Any) -> "RetryingAsyncClient":
        client = cls(host, port, **kwargs)
        await client._ensure()
        return client

    async def __aenter__(self) -> "RetryingAsyncClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        await self._disconnect()

    # -- plumbing -----------------------------------------------------------

    async def _ensure(self) -> AsyncClient:
        if self._connecting is None:
            self._connecting = asyncio.Lock()
        async with self._connecting:
            if self._client is None:
                self._client = await AsyncClient.connect(self._host,
                                                         self._port)
            return self._client

    async def _disconnect(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            await client.close()

    async def _reopen(self, name: str) -> None:
        log = self._sessions[name]
        self._tick("client.retry.reopens")
        self._replaying = True
        try:
            await self.open(name, log.schema, log.dependencies,
                            engine=log.engine, replace=True)
            for op, dependency in log.ops:
                await self.request(op, session=name, dependency=dependency)
        finally:
            self._replaying = False

    async def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request, retrying within policy/breaker/deadline."""
        started = self._clock()
        attempt = 0
        recovered = False
        while True:
            self._check_circuit()
            client = None
            try:
                client = await self._ensure()
                result = await client.request(op, **params)
            except ServerError as error:
                if (error.code == ErrorCode.UNKNOWN_SESSION
                        and not recovered and self._can_recover(op, params)):
                    recovered = True
                    await self._reopen(params["session"])
                    continue  # same attempt: recovery is not a retry
                code = self._classify(op, error)
                if code is None:
                    raise
                last_error: Exception = error
            except (ConnectionError, TimeoutError, OSError) as error:
                code = "connection"
                last_error = error
                if self._client is client:
                    await self._disconnect()
            else:
                self.breaker.record_success()
                self._note_success(op, params, result)
                return result
            self.breaker.record_failure()
            delay = self.policy.next_delay(attempt,
                                           self._clock() - started, self._rng)
            if delay is None:
                self._tick("client.retry.exhausted")
                raise last_error
            self._tick("client.retry.attempts")
            if code == "connection":
                self._tick("client.retry.reconnects")
            with get_observer().span("client.retry", op=op, attempt=attempt,
                                     code=code, sleep_s=round(delay, 6)):
                if delay > 0:
                    await asyncio.sleep(delay)
            attempt += 1

    _request = request

    @staticmethod
    async def _map(awaitable, extract):
        return extract(await awaitable)
