"""The asyncio reasoning server: sessions over TCP with worker offload.

The server exposes :class:`repro.core.session.Session` as a network
service speaking the :mod:`repro.serve.protocol` wire format.  Three
concerns shape the design, the same ones that shape a model-inference
server:

* **Session management** — :class:`SessionManager` owns named sessions
  with LRU eviction (``max_sessions``) and idle-TTL eviction
  (``idle_ttl``), so a long-running server sheds abandoned state
  instead of accumulating it.  Every eviction is counted and traced
  (``serve.evict`` spans, reason ``"lru"`` or ``"idle"``).

* **Worker offload** — cold closures are CPU-bound kernel runs; with
  ``workers > 0`` they are dispatched to a ``ProcessPoolExecutor`` so
  the event loop stays responsive and multiple cold requests compute in
  parallel.  The parent ships the session's pickled
  :class:`~repro.core.plan.CompiledPlan` — serialised **once** per
  ``(session, epoch, generation)`` (:meth:`ManagedSession.plan_payload`)
  — and workers memoise the unpickled plan per ``(epoch, generation)``
  (the :class:`repro.batch.BulkReasoner` pickled-plan warm-up; the
  epoch is a server-unique id minted per opened session so a name
  re-opened after close/eviction/``replace`` never hits a plan warmed
  for its predecessor, and the generation changes because served
  sessions *edit* Σ), and
  ship back ``(X⁺, DB, fired)`` so the parent seeds its session cache
  with exact provenance — hot left-hand sides are then answered inline
  from the cache without touching the pool.  Σ edits bump the session's
  generation; an offloaded result computed against a stale generation
  is discarded and re-dispatched, never seeded.

* **Backpressure + deadlines** — at most ``max_inflight`` requests run
  server-wide and at most ``max_pending_per_conn`` per connection;
  excess requests receive an immediate typed ``overloaded`` error
  instead of being queued without bound.  Each admitted request runs
  under ``request_timeout`` and times out to a typed ``timeout`` error.
  On SIGTERM/SIGINT the server stops accepting, answers new requests
  with ``shutting_down``, drains in-flight work (bounded by
  ``drain_timeout``) and only then shuts the pool down.

Instrumentation: always-on plain counters surfaced through the
``metrics`` op, plus :mod:`repro.obs` spans (``serve.request``,
``serve.queue_wait``, ``serve.evict``) and counters when an observer is
installed.  Span parenting is best-effort under concurrency — see
docs/SERVER.md.
"""

from __future__ import annotations

import asyncio
import pickle
import signal
import time
from collections import Counter as TallyCounter
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable

from ..attributes.nested import NestedAttribute
from ..attributes.parser import parse_attribute
from ..core import commands
from ..core.closure import ClosureResult
from ..core.engine import closure_of_masks_fast
from ..core.session import Session
from ..dependencies.dependency import Dependency
from ..exceptions import ReproError
from ..obs import get_observer
from ..store import SessionStore
from .faults import FaultAction, FaultInjector, FaultPlan
from .protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    Request,
    decode_request,
    encode,
    error_response,
    ok_response,
)

__all__ = ["ServeConfig", "SessionManager", "ReasoningServer"]


# --------------------------------------------------------------------------
# Worker side (runs in pool processes)

#: Per-worker memo of unpickled plans, keyed by (session epoch, generation).
_WORKER_TABLES: OrderedDict | None = None

#: How many (session, generation) plans one worker keeps warm.
_WORKER_MEMO_LIMIT = 8


def _init_serve_worker() -> None:
    """Pool initializer: create the per-worker plan memo."""
    global _WORKER_TABLES
    _WORKER_TABLES = OrderedDict()


def _solve_serve(epoch: int, generation: int, plan_blob: bytes,
                 mask: int) -> tuple[int, int, frozenset[int], int, tuple, int]:
    """Run the worklist kernel for one LHS mask in a worker process.

    The expensive part — unpickling the
    :class:`~repro.core.plan.CompiledPlan` (which rebuilds the
    encoding's structural tables) — is memoised per
    ``(epoch, generation)`` so a burst of cold closures against one
    session pays it once per worker, exactly the
    :func:`repro.batch._init_worker` pickled-plan warm-up adapted to
    mutable Σ.  On a memo hit ``plan_blob`` is not even deserialised.
    ``epoch`` is the session's server-unique id
    (:attr:`ManagedSession.epoch`), *not* its name: a name re-opened
    after close/eviction/``replace`` restarts at generation 0, so
    keying by name would silently serve a plan warmed for the previous
    session's schema and Σ.
    Returns ``(mask, X⁺, blocks, passes, fired, kernel_ns)``; ``fired``
    uses the FDs-then-MVDs index order the parent's
    :meth:`Session.seed` expects (the plan's ``origin`` remap reports
    original Σ indices even though duplicates fire folded).
    """
    global _WORKER_TABLES
    if _WORKER_TABLES is None:   # tolerate pools without the initializer
        _WORKER_TABLES = OrderedDict()
    key = (epoch, generation)
    plan = _WORKER_TABLES.get(key)
    if plan is None:
        plan = pickle.loads(plan_blob)
        _WORKER_TABLES[key] = plan
        while len(_WORKER_TABLES) > _WORKER_MEMO_LIMIT:
            _WORKER_TABLES.popitem(last=False)
    else:
        _WORKER_TABLES.move_to_end(key)
    fired: set[int] = set()
    started = time.monotonic_ns()
    closure_mask, blocks, passes = closure_of_masks_fast(
        plan.encoding, mask, plan.fd_masks, plan.mvd_masks, fired=fired,
        plan=plan,
    )
    return (mask, closure_mask, blocks, passes, tuple(sorted(fired)),
            time.monotonic_ns() - started)


# --------------------------------------------------------------------------
# Configuration

@dataclass
class ServeConfig:
    """Tunables for :class:`ReasoningServer` (defaults suit tests/dev)."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port; :meth:`ReasoningServer.start`
    #: returns the actual address.
    port: int = 0
    #: Process-pool width for cold-closure offload; ``0`` computes
    #: inline in the event loop (the single-process baseline).
    workers: int = 0
    #: LRU cap on concurrently open sessions.
    max_sessions: int = 64
    #: Seconds of inactivity before a session is evicted (``None`` = never).
    idle_ttl: float | None = 300.0
    #: Server-wide cap on concurrently processing requests.
    max_inflight: int = 64
    #: Per-connection cap on concurrently processing requests.
    max_pending_per_conn: int = 32
    #: Per-request deadline in seconds (``None`` = no deadline).
    request_timeout: float | None = 30.0
    #: How long :meth:`ReasoningServer.shutdown` waits for in-flight
    #: requests before giving up on them.
    drain_timeout: float = 10.0
    #: Cadence of the idle-TTL sweep task.
    sweep_interval: float = 1.0
    #: Maximum accepted request line length in bytes.
    max_line_bytes: int = 1 << 20
    #: Graceful load shedding: with inflight at or above this fraction
    #: of ``max_inflight``, requests needing a *cold* closure are
    #: rejected ``overloaded`` while hot cache hits keep being served
    #: (``None`` disables — the default).
    shed_cold_at: float | None = None
    #: Deterministic fault injection for tests (see
    #: :mod:`repro.serve.faults`); ``None`` = no faults — production.
    fault_plan: FaultPlan | None = None
    #: Durable session persistence (see :mod:`repro.store` and
    #: docs/PERSISTENCE.md); ``None`` = in-memory only.
    data_dir: str | None = None
    #: WAL durability level: ``always`` / ``interval`` / ``off``.
    fsync: str = "interval"
    #: Compact once the live WAL segment holds this many records …
    store_compact_records: int = 4096
    #: … or this many bytes, whichever comes first.
    store_compact_bytes: int = 1 << 22
    #: ``"HOST:PORT"`` of a primary to replicate from.  Makes this node
    #: a read-only follower: it tails the primary's WAL, applies every
    #: record through the recovery path, serves read-only commands
    #: locally and rejects mutations with the typed ``not_primary``
    #: error.  Idle-TTL eviction is disabled (replicated sessions must
    #: stay resident to keep applying the stream).  See
    #: docs/REPLICATION.md.
    replicate_from: str | None = None
    #: Stable follower id for the primary's lag table (default: this
    #: node's own bound address).
    replica_id: str | None = None
    #: How long a fenced read (``min_seq``) waits for the replication
    #: tail before answering the typed ``replica_behind``.
    fence_wait: float = 2.0
    #: Follower-side long-poll duration per ``replicate.subscribe``.
    replicate_poll: float = 5.0
    #: Maximum records shipped per replication batch.
    replicate_batch: int = 256
    #: Primary-side cap on a subscribe long-poll (keeps a slow request
    #: deadline from being consumed entirely by the poll).
    replicate_max_wait: float = 25.0


# --------------------------------------------------------------------------
# Session management

class _EpochMint:
    """Mints :attr:`ManagedSession.epoch` values; ``reserve`` lets
    recovery jump the mint past every epoch it restored from disk, so
    a session opened after a restart can never collide with a restored
    one in a worker's plan memo."""

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 1

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value

    def reserve(self, floor: int) -> None:
        self._next = max(self._next, floor)


#: Module-global so epochs stay unique even across several managers
#: sharing one worker pool.
_SESSION_EPOCHS = _EpochMint()


class ManagedSession:
    """A named :class:`Session` plus its server-side bookkeeping."""

    __slots__ = ("name", "session", "epoch", "generation", "last_used",
                 "opened_at", "_plan_blob", "_plan_generation")

    def __init__(self, name: str, session: Session, now: float) -> None:
        self.name = name
        self.session = session
        #: Server-unique id for this *opening* of the name — two sessions
        #: never share an epoch, even when one replaces the other under
        #: the same name.  Worker-side plan memos key on it.
        self.epoch = _SESSION_EPOCHS.next()
        #: Bumped on every Σ edit; offloaded results are only seeded
        #: when the generation they were computed for is still current.
        self.generation = 0
        self.last_used = now
        self.opened_at = now
        self._plan_blob: bytes | None = None
        self._plan_generation = -1

    def plan_payload(self) -> bytes:
        """Pickled compiled plan for the session's *current* Σ.

        The dump is memoised per generation: a burst of offloaded
        closures between edits pickles once, and workers keyed on
        ``(epoch, generation)`` unpickle once, so plan bytes cross the
        process boundary one time per Σ revision per worker.
        """
        if self._plan_generation != self.generation:
            self._plan_blob = pickle.dumps(
                self.session.plan, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._plan_generation = self.generation
        return self._plan_blob


class SessionManager:
    """Named sessions with LRU + idle-TTL eviction.

    Pure bookkeeping — no I/O, no asyncio — so it is directly unit
    testable.  ``counters`` is the server's always-on tally; eviction
    also emits ``serve.evict`` spans and ``serve.evictions`` counters
    through the installed observer.
    """

    def __init__(self, *, max_sessions: int = 64,
                 idle_ttl: float | None = None,
                 counters: TallyCounter | None = None) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions!r}")
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.counters = counters if counters is not None else TallyCounter()
        self._sessions: "OrderedDict[str, ManagedSession]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def names(self) -> tuple[str, ...]:
        """Open session names, least recently used first."""
        return tuple(self._sessions)

    def open(self, name: str, schema: str | NestedAttribute,
             dependencies: Iterable[Dependency | str] = (), *,
             engine: str | None = None, replace: bool = False,
             now: float | None = None) -> ManagedSession:
        """Create (or, with ``replace``, recreate) a named session."""
        if name in self._sessions and not replace:
            raise ProtocolError(
                ErrorCode.SESSION_EXISTS,
                f"session {name!r} is already open (pass replace to recreate)",
            )
        try:
            root = parse_attribute(schema) if isinstance(schema, str) else schema
            session = Session(root, dependencies, engine=engine)
        except ProtocolError:
            raise
        except (ReproError, ValueError) as error:
            raise ProtocolError(ErrorCode.BAD_PARAMS, str(error)) from error
        managed = ManagedSession(name, session,
                                 time.monotonic() if now is None else now)
        self._sessions[name] = managed
        self._sessions.move_to_end(name)
        self.counters["serve.sessions_opened"] += 1
        while len(self._sessions) > self.max_sessions:
            victim, _ = self._sessions.popitem(last=False)
            self._evicted(victim, "lru")
        return managed

    def restore(self, name: str, schema: str | NestedAttribute,
                dependencies: Iterable[Dependency | str] = (), *,
                engine: str | None = None, epoch: int,
                generation: int) -> ManagedSession:
        """Rebuild a session from persisted state (recovery only).

        Unlike :meth:`open`, the session keeps the ``(epoch,
        generation)`` it had before the restart — clients tracking
        lineage (and workers memoising plans by epoch) see one
        continuous session — and the epoch mint is reserved past it so
        later opens cannot collide.  Counted as a restore, not an open.
        """
        managed = self.open(name, schema, dependencies, engine=engine,
                            replace=True)
        managed.epoch = epoch
        managed.generation = generation
        _SESSION_EPOCHS.reserve(epoch + 1)
        self.counters["serve.sessions_opened"] -= 1
        self.counters["serve.sessions_restored"] += 1
        return managed

    def snapshot_state(self) -> dict[str, dict[str, Any]]:
        """Every open session's durable state, for
        :meth:`repro.store.SessionStore.snapshot` (insertion = LRU
        order; the session's own :meth:`~repro.core.session.Session.snapshot_state`
        plus the server-side lineage pair)."""
        return {name: {**managed.session.snapshot_state(),
                       "epoch": managed.epoch,
                       "generation": managed.generation}
                for name, managed in self._sessions.items()}

    def get(self, name: str, *, now: float | None = None) -> ManagedSession:
        """Look up and LRU-touch a session; raises ``unknown_session``."""
        managed = self._sessions.get(name)
        if managed is None:
            raise ProtocolError(ErrorCode.UNKNOWN_SESSION,
                                f"no session named {name!r}")
        managed.last_used = time.monotonic() if now is None else now
        self._sessions.move_to_end(name)
        return managed

    def close(self, name: str) -> ManagedSession:
        """Explicitly close a session; raises ``unknown_session``."""
        managed = self._sessions.pop(name, None)
        if managed is None:
            raise ProtocolError(ErrorCode.UNKNOWN_SESSION,
                                f"no session named {name!r}")
        self.counters["serve.sessions_closed"] += 1
        return managed

    def peek(self, name: str) -> ManagedSession:
        """Look up a session *without* touching its LRU/idle clock."""
        managed = self._sessions.get(name)
        if managed is None:
            raise ProtocolError(ErrorCode.UNKNOWN_SESSION,
                                f"no session named {name!r}")
        return managed

    def is_current(self, managed: ManagedSession) -> bool:
        """Whether ``managed`` is still the live session for its name
        (a ``name in manager`` check is not enough — the name may have
        been re-opened as a different session object)."""
        return self._sessions.get(managed.name) is managed

    def sweep_idle(self, *, now: float | None = None) -> int:
        """Evict every session idle longer than ``idle_ttl``; returns count."""
        if self.idle_ttl is None:
            return 0
        now = time.monotonic() if now is None else now
        victims = [name for name, managed in self._sessions.items()
                   if now - managed.last_used > self.idle_ttl]
        for name in victims:
            del self._sessions[name]
            self._evicted(name, "idle")
        return len(victims)

    def _evicted(self, name: str, reason: str) -> None:
        self.counters["serve.evictions"] += 1
        self.counters[f"serve.evictions.{reason}"] += 1
        obs = get_observer()
        if obs.enabled:
            obs.add("serve.evictions")
            with obs.span("serve.evict", session=name, reason=reason):
                pass


# --------------------------------------------------------------------------
# The server

class _Connection:
    """Per-connection state: serialized writes + pending-request count."""

    __slots__ = ("writer", "pending", "_lock")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.pending = 0
        self._lock = asyncio.Lock()

    async def send(self, message: dict[str, Any]) -> None:
        async with self._lock:
            if self.writer.is_closing():
                return
            self.writer.write(encode(message))
            try:
                await self.writer.drain()
            except ConnectionError:
                pass  # peer went away mid-response; nothing to salvage

    async def send_truncated(self, message: dict[str, Any]) -> None:
        """Deliver only a prefix of the frame, then close the connection
        (the ``truncate`` fault): the peer sees a torn line and must
        treat it as a lost connection, never as a parsable response."""
        async with self._lock:
            if self.writer.is_closing():
                return
            data = encode(message)
            self.writer.write(data[:max(1, len(data) // 2)])
            try:
                await self.writer.drain()
            except ConnectionError:
                pass
            self.writer.close()


class ReasoningServer:
    """The asyncio TCP front-end over :class:`SessionManager`.

    Lifecycle follows the library's pool contract (shared with
    :class:`repro.batch.BulkReasoner`): ``async with`` the server, or
    call :meth:`start` / :meth:`shutdown` explicitly — the worker pool
    is owned by the server and never leaks on exception paths.

    >>> import asyncio
    >>> from repro.serve.client import AsyncClient
    >>> async def demo():
    ...     async with ReasoningServer() as server:
    ...         host, port = server.address
    ...         async with await AsyncClient.connect(host, port) as client:
    ...             await client.open(
    ...                 "pub", "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
    ...                 ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"])
    ...             return await client.implies(
    ...                 "pub", "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
    >>> asyncio.run(demo())
    True
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.counters: TallyCounter = TallyCounter()
        self.sessions = SessionManager(
            max_sessions=self.config.max_sessions,
            # A follower must keep every replicated session resident:
            # an idle-evicted session would make later stream records
            # unreplayable.  LRU capacity still applies — size
            # max_sessions to the primary's session count.
            idle_ttl=(None if self.config.replicate_from is not None
                      else self.config.idle_ttl),
            counters=self.counters,
        )
        self.faults: FaultInjector | None = (
            FaultInjector(self.config.fault_plan)
            if self.config.fault_plan is not None else None)
        #: Durable persistence, built (and recovered) in :meth:`start`
        #: when ``config.data_dir`` is set.
        self.store: SessionStore | None = None
        self._pool = None
        self._server: asyncio.AbstractServer | None = None
        self._address: tuple[str, int] | None = None
        self._tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._connections: set[_Connection] = set()
        self._inflight = 0
        self._draining = False
        self._stopped: asyncio.Event | None = None
        self._sweeper: asyncio.Task | None = None
        self._started_at = time.monotonic()
        #: Streaming loop when this node follows a primary (see
        #: :mod:`repro.replicate`); built in :meth:`start`.
        self.replicator = None
        # Imported lazily: repro.replicate imports serve submodules.
        from ..replicate.primary import FollowerTable

        self._followers = FollowerTable()
        #: Long-poll futures resolved by :meth:`_persist` on append.
        self._wal_waiters: list[asyncio.Future] = []
        self._admin_handlers = self._bind_admin_handlers()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (after :meth:`start`)."""
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    async def start(self) -> tuple[str, int]:
        """Recover durable state, bind, warm the pool, start the sweeper."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        if self.config.data_dir is not None and self.store is None:
            # Recovery runs before the socket binds: a client can never
            # reach a server whose sessions are not yet rebuilt, and a
            # corrupt store refuses startup instead of serving partial
            # state.
            self.store = SessionStore(
                self.config.data_dir, fsync=self.config.fsync,
                compact_records=self.config.store_compact_records,
                compact_bytes=self.config.store_compact_bytes,
                counters=self.counters, faults=self.faults)
            self.store.start(self.sessions)
        if self.config.workers > 0:
            import concurrent.futures

            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.config.workers,
                initializer=_init_serve_worker,
            )
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
            limit=self.config.max_line_bytes,
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._started_at = time.monotonic()
        if (self.config.idle_ttl is not None
                and self.config.replicate_from is None):
            self._sweeper = asyncio.get_running_loop().create_task(
                self._sweep_loop())
        if self.config.replicate_from is not None:
            from ..replicate.follower import Replicator
            from ..replicate.router import parse_address

            host, port = parse_address(self.config.replicate_from)
            self.replicator = Replicator(
                self.sessions, self.store, host, port,
                follower_id=(self.config.replica_id
                             or f"{self._address[0]}:{self._address[1]}"),
                poll_wait=self.config.replicate_poll,
                batch=self.config.replicate_batch,
                counters=self.counters)
            self.replicator.start()
        return self._address

    async def __aenter__(self) -> "ReasoningServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain.  Call as soon as
        the server is started — before announcing readiness — so an
        early signal cannot hit the default (non-draining) handler."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.shutdown()))
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platforms without signal support

    async def serve_forever(self, *, handle_signals: bool = True) -> None:
        """Run until :meth:`shutdown` (or SIGTERM/SIGINT) completes."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        if handle_signals:
            self.install_signal_handlers()
        await self._stopped.wait()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight work, release the pool.

        Idempotent; concurrent callers all wait for the first shutdown
        to finish.  With ``drain=True`` (the SIGTERM path) requests
        already admitted get up to ``drain_timeout`` seconds to finish
        and their responses are delivered before connections close.
        """
        if self._stopped is None:
            return  # never started
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self.replicator is not None:
            await self.replicator.stop()
        # Wake pending subscribe long-polls so draining followers get
        # their (possibly empty) batch instead of a cancelled request.
        self._wake_wal_waiters()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._tasks:
            _done, pending = await asyncio.wait(
                set(self._tasks), timeout=self.config.drain_timeout)
            for task in pending:
                task.cancel()
        else:
            for task in list(self._tasks):
                task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        for conn in list(self._connections):
            conn.writer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self.store is not None:
            self.store.close()
        self._stopped.set()

    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.sweep_interval)
            self.sessions.sweep_idle()

    # -- connection handling -----------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.counters["serve.connections"] += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # over-long line or dropped peer: cannot resync
                if not line or not line.endswith(b"\n"):
                    break  # EOF (a trailing partial line is ignored)
                if line.strip():
                    self._admit(conn, line)
        except asyncio.CancelledError:
            pass  # server shutdown closes connections deliberately
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._connections.discard(conn)
            writer.close()

    def _admit(self, conn: _Connection, line: bytes) -> None:
        """Decode one request line and either reject or schedule it."""
        try:
            request = decode_request(line)
        except ProtocolError as error:
            self._count("serve.errors")
            self._count(f"serve.errors.{error.code}")
            self._respond(conn, error_response(_recover_id(line), error.code,
                                               error.message))
            return
        if request.op == "health":
            # Liveness must stay observable when the server is sick:
            # health bypasses backpressure, draining refusal and fault
            # injection, and never counts against the inflight caps.
            self._count("serve.requests")
            self._count("serve.requests.health")
            self._respond(conn, ok_response(request.id, self._health()))
            return
        if self._draining:
            self._respond(conn, error_response(
                request.id, ErrorCode.SHUTTING_DOWN,
                "server is draining for shutdown"))
            return
        if (conn.pending >= self.config.max_pending_per_conn
                or self._inflight >= self.config.max_inflight):
            self._count("serve.overloads")
            self._respond(conn, error_response(
                request.id, ErrorCode.OVERLOADED,
                f"server at capacity (inflight={self._inflight}, "
                f"connection pending={conn.pending}); retry later"))
            return
        conn.pending += 1
        self._inflight += 1
        task = asyncio.get_running_loop().create_task(
            self._process(conn, request))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _respond(self, conn: _Connection, message: dict[str, Any]) -> None:
        task = asyncio.get_running_loop().create_task(conn.send(message))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _process(self, conn: _Connection, request: Request) -> None:
        obs = get_observer()
        started = time.monotonic()
        fault = (self.faults.decide(request.op)
                 if self.faults is not None else None)
        try:
            if fault is not None:
                self._count("serve.fault.injected")
                self._count(f"serve.fault.{fault.kind}")
                if await self._inject_pre(conn, request, fault):
                    return  # the fault consumed the request
            with obs.span("serve.request", op=request.op,
                          id=str(request.id)) as span:
                try:
                    handler = self._execute(request)
                    if self.config.request_timeout is not None:
                        result = await asyncio.wait_for(
                            handler, self.config.request_timeout)
                    else:
                        result = await handler
                except asyncio.TimeoutError:
                    self._count("serve.timeouts")
                    span.set(error=ErrorCode.TIMEOUT)
                    await conn.send(error_response(
                        request.id, ErrorCode.TIMEOUT,
                        f"request exceeded the "
                        f"{self.config.request_timeout}s deadline"))
                except ProtocolError as error:
                    self._count("serve.errors")
                    self._count(f"serve.errors.{error.code}")
                    span.set(error=error.code)
                    await conn.send(error_response(
                        request.id, error.code, error.message))
                except (ReproError, ValueError, TypeError) as error:
                    self._count("serve.errors")
                    self._count(f"serve.errors.{ErrorCode.BAD_PARAMS}")
                    span.set(error=ErrorCode.BAD_PARAMS)
                    await conn.send(error_response(
                        request.id, ErrorCode.BAD_PARAMS, str(error)))
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 — typed wire error
                    self._count("serve.errors")
                    self._count(f"serve.errors.{ErrorCode.INTERNAL}")
                    span.set(error=ErrorCode.INTERNAL)
                    await conn.send(error_response(
                        request.id, ErrorCode.INTERNAL,
                        f"{type(error).__name__}: {error}"))
                else:
                    span.set(ok=True)
                    await self._deliver(conn, request, result, fault)
        finally:
            conn.pending -= 1
            self._inflight -= 1
            obs.observe("serve.request_ms",
                        (time.monotonic() - started) * 1000.0)

    # -- fault application (tests only; see repro.serve.faults) --------------

    async def _inject_pre(self, conn: _Connection, request: Request,
                          fault: FaultAction) -> bool:
        """Apply the pre-execution part of a fault; ``True`` = consumed.

        ``delay`` sleeps and lets the request proceed; ``error``
        answers with the injected retryable code *instead of*
        executing; ``drop``/``when="pre"`` closes the connection before
        the request runs (so it never changes state).  ``drop(post)``
        and ``truncate`` return ``False`` — they apply at delivery.
        """
        obs = get_observer()
        if fault.kind == "delay":
            with obs.span("serve.fault", op=request.op, kind="delay",
                          seconds=fault.seconds):
                await asyncio.sleep(fault.seconds)
            return False
        if fault.kind == "error":
            with obs.span("serve.fault", op=request.op, kind="error",
                          code=fault.code):
                pass
            await conn.send(error_response(
                request.id, fault.code,
                f"injected fault ({fault.code}); retry later"))
            return True
        if fault.kind == "drop" and fault.when == "pre":
            with obs.span("serve.fault", op=request.op, kind="drop",
                          when="pre"):
                pass
            conn.writer.close()
            return True
        return False

    async def _deliver(self, conn: _Connection, request: Request,
                       result: dict[str, Any],
                       fault: FaultAction | None) -> None:
        """Send a success response, applying delivery-side faults."""
        message = ok_response(request.id, result)
        if fault is not None and fault.kind == "truncate":
            with get_observer().span("serve.fault", op=request.op,
                                     kind="truncate"):
                await conn.send_truncated(message)
            return
        await conn.send(message)
        if fault is not None and fault.kind == "drop" and fault.when == "post":
            with get_observer().span("serve.fault", op=request.op,
                                     kind="drop", when="post"):
                pass
            conn.writer.close()

    # -- request execution ---------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        """Tick an always-on tally and mirror it into the observer."""
        self.counters[name] += amount
        get_observer().add(name, amount)

    async def _execute(self, request: Request) -> dict[str, Any]:
        """Registry dispatch: build the typed command, run it.

        No per-op branching lives here any more — the command registry
        (:mod:`repro.core.commands`) supplies validation
        (:func:`~repro.core.commands.from_wire`), the offload seam
        (:meth:`~repro.core.commands.Command.lhs_masks`, prefetched
        through the worker pool) and execution under the uniform
        ``command.run`` span.  Server-scope commands (ping, open, …)
        resolve through the handler table built from the same registry
        in :meth:`_bind_admin_handlers`.
        """
        self._count("serve.requests")
        self._count(f"serve.requests.{request.op}")
        try:
            command = commands.from_wire(request.op, request.params)
        except KeyError:                                    # pragma: no cover
            raise ProtocolError(ErrorCode.UNKNOWN_OP,        # guarded by
                                f"unhandled op {request.op!r}")  # decode_request
        spec = command.spec
        if self.replicator is not None and not spec.read_only:
            # Followers are read-only: one primary serializes the WAL.
            raise ProtocolError(
                ErrorCode.NOT_PRIMARY,
                f"this node is a read-only replica; send mutations to "
                f"the primary at {self.replicator.primary_name}")
        if (self.replicator is not None and spec.scope == "session"
                and "min_seq" in request.params):
            # Bounded staleness: the read fence waits for the tail.
            await self._fence(request.params["min_seq"])
        if spec.scope == "server":
            result = self._admin_handlers[spec.name](command)
            if asyncio.iscoroutine(result):
                result = await result  # replicate.subscribe long-polls
            if self.store is not None and not spec.read_only:
                # open/close mutated the manager: durable before the
                # response leaves the server; the WAL position rides on
                # the result so clients can fence replica reads with it
                result = {**result,
                          "seq": self._persist(request.op, request.params)}
            return result

        managed = self.sessions.get(command.session)
        session = managed.session
        # The offload seam: every LHS closure the command declares is
        # resolved first — cold masks compute on the worker pool (with
        # shed-cold backpressure and stale-generation protection) and
        # seed the cache, so the command itself runs against warm state.
        masks = tuple(dict.fromkeys(command.lhs_masks(session)))
        if masks:
            if len(masks) == 1:
                await self._result_for_mask(managed, masks[0])
            else:
                await asyncio.gather(*(self._result_for_mask(managed, mask)
                                       for mask in masks))
        elif spec.cost == "cold" and self._shedding_cold():
            # Cold work not expressible as LHS closures (cover, keys,
            # …) cannot be partially shed — near capacity it is
            # rejected outright, like any other cold closure.
            self._count("serve.shed_cold")
            raise ProtocolError(
                ErrorCode.OVERLOADED,
                f"shedding cold closure work near capacity "
                f"(inflight={self._inflight}); retry later")
        outcome = commands.execute(command, session)
        if outcome.mutated:
            managed.generation += 1
            if self.store is not None:
                # WAL-before-response: only *actual* mutations are
                # logged (an add of a present member neither bumps the
                # generation nor writes a record), so replay re-executes
                # exactly what changed state.  The position rides on the
                # result as the client's read fence.
                return {**outcome.result,
                        "seq": self._persist(request.op, request.params)}
        return outcome.result

    def _persist(self, op: str, params: dict[str, Any]) -> int:
        """Append one acknowledged mutation to the WAL; compact when
        the live segment crosses a threshold.  Returns the record's
        sequence number and wakes any subscribe long-polls."""
        seq = self.store.append(op, params)
        if self.store.should_compact():
            self.store.compact(self.sessions.snapshot_state())
        self._wake_wal_waiters()
        return seq

    def _wake_wal_waiters(self) -> None:
        waiters, self._wal_waiters = self._wal_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(True)

    async def _wait_for_append(self, timeout: float) -> bool:
        """Park a subscribe long-poll until the next append (or timeout)."""
        waiter = asyncio.get_running_loop().create_future()
        self._wal_waiters.append(waiter)
        try:
            await asyncio.wait_for(waiter, timeout)
            return True
        except asyncio.TimeoutError:
            return False
        finally:
            if waiter in self._wal_waiters:
                self._wal_waiters.remove(waiter)

    async def _fence(self, min_seq: Any) -> None:
        """Hold a fenced replica read until ``applied_seq >= min_seq``."""
        if (not isinstance(min_seq, int) or isinstance(min_seq, bool)
                or min_seq < 0):
            raise ProtocolError(ErrorCode.BAD_PARAMS,
                                "'min_seq' must be a non-negative integer")
        replicator = self.replicator
        obs = get_observer()
        with obs.span("replicate.fence", min_seq=min_seq,
                      applied_seq=replicator.applied_seq) as span:
            ok = await replicator.wait_for_seq(min_seq,
                                               self.config.fence_wait)
            span.set(ok=ok)
        if not ok:
            self._count("serve.fence_timeouts")
            raise ProtocolError(
                ErrorCode.REPLICA_BEHIND,
                f"replica at seq {replicator.applied_seq} did not reach "
                f"the min_seq={min_seq} fence within "
                f"{self.config.fence_wait}s; retry another node or the "
                f"primary at {replicator.primary_name}")

    def _bind_admin_handlers(self) -> dict[str, Any]:
        """Server-scope handlers, resolved from the registry by name.

        Registering a new server-scope command without adding its
        ``_op_<name>`` method (dots in wire names map to underscores:
        ``replicate.subscribe`` → ``_op_replicate_subscribe``) fails
        here at construction time — the same no-silent-drift guarantee
        the import-time registry check gives session-scope commands.
        """
        return {name: getattr(self, f"_op_{name.replace('.', '_')}")
                for name, cls in commands.REGISTRY.items()
                if cls.spec.wire and cls.spec.scope == "server"}

    def _op_ping(self, command: commands.Ping) -> dict[str, Any]:
        return {"pong": True, "version": PROTOCOL_VERSION,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "sessions": len(self.sessions)}

    def _op_health(self, command: commands.Health) -> dict[str, Any]:
        # Normally answered in _admit before the gates; kept here so the
        # registry's server-scope set is fully handled regardless.
        return self._health()

    def _op_metrics(self, command: commands.Metrics) -> dict[str, Any]:
        return self._metrics(command.session)

    def _op_open(self, command: commands.Open) -> dict[str, Any]:
        managed = self.sessions.open(
            command.name, command.schema, list(command.dependencies),
            engine=command.engine, replace=command.replace)
        return {"name": command.name, "sigma": len(managed.session),
                "engine": managed.session.engine.name}

    def _op_close(self, command: commands.Close) -> dict[str, Any]:
        managed = self.sessions.close(command.session)
        return {"closed": command.session, "sigma": len(managed.session)}

    # -- replication (see repro.replicate and docs/REPLICATION.md) -----------

    def _require_wal(self) -> "SessionStore":
        if self.store is None:
            raise ProtocolError(
                ErrorCode.BAD_PARAMS,
                "replication needs a WAL: start this node with --data-dir")
        return self.store

    async def _op_replicate_subscribe(
            self, command: commands.ReplicateSubscribe) -> dict[str, Any]:
        from ..replicate.primary import encode_batch

        store = self._require_wal()
        limit = command.max_records or self.config.replicate_batch
        if limit < 1:
            raise ProtocolError(ErrorCode.BAD_PARAMS,
                                "'max_records' must be >= 1")
        wait = min(command.wait or 0.0, self.config.replicate_max_wait)
        self._followers.seen(command.follower, command.from_seq)
        obs = get_observer()
        with obs.span("replicate.ship", follower=command.follower or "?",
                      from_seq=command.from_seq) as span:
            records = store.records_since(command.from_seq, limit)
            deadline = time.monotonic() + wait
            while (records is not None and not records
                   and not self._draining):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if not await self._wait_for_append(remaining):
                    break
                records = store.records_since(command.from_seq, limit)
            if records is None:
                # the tail is not contiguously servable from from_seq:
                # ship a snapshot bootstrap instead
                self._count("replicate.resets_served")
                span.set(records=0, last_seq=store.last_seq)
                return {"records": [], "last_seq": store.last_seq,
                        "reset": {"last_seq": store.last_seq,
                                  "sessions": self.sessions.snapshot_state()}}
            span.set(records=len(records), last_seq=store.last_seq)
            if records:
                self._count("replicate.shipped", len(records))
            return {"records": encode_batch(records),
                    "last_seq": store.last_seq}

    def _op_replicate_ack(
            self, command: commands.ReplicateAck) -> dict[str, Any]:
        store = self._require_wal()
        acked = self._followers.ack(command.follower, command.seq)
        self._count("replicate.acks")
        return {"acked": acked, "last_seq": store.last_seq}

    def _op_replicate_status(
            self, command: commands.ReplicateStatus) -> dict[str, Any]:
        return self._replication_status()

    def _replication_status(self) -> dict[str, Any]:
        last_seq = self.store.last_seq if self.store is not None else 0
        status: dict[str, Any] = {
            "role": ("replica" if self.replicator is not None
                     else "primary" if self.store is not None
                     else "ephemeral"),
            "last_seq": last_seq,
        }
        if self.replicator is not None:
            status["replica"] = self.replicator.status()
        if len(self._followers):
            status["followers"] = self._followers.stats(last_seq)
        return status

    # -- closure evaluation (the offload seam) -------------------------------

    async def _result_for_mask(self, managed: ManagedSession,
                               mask: int) -> ClosureResult:
        """A closure result, offloaded to the pool when cold and possible.

        Cache hits (and every query when ``workers == 0``) are answered
        inline.  Offloaded runs are tagged with the session generation
        they computed against; if Σ was edited while the worker ran, the
        stale result is discarded and the query re-dispatched (bounded,
        then inline) — the session cache never sees a stale seed.
        """
        session = managed.session
        if not session.is_cached(mask) and self._shedding_cold():
            # Graceful load shedding: near capacity the server keeps
            # answering hot cache hits (microseconds) and sheds the
            # expensive cold kernel runs — the retryable rejection is
            # far cheaper than computing a closure we cannot afford.
            self._count("serve.shed_cold")
            raise ProtocolError(
                ErrorCode.OVERLOADED,
                f"shedding cold closure work near capacity "
                f"(inflight={self._inflight}); retry later")
        if self._pool is None or session.is_cached(mask):
            return session.result_for_mask(mask)
        loop = asyncio.get_running_loop()
        obs = get_observer()
        for _attempt in range(3):
            generation = managed.generation
            self._count("serve.pool_dispatches")
            dispatched_ns = time.monotonic_ns()
            with obs.span("serve.queue_wait", session=managed.name,
                          lhs=format(mask, "#x")) as span:
                try:
                    (_mask, closure_mask, blocks, passes, fired,
                     kernel_ns) = await loop.run_in_executor(
                        self._pool, _solve_serve, managed.epoch, generation,
                        managed.plan_payload(), mask)
                except RuntimeError:
                    # Pool torn down mid-flight (shutdown race): fall
                    # back to the inline path below.
                    break
                span.set(kernel_ns=kernel_ns,
                         wait_ns=(time.monotonic_ns() - dispatched_ns
                                  - kernel_ns))
            if managed.generation == generation:
                result = ClosureResult(session.encoding, mask, closure_mask,
                                       blocks, passes, frozenset(fired))
                if self.sessions.is_current(managed):
                    session.seed(mask, result, fired)
                return result
            self._count("serve.stale_discards")
        return session.result_for_mask(mask)

    # -- health / shedding ---------------------------------------------------

    def _shedding_cold(self) -> bool:
        """Whether the cold-closure shedding threshold is crossed."""
        threshold = self.config.shed_cold_at
        if threshold is None:
            return False
        return self._inflight >= max(1, int(threshold
                                            * self.config.max_inflight))

    def _health(self) -> dict[str, Any]:
        """The ``health`` op payload (answered before admission gates)."""
        shedding = self._shedding_cold()
        status = ("draining" if self._draining
                  else "shedding" if shedding else "ok")
        health: dict[str, Any] = {
            "status": status,
            "version": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "sessions": len(self.sessions),
            "inflight": self._inflight,
            "draining": self._draining,
            "shedding": shedding,
        }
        if self.faults is not None:
            health["faults"] = self.faults.stats()
        if self.store is not None:
            health["store"] = self.store.stats()
        if self.store is not None or self.replicator is not None:
            health["replication"] = self._replication_status()
        return health

    # -- metrics -------------------------------------------------------------

    def _metrics(self, only: Any = None) -> dict[str, Any]:
        if only is not None and not isinstance(only, str):
            raise ProtocolError(ErrorCode.BAD_PARAMS,
                                "'session' must be a string")
        now = time.monotonic()
        server = {
            "uptime_s": round(now - self._started_at, 3),
            "sessions": len(self.sessions),
            "inflight": self._inflight,
            "workers": self.config.workers,
            "draining": self._draining,
            "counters": dict(self.counters),
        }
        if self.store is not None:
            server["store"] = self.store.stats()
        names = (only,) if only is not None else self.sessions.names()
        sessions: dict[str, Any] = {}
        for name in names:
            managed = self.sessions.peek(name)
            info = managed.session.cache_info()
            sessions[name] = {
                "sigma": len(managed.session),
                "engine": info.engine,
                "generation": managed.generation,
                "computed": info.computed,
                "hits": info.hits,
                "warm_starts": info.warm_starts,
                "invalidations": info.invalidations,
                "retained": info.retained,
                "idle_s": round(now - managed.last_used, 3),
            }
        return {"server": server, "sessions": sessions}


def _recover_id(line: bytes) -> int | str | None:
    """Best-effort id extraction from a rejected request line."""
    import json

    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if isinstance(data, dict):
        request_id = data.get("id")
        if isinstance(request_id, (int, str)) and not isinstance(request_id,
                                                                 bool):
            return request_id
    return None
