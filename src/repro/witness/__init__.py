"""Completeness machinery: exact-agreement pairs and witness instances."""

from .agreement import PairRealizer
from .construct import Witness, build_witness

__all__ = ["PairRealizer", "Witness", "build_witness"]
