"""Realising exact agreement patterns between two values (Section 4.2).

The completeness construction of the paper starts from two tuples
``t₁, t₂ ∈ dom(N)`` that "are coincident on exactly all attributes which
are functionally determined by some fixed X" — i.e. whose *agreement set*
``{M ∈ Sub(N) | π_M(t₁) = π_M(t₂)}`` is exactly the principal ideal of a
prescribed element ``C`` (there: ``C = X⁺``).

Agreement sets are always down-closed and join-closed, hence principal
ideals in the finite lattice; conversely *every* principal ideal is
realisable, constructively:

* flat attribute, ``C = A``: the same constant; ``C = λ``: two distinct
  constants;
* record: componentwise;
* list ``L[P]``, ``C = λ``: lists of *different lengths* — projections
  preserve length, so the two values then disagree even on ``L[λ]``;
* list ``L[P]``, ``C = L[C']``: equal-length lists whose first elements
  realise exact agreement on ``C'`` inside ``P`` and whose remaining
  elements coincide.

Fresh constants are drawn per flat attribute (from its universe domain
when registered, else from an unbounded integer supply), so the two
values differ wherever — and only wherever — they must.
"""

from __future__ import annotations

from typing import Iterator

from ..attributes.nested import Flat, ListAttr, NestedAttribute, Null, Record
from ..attributes.subattribute import bottom, is_subattribute
from ..attributes.universe import Universe
from ..exceptions import NotASubattributeError
from ..values.value import OK, Value

__all__ = ["PairRealizer"]


class PairRealizer:
    """Factory of value pairs with a prescribed exact agreement element.

    Parameters
    ----------
    universe:
        Optional domain registry; registered flat attributes draw their
        fresh constants from their domain's :meth:`fresh` supply
        (failing loudly if it is too small), unregistered ones from an
        integer counter.
    list_length:
        Length used for the *agreeing* stretch of generated lists
        (default 1, the minimal faithful choice; larger values produce
        more realistic-looking data without changing agreement sets).

    Example
    -------
    >>> from repro.attributes import parse_attribute, parse_subattribute
    >>> from repro.values import project
    >>> N = parse_attribute("R(A, L[B])")
    >>> C = parse_subattribute("R(A, L[λ])", N)
    >>> t1, t2 = PairRealizer().realize(N, C)
    >>> project(N, C, t1) == project(N, C, t2)
    True
    >>> t1 == t2
    False
    """

    def __init__(self, universe: Universe | None = None, list_length: int = 1) -> None:
        if list_length < 1:
            raise ValueError("list_length must be at least 1")
        self.universe = universe if universe is not None else Universe()
        self.list_length = list_length
        self._supplies: dict[str, Iterator[Value]] = {}

    # -- constants ---------------------------------------------------------

    def fresh(self, attribute: Flat) -> Value:
        """The next unused constant for a flat attribute."""
        supply = self._supplies.get(attribute.name)
        if supply is None:
            supply = self.universe.domain_of(attribute).fresh()
            self._supplies[attribute.name] = supply
        return next(supply)

    # -- single values ------------------------------------------------------

    def make(self, attribute: NestedAttribute) -> Value:
        """One value of ``dom(attribute)`` built from fresh constants."""
        if isinstance(attribute, Null):
            return OK
        if isinstance(attribute, Flat):
            return self.fresh(attribute)
        if isinstance(attribute, Record):
            return tuple(self.make(component) for component in attribute.components)
        if isinstance(attribute, ListAttr):
            return tuple(
                self.make(attribute.element) for _ in range(self.list_length)
            )
        raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover

    # -- pairs ---------------------------------------------------------------

    def realize(self, root: NestedAttribute,
                agreement: NestedAttribute) -> tuple[Value, Value]:
        """Two values of ``dom(root)`` agreeing on exactly ``Sub(agreement)``.

        Raises
        ------
        NotASubattributeError
            If ``agreement ≰ root``.
        """
        if not is_subattribute(agreement, root):
            raise NotASubattributeError(
                f"{agreement} is not a subattribute of {root}"
            )
        return self._realize(root, agreement)

    def _realize(self, root: NestedAttribute,
                 agreement: NestedAttribute) -> tuple[Value, Value]:
        if agreement == root:
            shared = self.make(root)
            return (shared, shared)
        if isinstance(root, Flat):
            # agreement == λ here (the == root case is above).
            return (self.fresh(root), self.fresh(root))
        if isinstance(root, Record):
            assert isinstance(agreement, Record)
            pairs = [
                self._realize(component_root, component_agreement)
                for component_root, component_agreement in zip(
                    root.components, agreement.components
                )
            ]
            return (
                tuple(first for first, _ in pairs),
                tuple(second for _, second in pairs),
            )
        if isinstance(root, ListAttr):
            if isinstance(agreement, Null):
                # Different lengths: disagreement on L[λ] and everything
                # above it, because projections preserve length.
                short = tuple(
                    self.make(root.element) for _ in range(self.list_length)
                )
                long = tuple(
                    self.make(root.element) for _ in range(self.list_length + 1)
                )
                return (short, long)
            assert isinstance(agreement, ListAttr)
            head_first, head_second = self._realize(root.element, agreement.element)
            tail = tuple(self.make(root.element) for _ in range(self.list_length - 1))
            return ((head_first,) + tail, (head_second,) + tail)
        if isinstance(root, Null):  # pragma: no cover - agreement == root above
            return (OK, OK)
        raise TypeError(f"not a nested attribute: {root!r}")  # pragma: no cover


def _module_self_check() -> None:  # pragma: no cover - executed by tests
    """Tiny smoke check kept importable for the doctest harness."""
    from ..attributes.parser import parse_attribute

    realizer = PairRealizer()
    root = parse_attribute("R(A, L[B])")
    first, second = realizer.realize(root, bottom(root))
    assert first != second
