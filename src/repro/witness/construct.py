"""Two-tuple block-combination witnesses (the completeness construction).

Section 4.2 of the paper proves completeness of the Theorem 4.6 rules by
building, for a fixed left-hand side ``X``, an instance that

* satisfies every dependency of ``Σ``, and
* violates every FD ``X → Y`` with ``Y ≰ X⁺`` and every MVD ``X ↠ Y``
  whose right-hand side is not a join of dependency-basis elements.

The instance "initially contains two elements t₁, t₂ which are coincident
on exactly all attributes functionally determined by X.  Afterwards new
elements are generated … by exhaustively combining values from t₁ on some
``W ⊆ X^M`` and the values from t₂ on ``X^M ∖ W``."  Well-definedness of
the combinations rests on the invariant that for distinct blocks ``W, W'``
the meet ``W ⊓ W'`` is functionally determined by ``X`` (its basis
attributes are possessed by neither block), which Algorithm 5.1
establishes by adding ``Ṽ ⊓ Ṽ^C`` to the closure — the mixed meet rule in
action.

This module turns the proof into an executable oracle: the witness is an
*Armstrong-style* instance for the left-hand side ``X``, giving the test
suite a semantic completeness check that is entirely independent of the
inference rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..attributes.encoding import BasisEncoding
from ..attributes.nested import NestedAttribute
from ..attributes.universe import Universe
from ..dependencies.dependency import Dependency
from ..dependencies.satisfaction import satisfies, satisfies_all
from ..dependencies.sigma import DependencySet
from ..exceptions import WitnessConstructionError
from ..values.join import amalgamate
from ..values.projection import project
from ..values.value import Value
from ..core.closure import ClosureResult, compute_closure
from .agreement import PairRealizer

__all__ = ["Witness", "build_witness"]

#: Guard against 2^k blow-up; the verification workloads stay far below.
_MAX_BLOCKS = 16


@dataclass(frozen=True)
class Witness:
    """The constructed instance together with its ingredients.

    Attributes
    ----------
    closure_result:
        The Algorithm 5.1 output the construction is based on.
    t1 / t2:
        The two seed tuples, agreeing exactly on ``Sub(X⁺)``.
    free_blocks:
        The dependency-basis blocks not inside ``X⁺`` (``W₁,…,Wₖ`` in the
        paper's notation), as attribute masks.
    instance:
        All ``2^k`` block combinations of ``t1`` and ``t2``.
    """

    closure_result: ClosureResult
    t1: Value
    t2: Value
    free_blocks: tuple[int, ...]
    instance: frozenset

    @property
    def root(self) -> NestedAttribute:
        return self.closure_result.encoding.root

    def violates(self, dependency: Dependency) -> bool:
        """Whether the witness refutes ``Σ ⊨ dependency``."""
        return not satisfies(self.root, self.instance, dependency)


def build_witness(
    sigma: DependencySet,
    x: NestedAttribute,
    *,
    encoding: BasisEncoding | None = None,
    universe: Universe | None = None,
    verify: bool = True,
) -> Witness:
    """Construct the Section 4.2 witness instance for left-hand side ``x``.

    Parameters
    ----------
    sigma:
        The dependency set ``Σ``.
    x:
        The fixed left-hand side ``X ∈ Sub(N)``.
    encoding:
        Optional pre-built basis encoding of the root.
    universe:
        Optional domain registry for the generated constants.
    verify:
        When ``True`` (default), the construction checks that the result
        actually satisfies ``Σ`` and raises
        :class:`WitnessConstructionError` otherwise.  This should never
        fire; it is the runtime shadow of the paper's completeness proof.

    Raises
    ------
    WitnessConstructionError
        If a block-meet invariant is violated or (with ``verify``) the
        instance fails ``Σ`` — both would indicate an implementation bug.
    """
    enc = BasisEncoding.of(sigma.root, encoding)
    result = compute_closure(enc, x, sigma)
    closure_mask = result.closure_mask

    free_blocks = tuple(
        sorted(block for block in result.blocks if block & ~closure_mask)
    )
    if len(free_blocks) > _MAX_BLOCKS:
        raise WitnessConstructionError(
            f"{len(free_blocks)} free blocks would need 2^{len(free_blocks)} "
            "tuples; refusing"
        )

    # Invariant from the paper: distinct blocks share only X⁺-determined
    # basis attributes.  (Blocks inside X⁺ trivially comply.)
    for first, second in combinations(free_blocks, 2):
        overlap = first & second
        if overlap & ~closure_mask:
            raise WitnessConstructionError(
                "block meet escapes the closure: "
                f"{enc.describe(first)} ⊓ {enc.describe(second)} = "
                f"{enc.describe(overlap)} ≰ X⁺"
            )

    realizer = PairRealizer(universe)
    t1, t2 = realizer.realize(enc.root, result.closure)

    instance = set()
    for take in range(1 << len(free_blocks)):
        first_mask = closure_mask
        second_mask = closure_mask
        for position, block in enumerate(free_blocks):
            if take >> position & 1:
                first_mask |= block
            else:
                second_mask |= block
        first_attr = enc.decode(first_mask)
        second_attr = enc.decode(second_mask)
        combined = amalgamate(
            enc.root,
            first_attr,
            second_attr,
            project(enc.root, first_attr, t1),
            project(enc.root, second_attr, t2),
        )
        instance.add(combined)

    witness = Witness(result, t1, t2, free_blocks, frozenset(instance))

    if verify and not satisfies_all(enc.root, witness.instance, sigma):
        raise WitnessConstructionError(
            "constructed witness does not satisfy Σ — implementation bug"
        )
    return witness
