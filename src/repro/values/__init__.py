"""Value model for nested attributes: domains, projections, joins.

Implements Definitions 3.3 (domains) and 3.6 (projection functions), the
generalised join of Section 4 (Theorem 4.4), amalgamation of compatible
partial values, and seeded random generation of values and instances.
"""

from .value import (
    OK,
    Instance,
    Ok,
    Value,
    format_instance,
    format_value,
    is_valid_value,
    validate_instance,
    validate_value,
)
from .projection import agreement_holds, project, project_instance
from .join import amalgamate, compatible, generalised_join, generalized_join
from .generator import ValueGenerator

__all__ = [
    "OK", "Ok", "Value", "Instance",
    "is_valid_value", "validate_value", "validate_instance",
    "format_value", "format_instance",
    "project", "project_instance", "agreement_holds",
    "amalgamate", "compatible", "generalised_join", "generalized_join",
    "ValueGenerator",
]
