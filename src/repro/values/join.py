"""Amalgamation and the generalised join ``⋈`` (Section 4, Theorem 4.4).

Fagin's classical result connects MVDs to lossless binary decompositions;
the paper generalises it: ``r ⊆ dom(N)`` satisfies ``X ↠ Y`` exactly when
``r = π_{X⊔Y}(r) ⋈ π_{X⊔Y^C}(r)`` (Theorem 4.4), where the *generalised
join* of ``r₁ ⊆ dom(A)`` and ``r₂ ⊆ dom(B)`` is::

    r₁ ⋈ r₂ = { t ∈ dom(A ⊔ B) | ∃ t₁ ∈ r₁, t₂ ∈ r₂ :
                π_A(t) = t₁ and π_B(t) = t₂ }

The computational core is *amalgamation*: two values ``t₁ ∈ dom(A)``,
``t₂ ∈ dom(B)`` combine into a (unique) ``t ∈ dom(A ⊔ B)`` if and only if
they agree on the meet ``A ⊓ B``.  Uniqueness holds because projections
onto ``A`` and ``B`` jointly determine a value of ``A ⊔ B``: records
amalgamate componentwise, and two lists that agree on at least the shared
length ``L[λ] ≤ A ⊓ B`` amalgamate pointwise.  (Agreement on the meet is
what can fail — e.g. different list lengths — in which case the pair
simply contributes nothing to the join.)
"""

from __future__ import annotations

from typing import Iterable

from ..attributes.lattice import meet as attr_meet
from ..attributes.nested import ListAttr, NestedAttribute, Record
from ..attributes.subattribute import is_subattribute
from ..exceptions import IncompatibleValuesError, NotAnElementError
from .projection import project
from .value import Value

__all__ = ["amalgamate", "compatible", "generalised_join", "generalized_join"]


def compatible(root: NestedAttribute, left_attr: NestedAttribute,
               right_attr: NestedAttribute, left: Value, right: Value) -> bool:
    """Whether two partial values agree on ``left_attr ⊓ right_attr``."""
    shared = attr_meet(root, left_attr, right_attr)
    return project(left_attr, shared, left) == project(right_attr, shared, right)


def amalgamate(root: NestedAttribute, left_attr: NestedAttribute,
               right_attr: NestedAttribute, left: Value, right: Value) -> Value:
    """Combine ``left ∈ dom(left_attr)`` and ``right ∈ dom(right_attr)``
    into the unique ``t ∈ dom(left_attr ⊔ right_attr)`` projecting onto
    both.

    Parameters
    ----------
    root:
        The ambient attribute ``N``; both operand attributes must be in
        ``Sub(root)``.

    Raises
    ------
    IncompatibleValuesError
        If the values disagree on the meet (no amalgam exists).
    NotAnElementError
        If either attribute is not a subattribute of ``root``.
    """
    if not is_subattribute(left_attr, root):
        raise NotAnElementError(f"{left_attr} is not a subattribute of {root}")
    if not is_subattribute(right_attr, root):
        raise NotAnElementError(f"{right_attr} is not a subattribute of {root}")
    if not compatible(root, left_attr, right_attr, left, right):
        raise IncompatibleValuesError(
            f"values disagree on {attr_meet(root, left_attr, right_attr)}: "
            f"{left!r} vs {right!r}"
        )
    return _amalgamate(root, left_attr, right_attr, left, right)


def _amalgamate(root: NestedAttribute, left_attr: NestedAttribute,
                right_attr: NestedAttribute, left: Value, right: Value) -> Value:
    # When one side subsumes the other, its value *is* the amalgam
    # (compatibility guarantees the subsumed projection matches).
    if is_subattribute(right_attr, left_attr):
        return left
    if is_subattribute(left_attr, right_attr):
        return right
    if isinstance(root, Record):
        assert isinstance(left_attr, Record) and isinstance(right_attr, Record)
        return tuple(
            _amalgamate(component_root, la, ra, lv, rv)
            for component_root, la, ra, lv, rv in zip(
                root.components,
                left_attr.components,
                right_attr.components,
                left,
                right,
            )
        )
    if isinstance(root, ListAttr):
        # Both sides are lifted lists here (λ would be ≤ the other side).
        assert isinstance(left_attr, ListAttr) and isinstance(right_attr, ListAttr)
        if len(left) != len(right):  # pragma: no cover - ruled out by compatibility
            raise IncompatibleValuesError(
                f"list lengths differ ({len(left)} vs {len(right)}) despite "
                "compatible meet — invariant violation"
            )
        return tuple(
            _amalgamate(root.element, left_attr.element, right_attr.element, lv, rv)
            for lv, rv in zip(left, right)
        )
    raise AssertionError(  # pragma: no cover
        f"unreachable amalgamation case under {root}"
    )


def generalised_join(root: NestedAttribute, left_attr: NestedAttribute,
                     right_attr: NestedAttribute, left_instance: Iterable[Value],
                     right_instance: Iterable[Value]) -> frozenset:
    """The generalised join ``r₁ ⋈ r₂`` over ``dom(left_attr ⊔ right_attr)``.

    Pairs that disagree on the meet contribute nothing; compatible pairs
    contribute their unique amalgam.  Quadratic in the instance sizes —
    adequate for the library's verification workloads (a hash-join on the
    meet projection is used to prune pairs).
    """
    shared = attr_meet(root, left_attr, right_attr)
    buckets: dict[Value, list[Value]] = {}
    for right_value in right_instance:
        buckets.setdefault(project(right_attr, shared, right_value), []).append(right_value)
    result = set()
    for left_value in left_instance:
        key = project(left_attr, shared, left_value)
        for right_value in buckets.get(key, ()):
            result.add(_amalgamate(root, left_attr, right_attr, left_value, right_value))
    return frozenset(result)


#: American-spelling alias.
generalized_join = generalised_join
