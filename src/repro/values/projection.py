"""Projection functions ``π^N_M : dom(N) → dom(M)`` (Definition 3.6).

The existence of a projection for every ``M ≤ N`` is what makes the
informal reading of the subattribute relation ("``M`` comprises at most as
much information as ``N``") precise:

* ``π^N_N`` is the identity,
* ``π^N_λ`` is the constant ``ok`` function,
* records project componentwise,
* lists project **elementwise, preserving order and length** — this is the
  crucial difference from set-based nesting: projecting a list onto
  ``L[λ]`` keeps its length, so list lengths are first-class information
  (the source of the non-maximal basis attributes and ultimately of the
  paper's new *mixed meet* inference rule).
"""

from __future__ import annotations

from typing import Iterable

from ..attributes.nested import ListAttr, NestedAttribute, Null, Record
from ..attributes.subattribute import is_subattribute
from ..exceptions import NotASubattributeError
from .value import OK, Value

__all__ = ["project", "project_instance", "agreement_holds"]


def project(parent: NestedAttribute, target: NestedAttribute, value: Value) -> Value:
    """Compute ``π^parent_target(value)`` for ``target ≤ parent``.

    Raises
    ------
    NotASubattributeError
        If ``target ≰ parent`` (no projection function exists).

    Example
    -------
    >>> from repro.attributes import parse_attribute, parse_subattribute
    >>> N = parse_attribute("Visit[Drink(Beer, Pub)]")
    >>> M = parse_subattribute("Visit[Drink(Pub)]", N)
    >>> project(N, M, (("Lübzer", "Deanos"), ("Kindl", "Highflyers")))
    ((ok, 'Deanos'), (ok, 'Highflyers'))

    (each list element keeps its position and length; the pruned ``Beer``
    component collapses to the ``ok`` placeholder of its ``λ`` slot)
    """
    if not is_subattribute(target, parent):
        raise NotASubattributeError(f"{target} is not a subattribute of {parent}")
    return _project(parent, target, value)


def _project(parent: NestedAttribute, target: NestedAttribute, value: Value) -> Value:
    if target == parent:
        return value
    if isinstance(target, Null):
        return OK
    if isinstance(parent, Record):
        assert isinstance(target, Record)
        return tuple(
            _project(component_parent, component_target, component_value)
            for component_parent, component_target, component_value in zip(
                parent.components, target.components, value
            )
        )
    if isinstance(parent, ListAttr):
        assert isinstance(target, ListAttr)
        return tuple(_project(parent.element, target.element, element) for element in value)
    raise AssertionError(  # pragma: no cover - flat handled by the two cases above
        f"unreachable projection case {target} ≤ {parent}"
    )


def project_instance(parent: NestedAttribute, target: NestedAttribute,
                     instance: Iterable[Value]) -> frozenset:
    """The projection ``π_target(r) = {π^parent_target(t) | t ∈ r}``.

    Being a *set*, the projection deduplicates — two tuples that agree on
    ``target`` contribute one projected tuple (Section 4's definition).
    """
    return frozenset(project(parent, target, value) for value in instance)


def agreement_holds(parent: NestedAttribute, target: NestedAttribute,
                    left: Value, right: Value) -> bool:
    """Whether two values of ``dom(parent)`` agree on ``target``."""
    return project(parent, target, left) == project(parent, target, right)
