"""Values of nested attributes: ``dom(N)`` (Definition 3.3).

The domains are

* ``dom(λ) = {ok}`` — represented by the singleton :data:`OK`,
* ``dom(A)`` for flat ``A`` — any hashable Python constant,
* ``dom(L(N₁,…,Nₖ))`` — ``k``-tuples of component values, represented by
  Python tuples,
* ``dom(L[N])`` — finite lists over ``dom(N)``, represented by Python
  tuples as well (immutability keeps values hashable so instances can be
  plain ``set``/``frozenset`` objects).

Whether a tuple means "record" or "list" is determined by the attribute a
value is interpreted against; all functions in this package therefore take
the attribute alongside the value.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..attributes.nested import Flat, ListAttr, NestedAttribute, Null, Record
from ..attributes.universe import Universe
from ..exceptions import InvalidValueError

__all__ = ["OK", "Ok", "Value", "Instance", "is_valid_value", "validate_value",
           "validate_instance", "format_value", "format_instance"]


class Ok:
    """The unique value of ``dom(λ)``.

    Projecting any value onto ``λ`` yields :data:`OK`; it is the "no
    information" witness.  A single shared instance is exported.
    """

    _instance: "Ok | None" = None

    def __new__(cls) -> "Ok":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ok"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ok)

    def __hash__(self) -> int:
        return hash("repro.ok")


#: The unique inhabitant of ``dom(λ)``.
OK = Ok()

#: Type alias: a value of some ``dom(N)`` (structure depends on ``N``).
Value = Hashable

#: Type alias: a finite set ``r ⊆ dom(N)``.
Instance = frozenset


def is_valid_value(attribute: NestedAttribute, value: Value,
                   universe: Universe | None = None) -> bool:
    """Whether ``value ∈ dom(attribute)``.

    If a ``universe`` is supplied, flat constants are additionally checked
    against their registered domains; otherwise any hashable constant is
    accepted for a flat attribute.
    """
    try:
        validate_value(attribute, value, universe)
    except InvalidValueError:
        return False
    return True


def validate_value(attribute: NestedAttribute, value: Value,
                   universe: Universe | None = None) -> None:
    """Assert ``value ∈ dom(attribute)``; raise :class:`InvalidValueError`.

    The error message pinpoints the offending sub-value.
    """
    if isinstance(attribute, Null):
        if value != OK:
            raise InvalidValueError(f"dom(λ) contains only ok, got {value!r}")
        return
    if isinstance(attribute, Flat):
        if isinstance(value, (tuple, Ok)):
            raise InvalidValueError(
                f"flat attribute {attribute.name} cannot hold structured value {value!r}"
            )
        try:
            hash(value)
        except TypeError:
            raise InvalidValueError(
                f"flat attribute {attribute.name} needs a hashable constant, got {value!r}"
            ) from None
        if universe is not None and value not in universe.domain_of(attribute):
            raise InvalidValueError(
                f"{value!r} is not in the registered domain of {attribute.name}"
            )
        return
    if isinstance(attribute, Record):
        if not isinstance(value, tuple) or len(value) != attribute.arity:
            raise InvalidValueError(
                f"dom({attribute}) holds {attribute.arity}-tuples, got {value!r}"
            )
        for component_attribute, component_value in zip(attribute.components, value):
            validate_value(component_attribute, component_value, universe)
        return
    if isinstance(attribute, ListAttr):
        if not isinstance(value, tuple):
            raise InvalidValueError(
                f"dom({attribute}) holds finite lists (tuples), got {value!r}"
            )
        for element_value in value:
            validate_value(attribute.element, element_value, universe)
        return
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


def validate_instance(attribute: NestedAttribute, instance: Iterable[Value],
                      universe: Universe | None = None) -> frozenset:
    """Validate every tuple of an instance and return it as a frozenset.

    An *instance* over ``N`` is a finite set ``r ⊆ dom(N)`` (the paper
    replaces R-relations by such sets).
    """
    checked = frozenset(instance)
    for value in checked:
        validate_value(attribute, value, universe)
    return checked


def format_value(attribute: NestedAttribute, value: Value) -> str:
    """Render a value in the paper's notation.

    Records print as ``(v₁, …, vₖ)``, lists as ``[v₁, …, vₙ]``, the null
    value as ``ok`` and flat constants via ``str``.

    Example
    -------
    >>> from repro.attributes import parse_attribute
    >>> N = parse_attribute("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    >>> format_value(N, ("Sven", ((("Lübzer", "Deanos")),)))
    '(Sven, [(Lübzer, Deanos)])'
    """
    if isinstance(attribute, Null):
        return "ok"
    if isinstance(attribute, Flat):
        return str(value)
    if isinstance(attribute, Record):
        inner = ", ".join(
            format_value(component_attribute, component_value)
            for component_attribute, component_value in zip(attribute.components, value)
        )
        return f"({inner})"
    if isinstance(attribute, ListAttr):
        inner = ", ".join(format_value(attribute.element, element) for element in value)
        return f"[{inner}]"
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


def format_instance(attribute: NestedAttribute, instance: Iterable[Value]) -> str:
    """Render an instance as a set of formatted tuples, sorted for output
    stability."""
    rows = sorted(format_value(attribute, value) for value in instance)
    inner = ",\n  ".join(rows)
    return "{\n  " + inner + "\n}" if rows else "{}"
