"""Seeded random generation of values and instances.

Used by property tests (semantic soundness of inference rules, Theorem 4.4
equivalence, triviality characterisations) and by the benchmark workloads.
Generation is deliberately *collision-friendly*: flat constants come from
small domains and list lengths from a small range, so that randomly
generated instances actually exhibit agreeing projections — otherwise
FD/MVD satisfaction would almost always hold vacuously and the tests would
exercise nothing.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..attributes.nested import Flat, ListAttr, NestedAttribute, Null, Record
from ..attributes.universe import Universe
from .value import OK, Value

__all__ = ["ValueGenerator"]


class ValueGenerator:
    """Random value/instance factory for a fixed universe.

    Parameters
    ----------
    rng:
        The random source; pass a seeded ``random.Random`` for
        reproducibility.
    universe:
        Optional domain registry; unregistered flat attributes draw small
        integers.
    max_list_length:
        Upper bound (inclusive) for generated list lengths; ``0`` is always
        possible — empty lists are legal values (the paper's Example 4.2
        contains ``(Sebastian, [])``).
    """

    def __init__(self, rng: random.Random | None = None,
                 universe: Universe | None = None,
                 max_list_length: int = 3) -> None:
        self.rng = rng if rng is not None else random.Random(0)
        self.universe = universe if universe is not None else Universe()
        if max_list_length < 0:
            raise ValueError("max_list_length must be non-negative")
        self.max_list_length = max_list_length

    def value(self, attribute: NestedAttribute) -> Value:
        """Draw one random value of ``dom(attribute)``."""
        if isinstance(attribute, Null):
            return OK
        if isinstance(attribute, Flat):
            return self.universe.domain_of(attribute).sample(self.rng)
        if isinstance(attribute, Record):
            return tuple(self.value(component) for component in attribute.components)
        if isinstance(attribute, ListAttr):
            length = self.rng.randint(0, self.max_list_length)
            return tuple(self.value(attribute.element) for _ in range(length))
        raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover

    def values(self, attribute: NestedAttribute, count: int) -> Iterator[Value]:
        """Draw ``count`` random values (duplicates possible)."""
        for _ in range(count):
            yield self.value(attribute)

    def instance(self, attribute: NestedAttribute, size: int) -> frozenset:
        """Draw a random instance of *at most* ``size`` tuples.

        Being a set, collisions shrink it — which is fine for the
        verification workloads this feeds.
        """
        return frozenset(self.values(attribute, size))
