"""JSON interchange for values, instances and reasoning problems.

The paper motivates list types with XML and semi-structured data; this
module maps the library's value model onto idiomatic JSON so real
documents can be checked against dependencies:

* record values ↔ JSON objects keyed by component *head* (label or flat
  name) when the heads are unambiguous, positional arrays otherwise;
* list values ↔ JSON arrays;
* ``ok`` (the ``λ`` placeholder of projected values) ↔ omitted object
  keys / JSON ``null``;
* flat constants ↔ JSON scalars.

A *problem file* bundles a schema and its ``Σ``::

    {
      "schema": "Pubcrawl(Person, Visit[Drink(Beer, Pub)])",
      "dependencies": ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"],
      "instance": [ {"Person": "Sven", "Visit": [ ... ]}, ... ]
    }

so reasoning sessions are reproducible artifacts (and the CLI's
``--sigma-file`` has a structured sibling).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from .attributes.nested import Flat, ListAttr, NestedAttribute, Null, Record
from .attributes.parser import parse_attribute
from .attributes.printer import unparse
from .dependencies.sigma import DependencySet
from .exceptions import InvalidValueError
from .schema import Schema
from .values.value import OK, Value

__all__ = [
    "value_to_json",
    "value_from_json",
    "instance_to_json",
    "instance_from_json",
    "Problem",
    "dump_problem",
    "load_problem",
]


def _object_keyed(record: Record) -> bool:
    """Whether the record can round-trip as a JSON object.

    ``λ`` components carry no information (they encode to nothing and
    decode to ``ok``), so only the remaining components need distinct
    heads.
    """
    heads = [
        component.head()
        for component in record.components
        if not isinstance(component, Null)
    ]
    return None not in heads and len(set(heads)) == len(heads)


def value_to_json(attribute: NestedAttribute, value: Value) -> Any:
    """Encode a value of ``dom(attribute)`` as JSON-compatible data."""
    if isinstance(attribute, Null):
        return None
    if isinstance(attribute, Flat):
        return None if value == OK else value
    if isinstance(attribute, Record):
        if _object_keyed(attribute):
            result = {}
            for component_attribute, component_value in zip(
                attribute.components, value
            ):
                if isinstance(component_attribute, Null):
                    continue  # λ slots carry nothing
                encoded = value_to_json(component_attribute, component_value)
                if encoded is not None:
                    result[component_attribute.head()] = encoded
            return result
        return [
            value_to_json(component_attribute, component_value)
            for component_attribute, component_value in zip(
                attribute.components, value
            )
        ]
    if isinstance(attribute, ListAttr):
        if value == OK:
            return None
        return [value_to_json(attribute.element, element) for element in value]
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


def value_from_json(attribute: NestedAttribute, data: Any) -> Value:
    """Decode JSON data into a value of ``dom(attribute)``.

    ``null`` (and, for object-keyed records, missing keys) decode to the
    ``ok`` placeholder — matching how projected values print.

    Raises
    ------
    InvalidValueError
        When the JSON shape does not fit the attribute.
    """
    if isinstance(attribute, Null):
        if data is not None:
            raise InvalidValueError(f"λ expects null, got {data!r}")
        return OK
    if isinstance(attribute, Flat):
        if data is None:
            return OK
        if isinstance(data, (dict, list)):
            raise InvalidValueError(
                f"flat attribute {attribute.name} expects a scalar, got {data!r}"
            )
        return data
    if isinstance(attribute, Record):
        if isinstance(data, dict):
            if not _object_keyed(attribute):
                raise InvalidValueError(
                    f"record {unparse(attribute)} has ambiguous heads; "
                    "use the positional array form"
                )
            known = {
                component.head()
                for component in attribute.components
                if not isinstance(component, Null)
            }
            stray = set(data) - known
            if stray:
                raise InvalidValueError(
                    f"unknown keys {sorted(stray)} for record {unparse(attribute)}"
                )
            return tuple(
                OK
                if isinstance(component, Null)
                else value_from_json(component, data.get(component.head()))
                for component in attribute.components
            )
        if isinstance(data, list):
            if len(data) != attribute.arity:
                raise InvalidValueError(
                    f"record {unparse(attribute)} expects {attribute.arity} "
                    f"items, got {len(data)}"
                )
            return tuple(
                value_from_json(component, item)
                for component, item in zip(attribute.components, data)
            )
        raise InvalidValueError(
            f"record {unparse(attribute)} expects an object or array, got {data!r}"
        )
    if isinstance(attribute, ListAttr):
        if data is None:
            return OK
        if not isinstance(data, list):
            raise InvalidValueError(
                f"list {unparse(attribute)} expects an array, got {data!r}"
            )
        return tuple(value_from_json(attribute.element, item) for item in data)
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


def instance_to_json(attribute: NestedAttribute, instance: Iterable[Value]) -> list:
    """Encode an instance as a JSON array, sorted for output stability."""
    encoded = [value_to_json(attribute, value) for value in instance]
    return sorted(encoded, key=lambda item: json.dumps(item, sort_keys=True,
                                                       ensure_ascii=False))


def instance_from_json(attribute: NestedAttribute, data: Iterable[Any]) -> frozenset:
    """Decode a JSON array into an instance (a frozenset of values)."""
    return frozenset(value_from_json(attribute, item) for item in data)


@dataclass(frozen=True)
class Problem:
    """A schema, its dependency set, and an optional instance."""

    schema: Schema
    sigma: DependencySet
    instance: frozenset | None = None

    def to_json(self) -> dict:
        document: dict[str, Any] = {
            "schema": unparse(self.schema.root),
            "dependencies": [
                dependency.display(self.schema.root) for dependency in self.sigma
            ],
        }
        if self.instance is not None:
            document["instance"] = instance_to_json(self.schema.root, self.instance)
        return document

    @classmethod
    def from_json(cls, document: dict) -> "Problem":
        root = parse_attribute(document["schema"])
        schema = Schema(root)
        sigma = schema.dependencies(*document.get("dependencies", []))
        instance = None
        if "instance" in document:
            instance = instance_from_json(root, document["instance"])
        return cls(schema, sigma, instance)


def dump_problem(path: str | Path, problem: Problem) -> None:
    """Write a problem file (UTF-8 JSON, human-diffable)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(problem.to_json(), handle, indent=2, ensure_ascii=False)
        handle.write("\n")


def load_problem(path: str | Path) -> Problem:
    """Read a problem file written by :func:`dump_problem`."""
    with open(path, encoding="utf-8") as handle:
        return Problem.from_json(json.load(handle))
