"""The :class:`Schema` facade — the library's friendly front door.

A :class:`Schema` bundles a root nested attribute with its (cached) basis
encoding and exposes the whole pipeline with string-friendly methods::

    >>> from repro import Schema
    >>> schema = Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
    >>> sigma = schema.dependencies(
    ...     "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")
    >>> schema.implies(sigma, "Pubcrawl(Person) -> Pubcrawl(Visit[λ])")
    True

Everything the facade does is available as composable functions in the
subpackages; the facade only adds parsing, encoding reuse and display
sugar.
"""

from __future__ import annotations

from typing import Iterable

from .attributes.encoding import BasisEncoding
from .attributes.nested import NestedAttribute
from .attributes.parser import parse_attribute, parse_subattribute
from .attributes.printer import unparse, unparse_abbreviated
from .attributes.universe import Universe
from .core.closure import ClosureResult, compute_closure
from .core.membership import equivalent as _equivalent
from .core.membership import implies as _implies
from .core.membership import minimal_cover as _minimal_cover
from .core.trace import TraceRecorder
from .dependencies.dependency import (
    Dependency,
    FunctionalDependency,
    MultivaluedDependency,
    parse_dependency,
)
from .dependencies.satisfaction import satisfies as _satisfies
from .dependencies.satisfaction import satisfies_all as _satisfies_all
from .dependencies.sigma import DependencySet
from .normalization.decompose import Decomposition, decompose_4nf
from .normalization.fourth_normal_form import is_in_4nf as _is_in_4nf
from .normalization.keys import candidate_keys as _candidate_keys
from .normalization.keys import is_superkey as _is_superkey
from .values.value import validate_instance
from .witness.construct import Witness, build_witness

__all__ = ["Schema"]


class Schema:
    """A nested attribute with cached machinery for dependency reasoning.

    Parameters
    ----------
    root:
        The nested attribute ``N``, as an attribute object or in the
        paper's textual notation.
    universe:
        Optional flat-attribute domain registry used for instance
        validation and witness construction.
    """

    def __init__(self, root: NestedAttribute | str,
                 universe: Universe | None = None) -> None:
        self.root = parse_attribute(root) if isinstance(root, str) else root
        self.universe = universe
        self.encoding = BasisEncoding(self.root)

    # -- parsing helpers -----------------------------------------------------

    def attribute(self, text: str | NestedAttribute) -> NestedAttribute:
        """Resolve (possibly abbreviated) subattribute notation."""
        if isinstance(text, NestedAttribute):
            return text
        return parse_subattribute(text, self.root)

    def dependency(self, text: str | Dependency) -> Dependency:
        """Parse one ``"X -> Y"`` / ``"X ->> Y"`` dependency."""
        if isinstance(text, (FunctionalDependency, MultivaluedDependency)):
            return text
        return parse_dependency(text, self.root)

    def dependencies(self, *texts: str | Dependency) -> DependencySet:
        """Parse a dependency set ``Σ``."""
        return DependencySet(self.root, (self.dependency(text) for text in texts))

    def show(self, element: NestedAttribute) -> str:
        """Abbreviated paper notation for an element of ``Sub(root)``."""
        return unparse_abbreviated(element, self.root)

    # -- the membership problem ------------------------------------------------

    def implies(self, sigma: DependencySet | Iterable[str | Dependency],
                dependency: str | Dependency) -> bool:
        """Decide ``Σ ⊨ σ`` (Algorithm 5.1 + Proposition 4.10)."""
        return _implies(self._sigma(sigma), self.dependency(dependency),
                        encoding=self.encoding)

    def closure(self, sigma: DependencySet | Iterable[str | Dependency],
                x: str | NestedAttribute) -> NestedAttribute:
        """The attribute-set closure ``X⁺``."""
        return self.analyse(sigma, x).closure

    def dependency_basis(self, sigma: DependencySet | Iterable[str | Dependency],
                         x: str | NestedAttribute) -> tuple[NestedAttribute, ...]:
        """The dependency basis ``DepB(X)``."""
        return self.analyse(sigma, x).dependency_basis()

    def analyse(self, sigma: DependencySet | Iterable[str | Dependency],
                x: str | NestedAttribute,
                *, trace: TraceRecorder | None = None) -> ClosureResult:
        """Run Algorithm 5.1 once, keeping the result for further queries."""
        return compute_closure(self.encoding, self.attribute(x),
                               self._sigma(sigma), trace=trace)

    def trace(self, sigma: DependencySet | Iterable[str | Dependency],
              x: str | NestedAttribute) -> TraceRecorder:
        """Run the algorithm and return the full Figures-3/4-style trace."""
        recorder = TraceRecorder()
        self.analyse(sigma, x, trace=recorder)
        return recorder

    def equivalent(self, first: DependencySet | Iterable[str | Dependency],
                   second: DependencySet | Iterable[str | Dependency]) -> bool:
        """Whether two dependency sets imply each other."""
        return _equivalent(self._sigma(first), self._sigma(second),
                           encoding=self.encoding)

    def minimal_cover(self, sigma: DependencySet | Iterable[str | Dependency]
                      ) -> DependencySet:
        """An equivalent redundancy-free subset of ``Σ``."""
        return _minimal_cover(self._sigma(sigma), encoding=self.encoding)

    # -- semantics ---------------------------------------------------------------

    def instance(self, tuples: Iterable) -> frozenset:
        """Validate a finite set of tuples against ``dom(root)``."""
        return validate_instance(self.root, tuples, self.universe)

    def satisfies(self, instance: Iterable, dependency: str | Dependency) -> bool:
        """Whether an instance satisfies a dependency (Definition 4.1)."""
        return _satisfies(self.root, instance, self.dependency(dependency))

    def satisfies_all(self, instance: Iterable,
                      sigma: DependencySet | Iterable[str | Dependency]) -> bool:
        """Whether an instance satisfies every dependency of ``Σ``."""
        return _satisfies_all(self.root, instance, self._sigma(sigma))

    def witness(self, sigma: DependencySet | Iterable[str | Dependency],
                x: str | NestedAttribute) -> Witness:
        """The Section 4.2 Armstrong-style witness instance for ``X``."""
        return build_witness(self._sigma(sigma), self.attribute(x),
                             encoding=self.encoding, universe=self.universe)

    # -- schema design -------------------------------------------------------------

    def is_superkey(self, sigma: DependencySet | Iterable[str | Dependency],
                    x: str | NestedAttribute) -> bool:
        """Whether ``Σ ⊨ X → N``."""
        return _is_superkey(self._sigma(sigma), self.attribute(x),
                            encoding=self.encoding)

    def candidate_keys(self, sigma: DependencySet | Iterable[str | Dependency],
                       **kwargs) -> tuple[NestedAttribute, ...]:
        """≤-minimal superkeys (budgeted search)."""
        return _candidate_keys(self._sigma(sigma), encoding=self.encoding, **kwargs)

    def is_in_4nf(self, sigma: DependencySet | Iterable[str | Dependency],
                  **kwargs) -> bool:
        """Generalised fourth-normal-form test."""
        return _is_in_4nf(self._sigma(sigma), encoding=self.encoding, **kwargs)

    def decompose(self, sigma: DependencySet | Iterable[str | Dependency],
                  **kwargs) -> Decomposition:
        """Lossless 4NF-style decomposition."""
        return decompose_4nf(self._sigma(sigma), encoding=self.encoding, **kwargs)

    # -- plumbing ----------------------------------------------------------------

    def _sigma(self, sigma: DependencySet | Iterable[str | Dependency]
               ) -> DependencySet:
        if isinstance(sigma, DependencySet):
            if sigma.root != self.root:
                raise ValueError("dependency set belongs to a different schema")
            return sigma
        return DependencySet(self.root, (self.dependency(item) for item in sigma))

    def __repr__(self) -> str:
        return f"Schema({unparse(self.root)!r}, |N|={self.encoding.size})"
