"""Classical relational instances: satisfaction over named tuples.

Completes the relational substrate so the RDM baseline is usable on its
own: rows are mappings from attribute names to constants, and FD/MVD
satisfaction follows the textbook definitions.  The bridge tests check
that these checkers agree with the nested Definition 4.1 semantics
through :mod:`repro.relational.bridge` on randomized inputs.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Mapping

from .schema import RelDependency, RelationSchema

__all__ = [
    "freeze_rows",
    "rel_project_row",
    "rel_satisfies_fd",
    "rel_satisfies_mvd",
    "rel_satisfies",
]

#: A row frozen for hashing: sorted (name, value) pairs.
FrozenRow = tuple


def freeze_rows(schema: RelationSchema,
                rows: Iterable[Mapping[str, object]]) -> frozenset:
    """Validate and freeze an iterable of dict rows into an instance.

    Every row must supply exactly the schema's attributes.
    """
    frozen = set()
    for row in rows:
        if set(row) != schema.attributes:
            missing = schema.attributes - set(row)
            stray = set(row) - schema.attributes
            raise ValueError(
                f"row does not fit schema {schema.name}: "
                f"missing {sorted(missing)}, stray {sorted(stray)}"
            )
        frozen.add(tuple(sorted(row.items())))
    return frozenset(frozen)


def rel_project_row(row: FrozenRow, subset: AbstractSet[str]) -> FrozenRow:
    """The restriction of a frozen row to an attribute subset."""
    return tuple((name, value) for name, value in row if name in subset)


def rel_satisfies_fd(schema: RelationSchema, instance: Iterable[FrozenRow],
                     dependency: RelDependency) -> bool:
    """Classical FD satisfaction over frozen rows."""
    lhs = schema.validate_subset(dependency.lhs)
    rhs = schema.validate_subset(dependency.rhs)
    seen: dict[FrozenRow, FrozenRow] = {}
    for row in instance:
        key = rel_project_row(row, lhs)
        image = rel_project_row(row, rhs)
        if key in seen and seen[key] != image:
            return False
        seen.setdefault(key, image)
    return True


def rel_satisfies_mvd(schema: RelationSchema, instance: Iterable[FrozenRow],
                      dependency: RelDependency) -> bool:
    """Classical MVD satisfaction: per-X-group cross product.

    ``X ↠ Y`` holds iff within each ``X``-group the set of
    ``(Y-part, (R−X−Y)-part)`` pairs is a full cross product.
    """
    lhs = schema.validate_subset(dependency.lhs)
    rhs = schema.validate_subset(dependency.rhs)
    rest = schema.attributes - lhs - rhs

    groups: dict[FrozenRow, set] = {}
    for row in instance:
        key = rel_project_row(row, lhs)
        groups.setdefault(key, set()).add(
            (rel_project_row(row, rhs), rel_project_row(row, rest))
        )
    for pairs in groups.values():
        lefts = {left for left, _ in pairs}
        rights = {right for _, right in pairs}
        if len(pairs) != len(lefts) * len(rights):
            return False
    return True


def rel_satisfies(schema: RelationSchema, instance: Iterable[FrozenRow],
                  dependency: RelDependency) -> bool:
    """Dispatch on the dependency kind."""
    if dependency.is_fd:
        return rel_satisfies_fd(schema, instance, dependency)
    return rel_satisfies_mvd(schema, instance, dependency)
