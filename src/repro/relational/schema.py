"""Flat relation schemas — the RDM specialisation (Section 1.1).

The paper notes that "the relational data model is completely covered by
the presence of tuple-valued attributes only": a relation schema
``R = {A₁,…,Aₙ}`` corresponds to the record attribute ``R(A₁,…,Aₙ)``,
whose subattribute lattice is the Boolean powerset algebra ``P(R)``.

This module provides the classical objects (schemas as frozen attribute
sets, FDs/MVDs over them) used by the independent Beeri baseline in
:mod:`repro.relational.beeri`, and :mod:`repro.relational.bridge` maps
them onto nested attributes for the parity experiments (E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Union

__all__ = ["RelationSchema", "RelFD", "RelMVD", "RelDependency"]


class RelationSchema:
    """A classical relation schema: a finite, non-empty set of names.

    Example
    -------
    >>> schema = RelationSchema(["A", "B", "C"])
    >>> sorted(schema.attributes)
    ['A', 'B', 'C']
    """

    __slots__ = ("name", "attributes")

    def __init__(self, attributes: Iterable[str], name: str = "R") -> None:
        self.name = name
        self.attributes = frozenset(attributes)
        if not self.attributes:
            raise ValueError("a relation schema needs at least one attribute")

    def validate_subset(self, subset: AbstractSet[str]) -> frozenset:
        """Check ``subset ⊆ R`` and return it frozen."""
        frozen = frozenset(subset)
        stray = frozen - self.attributes
        if stray:
            raise ValueError(f"attributes {sorted(stray)} are not in schema {self.name}")
        return frozen

    def complement(self, subset: AbstractSet[str]) -> frozenset:
        """``R − subset`` (the Boolean complement of the RDM)."""
        return self.attributes - self.validate_subset(subset)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.attributes == other.attributes and self.name == other.name

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        return f"RelationSchema({sorted(self.attributes)!r}, name={self.name!r})"


@dataclass(frozen=True)
class RelFD:
    """A relational FD ``lhs → rhs`` over attribute-name sets."""

    lhs: frozenset
    rhs: frozenset

    def __init__(self, lhs: Iterable[str], rhs: Iterable[str]) -> None:
        object.__setattr__(self, "lhs", frozenset(lhs))
        object.__setattr__(self, "rhs", frozenset(rhs))

    @property
    def is_fd(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{{{', '.join(sorted(self.lhs))}}} -> {{{', '.join(sorted(self.rhs))}}}"


@dataclass(frozen=True)
class RelMVD:
    """A relational MVD ``lhs ↠ rhs`` over attribute-name sets."""

    lhs: frozenset
    rhs: frozenset

    def __init__(self, lhs: Iterable[str], rhs: Iterable[str]) -> None:
        object.__setattr__(self, "lhs", frozenset(lhs))
        object.__setattr__(self, "rhs", frozenset(rhs))

    @property
    def is_fd(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{{{', '.join(sorted(self.lhs))}}} ->> {{{', '.join(sorted(self.rhs))}}}"


RelDependency = Union[RelFD, RelMVD]
