"""Bridging flat relational schemas and record-only nested attributes.

"Note that the relational data model is completely covered by the
presence of tuple-valued attributes only" (Section 3.1): a schema
``R = {A₁ < … < Aₙ}`` maps to the record ``R(A₁,…,Aₙ)``, attribute subsets
map to subattributes with ``λ`` at the missing positions, and FDs/MVDs
translate verbatim.  ``Sub(R(A₁,…,Aₙ))`` is then the Boolean algebra
``P(R)`` and the paper's Algorithm 5.1 degenerates to Beeri's — which
experiment E9 verifies through this bridge.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable

from ..attributes.nested import NULL, Flat, NestedAttribute, Record
from ..dependencies.dependency import (
    Dependency,
    FunctionalDependency,
    MultivaluedDependency,
)
from ..dependencies.sigma import DependencySet
from .schema import RelDependency, RelFD, RelMVD, RelationSchema

__all__ = [
    "schema_to_attribute",
    "subset_to_subattribute",
    "subattribute_to_subset",
    "dependency_to_nested",
    "dependency_to_relational",
    "sigma_to_nested",
]


def schema_to_attribute(schema: RelationSchema) -> Record:
    """``{A₁,…,Aₙ}  ↦  R(A₁,…,Aₙ)`` with names in sorted order."""
    return Record(schema.name, tuple(Flat(name) for name in sorted(schema.attributes)))


def subset_to_subattribute(schema: RelationSchema,
                           subset: AbstractSet[str]) -> Record:
    """``X ⊆ R  ↦`` the subattribute keeping exactly X's positions."""
    subset = schema.validate_subset(subset)
    return Record(
        schema.name,
        tuple(
            Flat(name) if name in subset else NULL
            for name in sorted(schema.attributes)
        ),
    )


def subattribute_to_subset(schema: RelationSchema,
                           element: NestedAttribute) -> frozenset:
    """Inverse of :func:`subset_to_subattribute`."""
    if not isinstance(element, Record) or element.label != schema.name:
        raise ValueError(f"{element} is not a subattribute of the bridged schema")
    names = sorted(schema.attributes)
    if len(names) != element.arity:
        raise ValueError(f"{element} has the wrong arity for schema {schema.name}")
    return frozenset(
        name
        for name, component in zip(names, element.components)
        if isinstance(component, Flat)
    )


def dependency_to_nested(schema: RelationSchema,
                         dependency: RelDependency) -> Dependency:
    """Translate a relational FD/MVD onto the bridged record attribute."""
    lhs = subset_to_subattribute(schema, dependency.lhs)
    rhs = subset_to_subattribute(schema, dependency.rhs)
    if dependency.is_fd:
        return FunctionalDependency(lhs, rhs)
    return MultivaluedDependency(lhs, rhs)


def dependency_to_relational(schema: RelationSchema,
                             dependency: Dependency) -> RelDependency:
    """Translate a nested FD/MVD on the bridged record back to name sets."""
    lhs = subattribute_to_subset(schema, dependency.lhs)
    rhs = subattribute_to_subset(schema, dependency.rhs)
    if isinstance(dependency, FunctionalDependency):
        return RelFD(lhs, rhs)
    return RelMVD(lhs, rhs)


def sigma_to_nested(schema: RelationSchema,
                    sigma: Iterable[RelDependency]) -> DependencySet:
    """Translate a whole relational dependency set."""
    root = schema_to_attribute(schema)
    return DependencySet(
        root, (dependency_to_nested(schema, dependency) for dependency in sigma)
    )
