"""Beeri's classical membership algorithm for the RDM ([6], 1980).

An *independent* implementation of the relational baseline that the
paper's Algorithm 5.1 generalises — independent in the strong sense that
it shares no code with the nested algorithm: it works on plain attribute-
name sets with the textbook refinement procedure.  Experiment E9 checks
that, restricted to flat record schemas, the two produce identical
dependency bases and closures.

The pieces (Beeri 1980):

* ``M(Σ)`` — replace every FD ``U → V`` by the MVDs ``U ↠ {A}``, ``A ∈ V``;
  the dependency basis w.r.t. ``Σ`` equals the one w.r.t. ``M(Σ)``.
* **Dependency basis** of ``X``: start from the single block ``R − X`` and
  refine: while some ``W ↠ Z ∈ M(Σ)`` and block ``B`` satisfy
  ``W ∩ B = ∅`` and ``∅ ≠ B ∩ Z ≠ B``, split ``B`` into ``B ∩ Z`` and
  ``B − Z``.  The full basis adds the singletons of ``X``.
* **FD membership** (the coalescence criterion): for ``A ∉ X``,
  ``Σ ⊨ X → A`` iff ``{A}`` is a basis block *and* ``A ∈ V − U`` for some
  FD ``U → V ∈ Σ``.
* **MVD membership**: ``Σ ⊨ X ↠ Y`` iff ``Y − X`` is a union of basis
  blocks.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Sequence

from .schema import RelDependency, RelMVD, RelationSchema

__all__ = [
    "mvd_counterpart",
    "relational_dependency_basis",
    "relational_closure",
    "relational_implies",
]


def mvd_counterpart(sigma: Iterable[RelDependency]) -> list[RelMVD]:
    """``M(Σ)``: FDs become one singleton MVD per right-hand attribute."""
    result: list[RelMVD] = []
    for dependency in sigma:
        if dependency.is_fd:
            result.extend(RelMVD(dependency.lhs, {a}) for a in dependency.rhs)
        else:
            result.append(RelMVD(dependency.lhs, dependency.rhs))
    return result


def relational_dependency_basis(
    schema: RelationSchema,
    x: AbstractSet[str],
    sigma: Sequence[RelDependency],
) -> frozenset:
    """``DEP(X)``: the partition blocks of ``R − X`` plus X's singletons.

    Example
    -------
    >>> schema = RelationSchema("ABCD")
    >>> basis = relational_dependency_basis(
    ...     schema, {"A"}, [RelMVD({"A"}, {"B"})])
    >>> sorted(sorted(block) for block in basis)
    [['A'], ['B'], ['C', 'D']]
    """
    x = schema.validate_subset(x)
    pool = [(mvd.lhs, mvd.rhs) for mvd in mvd_counterpart(sigma)]

    blocks: set[frozenset] = set()
    remainder = schema.attributes - x
    if remainder:
        blocks.add(remainder)

    changed = True
    while changed:
        changed = False
        for lhs, rhs in pool:
            for block in list(blocks):
                if lhs & block:
                    continue
                inside = block & rhs
                if inside and inside != block:
                    blocks.remove(block)
                    blocks.add(inside)
                    blocks.add(block - inside)
                    changed = True
    return frozenset(blocks) | {frozenset({a}) for a in x}


def relational_closure(
    schema: RelationSchema,
    x: AbstractSet[str],
    sigma: Sequence[RelDependency],
) -> frozenset:
    """The attribute closure ``X⁺`` under FDs *and* MVDs.

    Uses Beeri's coalescence criterion on the dependency basis; for
    FD-only inputs this coincides with the familiar FD closure.
    """
    x = schema.validate_subset(x)
    basis = relational_dependency_basis(schema, x, sigma)
    fd_supported = set()
    for dependency in sigma:
        if dependency.is_fd:
            fd_supported |= dependency.rhs - dependency.lhs
    extra = {
        attribute
        for block in basis
        if len(block) == 1
        for attribute in block
        if attribute in fd_supported
    }
    return frozenset(x | extra)


def relational_implies(
    schema: RelationSchema,
    sigma: Sequence[RelDependency],
    dependency: RelDependency,
) -> bool:
    """Decide ``Σ ⊨ σ`` in the classical relational model."""
    lhs = schema.validate_subset(dependency.lhs)
    rhs = schema.validate_subset(dependency.rhs)
    if dependency.is_fd:
        return rhs <= relational_closure(schema, lhs, sigma)
    basis = relational_dependency_basis(schema, lhs, sigma)
    uncovered = rhs - lhs
    union: set[str] = set()
    for block in basis:
        if block <= uncovered:
            union |= block
    return union == uncovered
