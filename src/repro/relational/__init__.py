"""Relational (RDM) specialisation and the classic Beeri baseline."""

from .schema import RelDependency, RelFD, RelMVD, RelationSchema
from .beeri import (
    mvd_counterpart,
    relational_closure,
    relational_dependency_basis,
    relational_implies,
)
from .instances import (
    freeze_rows,
    rel_project_row,
    rel_satisfies,
    rel_satisfies_fd,
    rel_satisfies_mvd,
)
from .bridge import (
    dependency_to_nested,
    dependency_to_relational,
    schema_to_attribute,
    sigma_to_nested,
    subattribute_to_subset,
    subset_to_subattribute,
)

__all__ = [
    "RelationSchema", "RelFD", "RelMVD", "RelDependency",
    "mvd_counterpart", "relational_dependency_basis", "relational_closure",
    "relational_implies",
    "schema_to_attribute", "subset_to_subattribute", "subattribute_to_subset",
    "dependency_to_nested", "dependency_to_relational", "sigma_to_nested",
    "freeze_rows", "rel_project_row", "rel_satisfies", "rel_satisfies_fd",
    "rel_satisfies_mvd",
]
