"""Parsing of nested-attribute expressions in the paper's notation.

Grammar (whitespace-insensitive)::

    attr   ::=  'λ' | 'lambda'
             |  NAME                       -- flat attribute
             |  NAME '(' attr (',' attr)* ')'   -- record-valued
             |  NAME '[' attr ']'               -- list-valued
    NAME   ::=  [A-Za-z_][A-Za-z0-9_-]*

Two entry points:

* :func:`parse_attribute` — parse an *exact* term; every ``λ`` must be
  written out.
* :func:`parse_subattribute` — parse the paper's *abbreviated* notation
  relative to a known root attribute: omitted record components are filled
  with their bottoms, and components are matched positionally (when the
  arity is complete) or by head symbol otherwise.  Ambiguous
  abbreviations — the paper's ``L(A)`` inside ``L(A, A)`` example — raise
  :class:`~repro.exceptions.AmbiguousAbbreviationError`.
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from .nested import NULL, Flat, ListAttr, NestedAttribute, Null, Record
from .printer import unparse
from .subattribute import bottom
from ..exceptions import AmbiguousAbbreviationError, AttributeSyntaxError

__all__ = ["parse_attribute", "parse_subattribute"]


class _Token(NamedTuple):
    kind: str  # "name", "lambda", "(", ")", "[", "]", ","
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lam>λ|lambda\b)
  | (?P<name>[A-Za-z_][A-Za-z0-9_-]*)
  | (?P<punct>[()\[\],])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise AttributeSyntaxError(
                f"unexpected character {text[position]!r} at offset {position} in {text!r}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        if match.lastgroup == "lam":
            yield _Token("lambda", match.group(), match.start())
        elif match.lastgroup == "name":
            yield _Token("name", match.group(), match.start())
        else:
            yield _Token(match.group(), match.group(), match.start())


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = list(_tokenize(text))
        self._cursor = 0

    def _peek(self) -> _Token | None:
        return self._tokens[self._cursor] if self._cursor < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise AttributeSyntaxError(f"unexpected end of input in {self._text!r}")
        self._cursor += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise AttributeSyntaxError(
                f"expected {kind!r} but found {token.text!r} at offset "
                f"{token.position} in {self._text!r}"
            )
        return token

    def parse(self) -> NestedAttribute:
        attribute = self._attr()
        trailing = self._peek()
        if trailing is not None:
            raise AttributeSyntaxError(
                f"trailing input {trailing.text!r} at offset {trailing.position} "
                f"in {self._text!r}"
            )
        return attribute

    def _attr(self) -> NestedAttribute:
        token = self._next()
        if token.kind == "lambda":
            return NULL
        if token.kind != "name":
            raise AttributeSyntaxError(
                f"expected an attribute but found {token.text!r} at offset "
                f"{token.position} in {self._text!r}"
            )
        following = self._peek()
        if following is not None and following.kind == "(":
            self._next()
            components = [self._attr()]
            while self._peek() is not None and self._peek().kind == ",":
                self._next()
                components.append(self._attr())
            self._expect(")")
            return Record(token.text, tuple(components))
        if following is not None and following.kind == "[":
            self._next()
            element = self._attr()
            self._expect("]")
            return ListAttr(token.text, element)
        return Flat(token.text)


def parse_attribute(text: str) -> NestedAttribute:
    """Parse an exact nested-attribute term.

    Example
    -------
    >>> str(parse_attribute("Pubcrawl(Person, Visit[Drink(Beer, Pub)])"))
    'Pubcrawl(Person, Visit[Drink(Beer, Pub)])'
    >>> parse_attribute("λ").is_null
    True
    """
    return _Parser(text).parse()


def parse_subattribute(text: str, root: NestedAttribute) -> NestedAttribute:
    """Parse the paper's abbreviated subattribute notation against a root.

    The result is a structural element of ``Sub(root)`` with all omitted
    positions filled by the appropriate bottoms.

    Example
    -------
    >>> root = parse_attribute("L1(A, B, L2[L3(C, D)])")
    >>> str(parse_subattribute("L1(A, L2[λ])", root))
    'L1(A, λ, L2[L3(λ, λ)])'

    Raises
    ------
    AttributeSyntaxError
        On malformed input, or when the term cannot be embedded in
        ``Sub(root)``.
    AmbiguousAbbreviationError
        When an omitted-λ form matches the root ambiguously.
    """
    loose = _Parser(text).parse()
    return resolve_subattribute(loose, root)


def resolve_subattribute(loose: NestedAttribute, root: NestedAttribute) -> NestedAttribute:
    """Embed an (possibly abbreviated) attribute term into ``Sub(root)``."""
    if isinstance(loose, Null):
        return bottom(root)
    if isinstance(root, Flat):
        if isinstance(loose, Flat) and loose.name == root.name:
            return root
        raise AttributeSyntaxError(f"{unparse(loose)} does not match flat attribute {root.name}")
    if isinstance(root, ListAttr):
        if isinstance(loose, ListAttr) and loose.label == root.label:
            return ListAttr(root.label, resolve_subattribute(loose.element, root.element))
        raise AttributeSyntaxError(
            f"{unparse(loose)} does not match list attribute {unparse(root)}"
        )
    if isinstance(root, Record):
        if not isinstance(loose, Record) or loose.label != root.label:
            raise AttributeSyntaxError(
                f"{unparse(loose)} does not match record attribute {unparse(root)}"
            )
        if len(loose.components) == root.arity:
            positional = _try_positional(loose, root)
            if positional is not None:
                return positional
        return _resolve_by_heads(loose, root)
    raise AttributeSyntaxError(f"{unparse(loose)} does not match {unparse(root)}")


def _try_positional(loose: Record, root: Record) -> Record | None:
    """Attempt full-arity positional resolution; ``None`` if any slot fails."""
    resolved = []
    for component, component_root in zip(loose.components, root.components):
        try:
            resolved.append(resolve_subattribute(component, component_root))
        except AttributeSyntaxError:
            return None
    return Record(root.label, tuple(resolved))


def _resolve_by_heads(loose: Record, root: Record) -> Record:
    """Match abbreviated components to root components by head symbol."""
    resolved: list[NestedAttribute | None] = [None] * root.arity
    for component in loose.components:
        head = component.head()
        if head is None:
            raise AmbiguousAbbreviationError(
                f"bare λ cannot identify a component of {unparse(root)}; "
                "use the full positional form"
            )
        matches = [
            index
            for index, component_root in enumerate(root.components)
            if component_root.head() == head
        ]
        free_matches = [index for index in matches if resolved[index] is None]
        if not matches:
            raise AttributeSyntaxError(
                f"no component of {unparse(root)} has head {head!r}"
            )
        if len(free_matches) != 1:
            raise AmbiguousAbbreviationError(
                f"component head {head!r} matches {len(matches)} components of "
                f"{unparse(root)}; the abbreviation is ambiguous — "
                "use the full positional form"
            )
        index = free_matches[0]
        resolved[index] = resolve_subattribute(component, root.components[index])
    filled = tuple(
        value if value is not None else bottom(component_root)
        for value, component_root in zip(resolved, root.components)
    )
    return Record(root.label, filled)
