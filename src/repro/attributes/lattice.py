"""Structural Brouwerian-algebra operations on ``Sub(N)`` (Section 3.3).

Theorem 3.9 of the paper: ``(Sub(N), ≤, ⊔_N, ⊓_N, ∸_N, N)`` is a
*Brouwerian algebra* (co-Heyting algebra) for every nested attribute ``N``
— the generalisation of the Boolean powerset algebra of a relation schema.
This module implements the operations by direct recursion on the structure
of ``N``, exactly following Definition 3.8:

* ``Y ⊔ Z = Z`` iff ``Y ≤ Z``; for records componentwise; for lists
  ``L[A] ⊔ L[B] = L[A ⊔ B]``;
* ``Y ⊓ Z`` dually;
* the pseudo-difference ``Z ∸ Y`` is the least ``X`` with ``Z ≤ Y ⊔ X``
  (adjunction); ``Z ∸ λ_N = Z`` and ``Z ∸ Y = λ_N`` iff ``Z ≤ Y``; for
  records componentwise, for lists ``L[B] ∸ L[A] = L[B ∸ A]`` when
  ``L[B] ≰ L[A]``;
* the Brouwerian complement is ``Y^C = N ∸ Y``.

The algebra is distributive but in general *not* Boolean: for ``N = L[A]``
and ``Y = L[λ]`` one has ``Y^C = N`` and ``Y ⊓ Y^C = Y ≠ λ`` and
``Y^CC = λ ≠ Y`` (the paper's running counterexample).

This structural implementation is the readable reference semantics; the
membership algorithm uses the equivalent (property-tested) polynomial
bitmask encoding from :mod:`repro.attributes.encoding`.

All binary operations require both operands to lie in ``Sub(N)`` for a
common root ``N``; functions take the root explicitly because the correct
result of ``∸`` and bottoms depend on it (e.g. ``λ_N`` is a record of
bottoms when ``N`` is record-valued).
"""

from __future__ import annotations

from .nested import ListAttr, NestedAttribute, Record
from .subattribute import bottom, is_subattribute
from ..exceptions import NotAnElementError

__all__ = [
    "join",
    "meet",
    "pseudo_difference",
    "complement",
    "double_complement",
    "join_all",
    "meet_all",
]


def _require_element(root: NestedAttribute, candidate: NestedAttribute) -> None:
    if not is_subattribute(candidate, root):
        raise NotAnElementError(f"{candidate} is not a subattribute of {root}")


def join(root: NestedAttribute, left: NestedAttribute, right: NestedAttribute) -> NestedAttribute:
    """The join ``left ⊔ right`` in ``Sub(root)`` (Definition 3.8).

    Example
    -------
    >>> from repro.attributes import parse_attribute as p
    >>> root = p("Drink(Beer, Pub)")
    >>> str(join(root, p("Drink(Beer, λ)"), p("Drink(λ, Pub)")))
    'Drink(Beer, Pub)'
    """
    _require_element(root, left)
    _require_element(root, right)
    return _join(root, left, right)


def _join(root: NestedAttribute, left: NestedAttribute, right: NestedAttribute) -> NestedAttribute:
    if is_subattribute(left, right):
        return right
    if is_subattribute(right, left):
        return left
    if isinstance(root, Record):
        # Both operands are records with the same label/arity here: neither
        # is comparable to the other, and λ is not below a record.
        assert isinstance(left, Record) and isinstance(right, Record)
        return Record(
            root.label,
            tuple(
                _join(component_root, l, r)
                for component_root, l, r in zip(root.components, left.components, right.components)
            ),
        )
    if isinstance(root, ListAttr):
        # Incomparable elements of Sub(L[P]) are both lifted: L[A], L[B].
        assert isinstance(left, ListAttr) and isinstance(right, ListAttr)
        return ListAttr(root.label, _join(root.element, left.element, right.element))
    raise AssertionError(  # pragma: no cover - flat/null always comparable
        f"incomparable elements {left} and {right} under flat/null root {root}"
    )


def meet(root: NestedAttribute, left: NestedAttribute, right: NestedAttribute) -> NestedAttribute:
    """The meet ``left ⊓ right`` in ``Sub(root)`` (Definition 3.8).

    Example
    -------
    >>> from repro.attributes import parse_attribute as p, unparse_abbreviated
    >>> root = p("V[D(B, P)]")
    >>> unparse_abbreviated(meet(root, p("V[D(B, λ)]"), p("V[D(λ, P)]")), root)
    'V[λ]'
    """
    _require_element(root, left)
    _require_element(root, right)
    return _meet(root, left, right)


def _meet(root: NestedAttribute, left: NestedAttribute, right: NestedAttribute) -> NestedAttribute:
    if is_subattribute(left, right):
        return left
    if is_subattribute(right, left):
        return right
    if isinstance(root, Record):
        assert isinstance(left, Record) and isinstance(right, Record)
        return Record(
            root.label,
            tuple(
                _meet(component_root, l, r)
                for component_root, l, r in zip(root.components, left.components, right.components)
            ),
        )
    if isinstance(root, ListAttr):
        assert isinstance(left, ListAttr) and isinstance(right, ListAttr)
        return ListAttr(root.label, _meet(root.element, left.element, right.element))
    raise AssertionError(  # pragma: no cover
        f"incomparable elements {left} and {right} under flat/null root {root}"
    )


def pseudo_difference(
    root: NestedAttribute, left: NestedAttribute, right: NestedAttribute
) -> NestedAttribute:
    """The pseudo-difference ``left ∸ right`` in ``Sub(root)``.

    Characterised by the adjunction (Section 3.3): for all ``X ∈ Sub(root)``

        ``left ∸ right ≤ X``  if and only if  ``left ≤ right ⊔ X``.

    In the relational special case this is ordinary set difference.

    Example
    -------
    >>> from repro.attributes import parse_attribute as p
    >>> root = p("L[A]")
    >>> str(pseudo_difference(root, p("L[A]"), p("L[λ]")))
    'L[A]'

    (the paper's non-Boolean example: removing only the list *structure*
    ``L[λ]`` from ``L[A]`` cannot discard the element data, so nothing is
    removed).
    """
    _require_element(root, left)
    _require_element(root, right)
    return _pseudo_difference(root, left, right)


def _pseudo_difference(
    root: NestedAttribute, left: NestedAttribute, right: NestedAttribute
) -> NestedAttribute:
    if is_subattribute(left, right):
        return bottom(root)
    if right == bottom(root):
        return left
    if isinstance(root, Record):
        assert isinstance(left, Record) and isinstance(right, Record)
        return Record(
            root.label,
            tuple(
                _pseudo_difference(component_root, l, r)
                for component_root, l, r in zip(root.components, left.components, right.components)
            ),
        )
    if isinstance(root, ListAttr):
        # right may be λ (handled above as bottom); here both are lifted and
        # left ≰ right, so Definition 3.8 gives L[B] ∸ L[A] = L[B ∸ A].
        assert isinstance(left, ListAttr) and isinstance(right, ListAttr)
        return ListAttr(
            root.label, _pseudo_difference(root.element, left.element, right.element)
        )
    raise AssertionError(  # pragma: no cover
        f"unreachable pseudo-difference case: {left} - {right} under {root}"
    )


def complement(root: NestedAttribute, element: NestedAttribute) -> NestedAttribute:
    """The Brouwerian complement ``element^C = root ∸ element``.

    Satisfies ``Y^C ≤ X  iff  X ⊔ Y = root`` for all ``X ∈ Sub(root)``.
    Unlike the Boolean case, ``Y ⊓ Y^C`` may exceed the bottom and
    ``Y^CC`` may be strictly below ``Y``.
    """
    _require_element(root, element)
    return _pseudo_difference(root, root, element)


def double_complement(root: NestedAttribute, element: NestedAttribute) -> NestedAttribute:
    """``element^CC`` — the join of the *maximal* basis attributes below.

    Section 4.2 of the paper uses the identity
    ``X = X^CC ⊔ (X ⊓ X^C)``: the double complement keeps exactly the part
    of ``X`` generated by maximal basis attributes, discarding the
    non-maximal remainder (e.g. bare list-length components ``L[λ]``).
    """
    return complement(root, complement(root, element))


def join_all(root: NestedAttribute, elements) -> NestedAttribute:
    """Fold :func:`join` over an iterable; empty join is ``λ_root``."""
    result = bottom(root)
    for element in elements:
        result = join(root, result, element)
    return result


def meet_all(root: NestedAttribute, elements) -> NestedAttribute:
    """Fold :func:`meet` over an iterable; empty meet is ``root``."""
    result = root
    for element in elements:
        result = meet(root, result, element)
    return result
