"""Nested-attribute algebra: types, subattributes, Brouwerian operations.

This package implements Section 3 of the paper: the nested-attribute data
model (base/record/list types), the subattribute partial order, the
Brouwerian algebra of ``Sub(N)``, the subattribute basis used by the
membership algorithm, and the supporting parser/printer for the paper's
notation.
"""

from .nested import NULL, Flat, ListAttr, NestedAttribute, Null, Record, flat, list_of, record
from .subattribute import (
    bottom,
    count_subattributes,
    covers,
    is_bottom,
    is_subattribute,
    proper_subattributes,
    subattributes,
)
from .lattice import (
    complement,
    double_complement,
    join,
    join_all,
    meet,
    meet_all,
    pseudo_difference,
)
from .basis import (
    basis,
    basis_of_element,
    basis_size,
    is_possessed_by,
    is_possessed_by_definition,
    maximal_basis,
    non_maximal_basis,
)
from .encoding import BasisEncoding, iter_bits
from .order import (
    atoms,
    coatoms,
    interval,
    lower_covers,
    maximal_chain,
    rank,
    upper_covers,
)
from .parser import parse_attribute, parse_subattribute, resolve_subattribute
from .printer import unparse, unparse_abbreviated
from .universe import DEFAULT_UNIVERSE, Domain, EnumeratedDomain, IntegerDomain, Universe

__all__ = [
    # nested
    "NestedAttribute", "Null", "NULL", "Flat", "Record", "ListAttr",
    "flat", "record", "list_of",
    # subattribute
    "is_subattribute", "bottom", "is_bottom", "subattributes",
    "proper_subattributes", "count_subattributes", "covers",
    # lattice
    "join", "meet", "pseudo_difference", "complement", "double_complement",
    "join_all", "meet_all",
    # basis
    "basis", "basis_size", "basis_of_element", "maximal_basis",
    "non_maximal_basis", "is_possessed_by", "is_possessed_by_definition",
    # encoding
    "BasisEncoding", "iter_bits",
    # order utilities
    "rank", "upper_covers", "lower_covers", "atoms", "coatoms",
    "interval", "maximal_chain",
    # parser / printer
    "parse_attribute", "parse_subattribute", "resolve_subattribute",
    "unparse", "unparse_abbreviated",
    # universe
    "Universe", "Domain", "IntegerDomain", "EnumeratedDomain", "DEFAULT_UNIVERSE",
]
