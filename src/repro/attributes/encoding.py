"""Bitmask (Birkhoff) encoding of ``Sub(N)`` — the polynomial workhorse.

Section 6 of the paper analyses Algorithm 5.1 under the convention that a
nested attribute is handled "as a set of attributes, i.e. instead of
looking at N we rather use SubB(N)".  This module makes that precise:

Since ``Sub(N)`` is a finite *distributive* lattice (every Brouwerian
algebra is distributive, Section 3.3), Birkhoff's representation theorem
identifies each element ``X ∈ Sub(N)`` with the down-closed set
``SubB(X) = {J ∈ SubB(N) | J ≤ X}`` of join-irreducible basis attributes
below it.  Encoding that set as an ``int`` bitmask over a fixed indexing of
``SubB(N)`` gives:

========================  =============================================
operation                 bitmask realisation
========================  =============================================
``X ≤ Y``                 subset test ``x & ~y == 0``
``X ⊔ Y``                 ``x | y``  (paper: ``SubB(X⊔Y)=SubB(X)∪SubB(Y)``)
``X ⊓ Y``                 ``x & y``  (paper: ``SubB(X⊓Y)=SubB(X)∩SubB(Y)``)
``X ∸ Y``                 down-closure of ``x & ~y``  (paper's §6 snippet)
``X^C``                   ``N ∸ X``
``X^CC``                  down-closure of the basis attributes
                          *possessed* by ``X``
``λ_N``                   ``0``
========================  =============================================

Possession (Definition 4.11 via the §6 characterisation): basis attribute
``i`` is possessed by ``X`` iff every basis attribute above ``i`` lies in
``SubB(X)``, i.e. ``above[i] & ~x == 0``.

The encoding is cross-checked against the structural implementation in
:mod:`repro.attributes.lattice` by property tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .basis import basis_poset
from .nested import NestedAttribute
from .subattribute import bottom, is_subattribute, subattributes
from ..exceptions import NotAnElementError

__all__ = ["BasisEncoding", "EncodingCacheInfo", "iter_bits"]

#: Default bound for the pairwise ``pseudo_difference`` cache.  Pairs are
#: evicted FIFO once the bound is hit, so a long-lived encoding (shell
#: sessions, servers) cannot grow without limit.
PAIR_CACHE_MAXSIZE = 8192

#: Default bound for the unary ``complement``/``double_complement`` caches.
UNARY_CACHE_MAXSIZE = 16384


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class EncodingCacheInfo(dict):
    """Per-operation cache statistics, ``{op: (hits, misses, size, maxsize)}``.

    A plain dict subclass so callers can both index it and print it; the
    ``hit_rate`` helper summarises across operations.
    """

    def hit_rate(self) -> float:
        hits = sum(entry[0] for entry in self.values())
        misses = sum(entry[1] for entry in self.values())
        total = hits + misses
        return hits / total if total else 0.0


class BasisEncoding:
    """The bitmask-encoded subattribute lattice of a fixed root ``N``.

    Parameters
    ----------
    root:
        The nested attribute whose ``Sub(root)`` is being encoded.

    Attributes
    ----------
    root:
        The root attribute ``N``.
    basis:
        ``SubB(N)`` as an indexed tuple; bit ``i`` of a mask stands for
        ``basis[i]``.
    size:
        ``|N| = |SubB(N)|``, the paper's complexity size measure.
    full:
        The mask of ``N`` itself (all bits set).
    below / above:
        Per-index masks of the basis attributes ``≤`` / ``≥`` the indexed
        one (both include the index itself).
    maximal:
        Mask of the maximal basis attributes ``MaxB(N)``.
    """

    __slots__ = (
        "root",
        "basis",
        "size",
        "full",
        "below",
        "above",
        "maximal",
        "_index",
        "_encode_cache",
        "_decode_cache",
        "_possessed_cache",
        "_down_tables",
        "_complement_cache",
        "_dc_cache",
        "_pd_cache",
        "_pd_maxsize",
        "_unary_maxsize",
        "_hits",
        "_misses",
    )

    def __init__(self, root: NestedAttribute) -> None:
        self.root = root
        basis_elements, below_lists = basis_poset(root)
        self.basis: tuple[NestedAttribute, ...] = basis_elements
        self.size = len(self.basis)
        self.full = (1 << self.size) - 1
        self._index = {attribute: i for i, attribute in enumerate(self.basis)}

        # The order comes structurally from basis_poset — no pairwise
        # ≤ tests, so construction stays cheap at three-digit |N|.
        self.below = tuple(below_lists)
        above = [0] * self.size
        for j, mask in enumerate(self.below):
            bit = 1 << j
            for i in iter_bits(mask):
                above[i] |= bit
        self.above = tuple(above)

        maximal = 0
        for i in range(self.size):
            if self.above[i] == 1 << i:
                maximal |= 1 << i
        self.maximal = maximal

        self._encode_cache: dict[NestedAttribute, int] = {root: self.full}
        self._decode_cache: dict[int, NestedAttribute] = {
            self.full: root,
            0: bottom(root),
        }
        self._possessed_cache: dict[int, int] = {}

        # Byte-chunked down-closure tables: ``_down_tables[c][b]`` is the
        # union of ``below[8c + j]`` over the set bits ``j`` of the byte
        # ``b`` — so a down-closure is one table-OR per non-zero byte of
        # the generator mask instead of a re-entrant per-bit loop.
        tables: list[list[int]] = []
        for chunk_start in range(0, self.size, 8):
            table = [0] * 256
            for byte in range(1, 256):
                low = byte & -byte
                index = chunk_start + low.bit_length() - 1
                prev = table[byte ^ low]
                table[byte] = prev | (
                    self.below[index] if index < self.size else 0
                )
            tables.append(table)
        self._down_tables = tuple(tables)

        # Bounded memo caches for the Brouwerian operations (§6 hot path).
        self._complement_cache: dict[int, int] = {}
        self._dc_cache: dict[int, int] = {}
        self._pd_cache: dict[tuple[int, int], int] = {}
        self._pd_maxsize = PAIR_CACHE_MAXSIZE
        self._unary_maxsize = UNARY_CACHE_MAXSIZE
        self._hits = {"complement": 0, "double_complement": 0,
                      "pseudo_difference": 0, "possessed": 0}
        self._misses = {"complement": 0, "double_complement": 0,
                        "pseudo_difference": 0, "possessed": 0}

    def __reduce__(self):
        # Rebuild from the root on unpickling: the tables are derived
        # data, and the memo caches are per-process state.  This is what
        # lets a process-pool worker receive one encoding cheaply.
        return (type(self), (self.root,))

    def require_root(self, root: NestedAttribute) -> "BasisEncoding":
        """Assert this encoding was built for ``root``; returns ``self``.

        Raises
        ------
        ValueError
            If the encoding's root differs from ``root``.  Every caller
            that accepts an optional pre-built encoding funnels through
            this check (via :meth:`of`) so the mismatch error is uniform.
        """
        if self.root != root:
            raise ValueError(
                f"encoding root mismatch: the supplied encoding is for "
                f"{self.root}, not {root}"
            )
        return self

    @classmethod
    def of(
        cls, root: NestedAttribute, encoding: "BasisEncoding | None" = None
    ) -> "BasisEncoding":
        """The canonical "optional encoding" entry point.

        Returns ``encoding`` after validating it was built for ``root``,
        or a fresh ``BasisEncoding(root)`` when ``encoding`` is None.
        Centralises the root-vs-encoding mismatch validation previously
        duplicated across ``core.membership``, ``reasoner`` and
        ``batch``.
        """
        if encoding is None:
            return cls(root)
        return encoding.require_root(root)

    # -- conversions -----------------------------------------------------

    def encode(self, element: NestedAttribute) -> int:
        """Mask of ``SubB(element)`` for ``element ∈ Sub(root)``.

        Raises
        ------
        NotAnElementError
            If ``element`` is not a subattribute of ``root``.
        """
        cached = self._encode_cache.get(element)
        if cached is not None:
            return cached
        if not is_subattribute(element, self.root):
            raise NotAnElementError(f"{element} is not a subattribute of {self.root}")
        mask = 0
        for i, candidate in enumerate(self.basis):
            if is_subattribute(candidate, element):
                mask |= 1 << i
        self._encode_cache[element] = mask
        return mask

    def decode(self, mask: int) -> NestedAttribute:
        """The element of ``Sub(root)`` whose basis set is ``mask``.

        ``mask`` must be down-closed (every down-closed mask denotes an
        element, by Birkhoff's theorem); non-down-closed masks are
        rejected to catch encoding bugs early.
        """
        cached = self._decode_cache.get(mask)
        if cached is not None:
            return cached
        if not self.is_downclosed(mask):
            raise NotAnElementError(f"mask {mask:#x} is not down-closed in Sub({self.root})")
        from .lattice import join_all  # local import to avoid cycle at import time

        generators = [self.basis[i] for i in iter_bits(self.generators(mask))]
        element = join_all(self.root, generators)
        self._decode_cache[mask] = element
        self._encode_cache[element] = mask
        return element

    def index_of(self, basis_attribute: NestedAttribute) -> int:
        """The bit index of a basis attribute."""
        try:
            return self._index[basis_attribute]
        except KeyError:
            raise NotAnElementError(
                f"{basis_attribute} is not a basis attribute of {self.root}"
            ) from None

    def principal(self, index: int) -> int:
        """The mask of the basis attribute ``basis[index]`` *as an element*
        (its principal ideal ``below[index]``)."""
        return self.below[index]

    # -- mask structure ----------------------------------------------------

    def down_close(self, generator_mask: int) -> int:
        """Down-closure: union of ``below[i]`` over the set bits.

        Implemented as one precomputed-table OR per non-zero byte of the
        generator mask (see ``_down_tables``), so the cost is
        ``O(size/8)`` table lookups rather than a per-bit loop that
        re-tests coverage after every union.
        """
        result = 0
        tables = self._down_tables
        chunk = 0
        while generator_mask:
            byte = generator_mask & 0xFF
            if byte:
                result |= tables[chunk][byte]
            generator_mask >>= 8
            chunk += 1
        return result

    def is_downclosed(self, mask: int) -> bool:
        """Whether ``mask`` denotes an element (is a down-set)."""
        if mask & ~self.full:
            return False
        for i in iter_bits(mask):
            if self.below[i] & ~mask:
                return False
        return True

    def generators(self, mask: int) -> int:
        """The maximal bits of ``mask`` (minimal generator set)."""
        result = 0
        for i in iter_bits(mask):
            if self.above[i] & mask == 1 << i:
                result |= 1 << i
        return result

    # -- Brouwerian operations on masks -----------------------------------

    @staticmethod
    def join(left: int, right: int) -> int:
        """``X ⊔ Y`` — union of basis sets."""
        return left | right

    @staticmethod
    def meet(left: int, right: int) -> int:
        """``X ⊓ Y`` — intersection of basis sets."""
        return left & right

    @staticmethod
    def le(left: int, right: int) -> bool:
        """``X ≤ Y`` — subset of basis sets."""
        return left & ~right == 0

    def pseudo_difference(self, left: int, right: int) -> int:
        """``X ∸ Y`` — the paper's §6 quadratic-time set recipe.

        Remove ``SubB(Y)`` from ``SubB(X)``, then down-close the survivors
        (every ``A`` kept pulls all of ``SubB(A)`` back in).  Memoised
        with a bounded pair cache: Algorithm 5.1 recomputes the same
        ``(W, Ṽ)`` differences on every REPEAT pass.
        """
        key = (left, right)
        cache = self._pd_cache
        cached = cache.get(key)
        if cached is not None:
            self._hits["pseudo_difference"] += 1
            return cached
        self._misses["pseudo_difference"] += 1
        result = self.down_close(left & ~right)
        if len(cache) >= self._pd_maxsize:
            # FIFO eviction: drop the oldest entry (dict preserves
            # insertion order); the working set of one closure run is far
            # below the bound, so this only trims cross-run leftovers.
            del cache[next(iter(cache))]
        cache[key] = result
        return result

    def complement(self, mask: int) -> int:
        """``X^C = N ∸ X`` (memoised)."""
        cache = self._complement_cache
        cached = cache.get(mask)
        if cached is not None:
            self._hits["complement"] += 1
            return cached
        self._misses["complement"] += 1
        result = self.down_close(self.full & ~mask)
        if len(cache) >= self._unary_maxsize:
            del cache[next(iter(cache))]
        cache[mask] = result
        return result

    def double_complement(self, mask: int) -> int:
        """``X^CC`` — down-closure of the basis attributes possessed by X.

        A basis attribute is possessed by ``X`` iff everything above it is
        in ``SubB(X)``; the double complement keeps exactly the possessed
        part, which equals the join of the maximal basis attributes of X.
        Memoised like :meth:`complement`.
        """
        cache = self._dc_cache
        cached = cache.get(mask)
        if cached is not None:
            self._hits["double_complement"] += 1
            return cached
        self._misses["double_complement"] += 1
        result = self.down_close(self.possessed(mask))
        if len(cache) >= self._unary_maxsize:
            del cache[next(iter(cache))]
        cache[mask] = result
        return result

    def possessed(self, mask: int) -> int:
        """Mask of the basis attributes *possessed* by the element ``mask``.

        Definition 4.11 / §6: ``i`` possessed iff ``i ∈ SubB(X)`` and
        ``i ∉ SubB(X^C)``, equivalently iff ``above[i] ⊆ SubB(X)``.
        Memoised: Algorithm 5.1 queries the same blocks on every pass.
        """
        cached = self._possessed_cache.get(mask)
        if cached is not None:
            self._hits["possessed"] += 1
            return cached
        self._misses["possessed"] += 1
        result = 0
        for i in iter_bits(mask):
            if self.above[i] & ~mask == 0:
                result |= 1 << i
        if len(self._possessed_cache) >= self._unary_maxsize:
            del self._possessed_cache[next(iter(self._possessed_cache))]
        self._possessed_cache[mask] = result
        return result

    # -- cache management --------------------------------------------------

    def cache_info(self) -> EncodingCacheInfo:
        """``{op: (hits, misses, current size, maxsize)}`` for the memo
        caches of the Brouwerian operations."""
        sizes = {
            "complement": (len(self._complement_cache), self._unary_maxsize),
            "double_complement": (len(self._dc_cache), self._unary_maxsize),
            "pseudo_difference": (len(self._pd_cache), self._pd_maxsize),
            "possessed": (len(self._possessed_cache), self._unary_maxsize),
        }
        return EncodingCacheInfo(
            (op, (self._hits[op], self._misses[op]) + sizes[op])
            for op in sizes
        )

    def cache_totals(self) -> tuple[int, int]:
        """Aggregate ``(hits, misses)`` across the operation memo caches.

        Cheaper than :meth:`cache_info` for the observability layer,
        which samples the totals around each closure run to attribute
        cache traffic to spans.
        """
        return sum(self._hits.values()), sum(self._misses.values())

    def cache_clear(self) -> None:
        """Drop the operation memo caches and reset their counters.

        The structural tables (``below``/``above``/down-closure tables)
        and the encode/decode caches are kept — they are derived from the
        root, not from the query stream.
        """
        self._complement_cache.clear()
        self._dc_cache.clear()
        self._pd_cache.clear()
        self._possessed_cache.clear()
        for counter in (self._hits, self._misses):
            for op in counter:
                counter[op] = 0

    def maximal_of(self, mask: int) -> int:
        """``MaxB(X)``: the maximal-in-N basis attributes below ``X``."""
        return mask & self.maximal

    # -- enumeration (test support; exponential for wide records) ---------

    def all_elements(self) -> Iterator[int]:
        """Enumerate the masks of every element of ``Sub(root)``.

        Exponential in the number of record components — intended for the
        small roots used in tests and examples.
        """
        for element in subattributes(self.root):
            yield self.encode(element)

    def decode_all(self, masks: Iterable[int]) -> tuple[NestedAttribute, ...]:
        """Decode a collection of masks, preserving iteration order."""
        return tuple(self.decode(mask) for mask in masks)

    # -- display -----------------------------------------------------------

    def describe(self, mask: int) -> str:
        """Human-readable form of an element mask (paper notation)."""
        from .printer import unparse_abbreviated

        return unparse_abbreviated(self.decode(mask), self.root)

    def __repr__(self) -> str:
        return f"BasisEncoding(root={self.root}, size={self.size})"
