"""Bitmask (Birkhoff) encoding of ``Sub(N)`` — the polynomial workhorse.

Section 6 of the paper analyses Algorithm 5.1 under the convention that a
nested attribute is handled "as a set of attributes, i.e. instead of
looking at N we rather use SubB(N)".  This module makes that precise:

Since ``Sub(N)`` is a finite *distributive* lattice (every Brouwerian
algebra is distributive, Section 3.3), Birkhoff's representation theorem
identifies each element ``X ∈ Sub(N)`` with the down-closed set
``SubB(X) = {J ∈ SubB(N) | J ≤ X}`` of join-irreducible basis attributes
below it.  Encoding that set as an ``int`` bitmask over a fixed indexing of
``SubB(N)`` gives:

========================  =============================================
operation                 bitmask realisation
========================  =============================================
``X ≤ Y``                 subset test ``x & ~y == 0``
``X ⊔ Y``                 ``x | y``  (paper: ``SubB(X⊔Y)=SubB(X)∪SubB(Y)``)
``X ⊓ Y``                 ``x & y``  (paper: ``SubB(X⊓Y)=SubB(X)∩SubB(Y)``)
``X ∸ Y``                 down-closure of ``x & ~y``  (paper's §6 snippet)
``X^C``                   ``N ∸ X``
``X^CC``                  down-closure of the basis attributes
                          *possessed* by ``X``
``λ_N``                   ``0``
========================  =============================================

Possession (Definition 4.11 via the §6 characterisation): basis attribute
``i`` is possessed by ``X`` iff every basis attribute above ``i`` lies in
``SubB(X)``, i.e. ``above[i] & ~x == 0``.

The encoding is cross-checked against the structural implementation in
:mod:`repro.attributes.lattice` by property tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .basis import basis_poset
from .nested import NestedAttribute
from .subattribute import bottom, is_subattribute, subattributes
from ..exceptions import NotAnElementError

__all__ = ["BasisEncoding", "iter_bits"]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class BasisEncoding:
    """The bitmask-encoded subattribute lattice of a fixed root ``N``.

    Parameters
    ----------
    root:
        The nested attribute whose ``Sub(root)`` is being encoded.

    Attributes
    ----------
    root:
        The root attribute ``N``.
    basis:
        ``SubB(N)`` as an indexed tuple; bit ``i`` of a mask stands for
        ``basis[i]``.
    size:
        ``|N| = |SubB(N)|``, the paper's complexity size measure.
    full:
        The mask of ``N`` itself (all bits set).
    below / above:
        Per-index masks of the basis attributes ``≤`` / ``≥`` the indexed
        one (both include the index itself).
    maximal:
        Mask of the maximal basis attributes ``MaxB(N)``.
    """

    __slots__ = (
        "root",
        "basis",
        "size",
        "full",
        "below",
        "above",
        "maximal",
        "_index",
        "_encode_cache",
        "_decode_cache",
        "_possessed_cache",
    )

    def __init__(self, root: NestedAttribute) -> None:
        self.root = root
        basis_elements, below_lists = basis_poset(root)
        self.basis: tuple[NestedAttribute, ...] = basis_elements
        self.size = len(self.basis)
        self.full = (1 << self.size) - 1
        self._index = {attribute: i for i, attribute in enumerate(self.basis)}

        # The order comes structurally from basis_poset — no pairwise
        # ≤ tests, so construction stays cheap at three-digit |N|.
        self.below = tuple(below_lists)
        above = [0] * self.size
        for j, mask in enumerate(self.below):
            bit = 1 << j
            for i in iter_bits(mask):
                above[i] |= bit
        self.above = tuple(above)

        maximal = 0
        for i in range(self.size):
            if self.above[i] == 1 << i:
                maximal |= 1 << i
        self.maximal = maximal

        self._encode_cache: dict[NestedAttribute, int] = {root: self.full}
        self._decode_cache: dict[int, NestedAttribute] = {
            self.full: root,
            0: bottom(root),
        }
        self._possessed_cache: dict[int, int] = {}

    # -- conversions -----------------------------------------------------

    def encode(self, element: NestedAttribute) -> int:
        """Mask of ``SubB(element)`` for ``element ∈ Sub(root)``.

        Raises
        ------
        NotAnElementError
            If ``element`` is not a subattribute of ``root``.
        """
        cached = self._encode_cache.get(element)
        if cached is not None:
            return cached
        if not is_subattribute(element, self.root):
            raise NotAnElementError(f"{element} is not a subattribute of {self.root}")
        mask = 0
        for i, candidate in enumerate(self.basis):
            if is_subattribute(candidate, element):
                mask |= 1 << i
        self._encode_cache[element] = mask
        return mask

    def decode(self, mask: int) -> NestedAttribute:
        """The element of ``Sub(root)`` whose basis set is ``mask``.

        ``mask`` must be down-closed (every down-closed mask denotes an
        element, by Birkhoff's theorem); non-down-closed masks are
        rejected to catch encoding bugs early.
        """
        cached = self._decode_cache.get(mask)
        if cached is not None:
            return cached
        if not self.is_downclosed(mask):
            raise NotAnElementError(f"mask {mask:#x} is not down-closed in Sub({self.root})")
        from .lattice import join_all  # local import to avoid cycle at import time

        generators = [self.basis[i] for i in iter_bits(self.generators(mask))]
        element = join_all(self.root, generators)
        self._decode_cache[mask] = element
        self._encode_cache[element] = mask
        return element

    def index_of(self, basis_attribute: NestedAttribute) -> int:
        """The bit index of a basis attribute."""
        try:
            return self._index[basis_attribute]
        except KeyError:
            raise NotAnElementError(
                f"{basis_attribute} is not a basis attribute of {self.root}"
            ) from None

    def principal(self, index: int) -> int:
        """The mask of the basis attribute ``basis[index]`` *as an element*
        (its principal ideal ``below[index]``)."""
        return self.below[index]

    # -- mask structure ----------------------------------------------------

    def down_close(self, generator_mask: int) -> int:
        """Down-closure: union of ``below[i]`` over the set bits."""
        result = 0
        remaining = generator_mask & ~result
        while remaining:
            low = remaining & -remaining
            result |= self.below[low.bit_length() - 1]
            remaining = generator_mask & ~result
        return result

    def is_downclosed(self, mask: int) -> bool:
        """Whether ``mask`` denotes an element (is a down-set)."""
        if mask & ~self.full:
            return False
        for i in iter_bits(mask):
            if self.below[i] & ~mask:
                return False
        return True

    def generators(self, mask: int) -> int:
        """The maximal bits of ``mask`` (minimal generator set)."""
        result = 0
        for i in iter_bits(mask):
            if self.above[i] & mask == 1 << i:
                result |= 1 << i
        return result

    # -- Brouwerian operations on masks -----------------------------------

    @staticmethod
    def join(left: int, right: int) -> int:
        """``X ⊔ Y`` — union of basis sets."""
        return left | right

    @staticmethod
    def meet(left: int, right: int) -> int:
        """``X ⊓ Y`` — intersection of basis sets."""
        return left & right

    @staticmethod
    def le(left: int, right: int) -> bool:
        """``X ≤ Y`` — subset of basis sets."""
        return left & ~right == 0

    def pseudo_difference(self, left: int, right: int) -> int:
        """``X ∸ Y`` — the paper's §6 quadratic-time set recipe.

        Remove ``SubB(Y)`` from ``SubB(X)``, then down-close the survivors
        (every ``A`` kept pulls all of ``SubB(A)`` back in).
        """
        return self.down_close(left & ~right)

    def complement(self, mask: int) -> int:
        """``X^C = N ∸ X``."""
        return self.down_close(self.full & ~mask)

    def double_complement(self, mask: int) -> int:
        """``X^CC`` — down-closure of the basis attributes possessed by X.

        A basis attribute is possessed by ``X`` iff everything above it is
        in ``SubB(X)``; the double complement keeps exactly the possessed
        part, which equals the join of the maximal basis attributes of X.
        """
        return self.down_close(self.possessed(mask))

    def possessed(self, mask: int) -> int:
        """Mask of the basis attributes *possessed* by the element ``mask``.

        Definition 4.11 / §6: ``i`` possessed iff ``i ∈ SubB(X)`` and
        ``i ∉ SubB(X^C)``, equivalently iff ``above[i] ⊆ SubB(X)``.
        Memoised: Algorithm 5.1 queries the same blocks on every pass.
        """
        cached = self._possessed_cache.get(mask)
        if cached is not None:
            return cached
        result = 0
        for i in iter_bits(mask):
            if self.above[i] & ~mask == 0:
                result |= 1 << i
        self._possessed_cache[mask] = result
        return result

    def maximal_of(self, mask: int) -> int:
        """``MaxB(X)``: the maximal-in-N basis attributes below ``X``."""
        return mask & self.maximal

    # -- enumeration (test support; exponential for wide records) ---------

    def all_elements(self) -> Iterator[int]:
        """Enumerate the masks of every element of ``Sub(root)``.

        Exponential in the number of record components — intended for the
        small roots used in tests and examples.
        """
        for element in subattributes(self.root):
            yield self.encode(element)

    def decode_all(self, masks: Iterable[int]) -> tuple[NestedAttribute, ...]:
        """Decode a collection of masks, preserving iteration order."""
        return tuple(self.decode(mask) for mask in masks)

    # -- display -----------------------------------------------------------

    def describe(self, mask: int) -> str:
        """Human-readable form of an element mask (paper notation)."""
        from .printer import unparse_abbreviated

        return unparse_abbreviated(self.decode(mask), self.root)

    def __repr__(self) -> str:
        return f"BasisEncoding(root={self.root}, size={self.size})"
