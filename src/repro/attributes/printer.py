"""Rendering of nested attributes in the paper's notation (Section 3.3).

Two renderers are provided:

* :func:`unparse` — the exact structural form, every ``λ`` explicit
  (``L₁(A, λ, L₂[L₃(λ, λ)])``).  Round-trips through
  :func:`repro.attributes.parser.parse_attribute`.
* :func:`unparse_abbreviated` — the paper's display convention: ``λ``
  components of records are omitted (``L₁(A, L₂[λ])``), and a record of
  bottoms collapses to ``λ``.  Abbreviation is *suppressed* (falling back
  to explicit ``λ`` placeholders) whenever omitting components would be
  ambiguous, e.g. for ``L(A, λ) ≤ L(A, A)`` which the paper notes cannot
  be shortened to ``L(A)``.
"""

from __future__ import annotations

from .nested import Flat, ListAttr, NestedAttribute, Null, Record
from .subattribute import bottom, is_subattribute
from ..exceptions import NotASubattributeError

__all__ = ["unparse", "unparse_abbreviated", "LAMBDA"]

#: The glyph used for the null attribute; the parser also accepts "lambda".
LAMBDA = "λ"


def unparse(attribute: NestedAttribute) -> str:
    """Render the exact structural form of a nested attribute."""
    if isinstance(attribute, Null):
        return LAMBDA
    if isinstance(attribute, Flat):
        return attribute.name
    if isinstance(attribute, ListAttr):
        return f"{attribute.label}[{unparse(attribute.element)}]"
    if isinstance(attribute, Record):
        inner = ", ".join(unparse(component) for component in attribute.components)
        return f"{attribute.label}({inner})"
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


def _heads_unambiguous(root: Record) -> bool:
    """Record components can be identified by head symbol alone."""
    heads = [component.head() for component in root.components]
    return len(set(heads)) == len(heads)


def unparse_abbreviated(element: NestedAttribute, root: NestedAttribute) -> str:
    """Render ``element ∈ Sub(root)`` with the paper's λ-omission rules.

    Parameters
    ----------
    element:
        The subattribute to display.
    root:
        The ambient attribute; needed because which components count as
        "bottom" (and whether omission is ambiguous) depends on it.

    Raises
    ------
    NotASubattributeError
        If ``element ≰ root``.

    Example
    -------
    >>> from repro.attributes.parser import parse_attribute as p
    >>> root = p("L1(A, B, L2[L3(C, D)])")
    >>> unparse_abbreviated(p("L1(A, λ, L2[L3(λ, λ)])"), root)
    'L1(A, L2[λ])'
    """
    if not is_subattribute(element, root):
        raise NotASubattributeError(f"{unparse(element)} is not a subattribute of {unparse(root)}")
    return _abbreviate(element, root)


def _abbreviate(element: NestedAttribute, root: NestedAttribute) -> str:
    if isinstance(element, Null):
        return LAMBDA
    if isinstance(element, Flat):
        return element.name
    if isinstance(element, ListAttr):
        assert isinstance(root, ListAttr)
        return f"{element.label}[{_abbreviate(element.element, root.element)}]"
    if isinstance(element, Record):
        assert isinstance(root, Record)
        if element == bottom(root):
            return LAMBDA
        pairs = list(zip(element.components, root.components))
        if _heads_unambiguous(root):
            shown = [
                _abbreviate(component, component_root)
                for component, component_root in pairs
                if component != bottom(component_root)
            ]
        else:
            shown = [_abbreviate(component, component_root) for component, component_root in pairs]
        return f"{element.label}({', '.join(shown)})"
    raise TypeError(f"not a nested attribute: {element!r}")  # pragma: no cover
