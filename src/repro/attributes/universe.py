"""Universes of flat attributes and their domains (Definition 3.1).

A *universe* is a finite set of flat attribute names together with a
domain ``dom(A)`` for each.  The rest of the library does not force a
universe on the caller — any :class:`~repro.attributes.nested.Flat` is a
valid attribute — but the semantic layers (value validation, random
instance generation, witness construction) consult a universe to know
which constants may populate a flat attribute.

Domains are deliberately simple: they only need membership testing,
an iterator of *fresh, pairwise-distinct* constants (for witness
construction, Section 4.2 needs "two values that differ"), and random
sampling.  :class:`IntegerDomain` (unbounded, always available) is the
default for every unregistered attribute.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Iterator, Mapping

from .nested import Flat, NestedAttribute

__all__ = ["Domain", "IntegerDomain", "EnumeratedDomain", "Universe"]


class Domain:
    """Abstract domain of a flat attribute."""

    def __contains__(self, value: Hashable) -> bool:
        raise NotImplementedError

    def sample(self, rng: random.Random) -> Hashable:
        """Draw one value uniformly-ish at random."""
        raise NotImplementedError

    def fresh(self) -> Iterator[Hashable]:
        """Yield pairwise-distinct values, as many as requested.

        Raises
        ------
        ValueError
            If the domain is exhausted (fewer distinct values than asked
            for); the library's constructions need at most a handful.
        """
        raise NotImplementedError


class IntegerDomain(Domain):
    """The unbounded integer domain — default for unregistered attributes.

    ``sample`` draws from ``range(width)`` so that random instances have
    realistic value collisions (important for exercising FD/MVD
    satisfaction); ``fresh`` counts upward from ``0`` without bound.
    """

    def __init__(self, width: int = 4) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width

    def __contains__(self, value: Hashable) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.width)

    def fresh(self) -> Iterator[int]:
        counter = 0
        while True:
            yield counter
            counter += 1

    def __repr__(self) -> str:
        return f"IntegerDomain(width={self.width})"


class EnumeratedDomain(Domain):
    """A finite domain given by an explicit iterable of constants.

    Example
    -------
    >>> beers = EnumeratedDomain(["Lübzer", "Kindl", "Guiness"])
    >>> "Kindl" in beers
    True
    """

    def __init__(self, values: Iterable[Hashable]) -> None:
        self.values = tuple(dict.fromkeys(values))  # dedupe, keep order
        if not self.values:
            raise ValueError("an enumerated domain needs at least one value")

    def __contains__(self, value: Hashable) -> bool:
        return value in self.values

    def sample(self, rng: random.Random) -> Hashable:
        return rng.choice(self.values)

    def fresh(self) -> Iterator[Hashable]:
        yield from self.values
        raise ValueError(
            f"enumerated domain exhausted after {len(self.values)} distinct values"
        )

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"EnumeratedDomain({list(self.values)!r})"


class Universe:
    """A registry mapping flat attribute names to domains.

    Unregistered names fall back to a shared :class:`IntegerDomain`, so a
    universe never *rejects* an attribute — it only refines what values
    are considered valid or get generated for it.

    Example
    -------
    >>> universe = Universe({"Beer": EnumeratedDomain(["Lübzer", "Kindl"])})
    >>> "Lübzer" in universe.domain_of("Beer")
    True
    >>> 7 in universe.domain_of("Pub")  # unregistered -> integers
    True
    """

    def __init__(self, domains: Mapping[str, Domain] | None = None, *,
                 default: Domain | None = None) -> None:
        self._domains: dict[str, Domain] = dict(domains or {})
        self._default = default if default is not None else IntegerDomain()

    def register(self, name: str, domain: Domain) -> None:
        """Assign ``domain`` to the flat attribute ``name``."""
        self._domains[name] = domain

    def domain_of(self, attribute: str | Flat) -> Domain:
        """The domain of a flat attribute (default for unregistered)."""
        name = attribute.name if isinstance(attribute, Flat) else attribute
        return self._domains.get(name, self._default)

    def names(self) -> tuple[str, ...]:
        """The explicitly registered flat attribute names."""
        return tuple(self._domains)

    def covers(self, attribute: NestedAttribute) -> bool:
        """Whether every flat attribute in ``attribute`` is registered."""
        return all(name in self._domains for name in attribute.flat_names())

    def __repr__(self) -> str:
        return f"Universe({self._domains!r})"


#: A module-level default universe: every flat attribute gets integers.
DEFAULT_UNIVERSE = Universe()
