"""Subattribute basis ``SubB(N)``, maximality and possession (Section 4.2).

Definition 4.7: the *subattribute basis* ``SubB(N)`` is the smallest subset
of ``Sub(N)`` such that every ``X ∈ Sub(N)`` is the join of some subset of
``SubB(N)``.  Order-theoretically these are exactly the *join-irreducible*
elements of the (finite, distributive) lattice ``Sub(N)``; by Birkhoff's
representation theorem ``Sub(N)`` is isomorphic to the lattice of
down-closed subsets of ``SubB(N)`` — which is what the fast encoding in
:mod:`repro.attributes.encoding` exploits and what the paper's Section 6
complexity analysis assumes ("we consider nested attributes as sets of
attributes, i.e. instead of looking at N we rather use SubB(N)").

Structure of the basis (matching the ``Sub``-structure theorem):

* ``SubB(λ) = ∅``,
* ``SubB(A) = {A}`` for a flat attribute ``A``,
* ``SubB(L(N₁,…,Nₖ))`` embeds each ``SubB(Nᵢ)`` with all other
  components at their bottom,
* ``SubB(L[P]) = {L[λ_P]} ∪ {L[J] | J ∈ SubB(P)}`` — the *new minimum*
  of the lifted lattice (carrying the list's length information) plus the
  lifted basis of the element type.

A basis attribute ``Y`` is *maximal* iff it is below no other basis
attribute; equivalently ``Y = Y^CC`` (non-maximal iff ``Y = Y ⊓ Y^C``).
The paper writes ``MaxB(N)`` / ``non-MaxB(N)`` for the split, and defines
``|N| = |SubB(N)|`` as the size measure of the complexity analysis.

Definition 4.11: for ``X`` a join of maximal basis attributes, a basis
attribute ``Y ∈ SubB(X)`` is *possessed* by ``X`` iff every basis attribute
``Z ∈ SubB(N)`` with ``Y ≤ Z`` satisfies ``Z ≤ X``.  Section 6 notes the
working characterisation ``Y ∈ SubB(X) ∧ Y ∉ SubB(X^C)`` which the
algorithm uses; both are implemented and tested for agreement.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from .lattice import complement
from .nested import Flat, ListAttr, NestedAttribute, Null, Record
from .subattribute import bottom, is_subattribute

__all__ = [
    "basis",
    "basis_poset",
    "basis_size",
    "basis_of_element",
    "maximal_basis",
    "non_maximal_basis",
    "is_possessed_by",
    "is_possessed_by_definition",
]


@lru_cache(maxsize=None)
def basis(attribute: NestedAttribute) -> tuple[NestedAttribute, ...]:
    """``SubB(N)`` as a deterministic tuple of join-irreducibles.

    The order is "structural": record components left to right; within a
    list, the new minimum ``L[λ_P]`` first, then the lifted element basis.

    Example (paper Example 4.8)
    ---------------------------
    >>> from repro.attributes import parse_attribute as p, unparse_abbreviated
    >>> root = p("A(B, C[D(E, F[G])])")
    >>> [unparse_abbreviated(b, root) for b in basis(root)]
    ... # doctest: +NORMALIZE_WHITESPACE
    ['A(B)', 'A(C[λ])', 'A(C[D(E)])', 'A(C[D(F[λ])])', 'A(C[D(F[G])])']
    """
    return tuple(_basis(attribute))


def _basis(attribute: NestedAttribute) -> Iterator[NestedAttribute]:
    if isinstance(attribute, Null):
        return
    if isinstance(attribute, Flat):
        yield attribute
        return
    if isinstance(attribute, ListAttr):
        yield ListAttr(attribute.label, bottom(attribute.element))
        for element_irreducible in _basis(attribute.element):
            yield ListAttr(attribute.label, element_irreducible)
        return
    if isinstance(attribute, Record):
        bottoms = [bottom(component) for component in attribute.components]
        for index, component in enumerate(attribute.components):
            for component_irreducible in _basis(component):
                embedded = list(bottoms)
                embedded[index] = component_irreducible
                yield Record(attribute.label, tuple(embedded))
        return
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


@lru_cache(maxsize=None)
def basis_size(attribute: NestedAttribute) -> int:
    """``|N| = |SubB(N)|`` — the paper's size measure (Section 6).

    Computed by the counting recurrence, without materialising the basis:
    ``|λ| = 0``, ``|A| = 1``, ``|L[P]| = 1 + |P|``,
    ``|L(N₁,…,Nₖ)| = Σ|Nᵢ|``.
    """
    if isinstance(attribute, Null):
        return 0
    if isinstance(attribute, Flat):
        return 1
    if isinstance(attribute, ListAttr):
        return 1 + basis_size(attribute.element)
    if isinstance(attribute, Record):
        return sum(basis_size(component) for component in attribute.components)
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


def basis_of_element(root: NestedAttribute, element: NestedAttribute) -> tuple[NestedAttribute, ...]:
    """``SubB(X) = {J ∈ SubB(root) | J ≤ X}`` for ``X ∈ Sub(root)``.

    Every element is the join of its basis: ``X = ⊔ SubB(X)`` (with the
    empty join being ``λ_root``, which is why ``λ ∉ SubB(N)``).
    """
    return tuple(j for j in basis(root) if is_subattribute(j, element))


@lru_cache(maxsize=None)
def maximal_basis(root: NestedAttribute) -> tuple[NestedAttribute, ...]:
    """``MaxB(root)``: basis attributes below no other basis attribute."""
    all_basis = basis(root)
    return tuple(
        candidate
        for candidate in all_basis
        if not any(
            candidate != other and is_subattribute(candidate, other) for other in all_basis
        )
    )


@lru_cache(maxsize=None)
def non_maximal_basis(root: NestedAttribute) -> tuple[NestedAttribute, ...]:
    """``non-MaxB(root)``: the basis attributes that are not maximal."""
    maximal = set(maximal_basis(root))
    return tuple(candidate for candidate in basis(root) if candidate not in maximal)


def is_possessed_by(
    root: NestedAttribute, basis_attribute: NestedAttribute, element: NestedAttribute
) -> bool:
    """Possession test via the Section 6 characterisation.

    ``basis_attribute`` is possessed by ``element`` iff it is in
    ``SubB(element)`` but *not* in ``SubB(element^C)`` — i.e. the element
    "owns" it outright rather than sharing it with the complement.
    """
    if not is_subattribute(basis_attribute, element):
        return False
    return not is_subattribute(basis_attribute, complement(root, element))


def is_possessed_by_definition(
    root: NestedAttribute, basis_attribute: NestedAttribute, element: NestedAttribute
) -> bool:
    """Possession test straight from Definition 4.11 (quantified form).

    ``Y`` possessed by ``X`` iff every ``Z ∈ SubB(root)`` with ``Y ≤ Z``
    satisfies ``Z ≤ X``.  Kept as the executable specification against
    which :func:`is_possessed_by` is property-tested.
    """
    if not is_subattribute(basis_attribute, element):
        return False
    return all(
        is_subattribute(other, element)
        for other in basis(root)
        if is_subattribute(basis_attribute, other)
    )


_POSET_CACHE: dict[NestedAttribute, tuple] = {}


def basis_poset(attribute: NestedAttribute) -> tuple[tuple[NestedAttribute, ...],
                                                     tuple[int, ...]]:
    """``SubB(N)`` together with its order, built structurally.

    Returns ``(basis, below)`` where ``below[i]`` is the *bitmask* of the
    indices ``j`` with ``basis[j] ≤ basis[i]`` (including ``i``).  The
    order never needs pairwise ``≤`` tests: within a record, basis
    attributes of different components are incomparable (masks shift by
    the component offset); within a list, the new minimum ``L[λ_P]`` sits
    below every lifted element (``mask → (mask << 1) | 1``).  This is what
    lets :class:`~repro.attributes.encoding.BasisEncoding` handle
    three-digit basis sizes in milliseconds.

    Iterative (explicit post-order stack), so nesting depth is bounded by
    memory, not the interpreter's recursion limit.
    """
    if attribute in _POSET_CACHE:
        return _POSET_CACHE[attribute]

    # Two-phase post-order: a node is built only after its (possibly
    # SHARED — equal subterms may occur under several parents) children
    # are cached.  A naive reversed pre-order breaks exactly on sharing.
    stack: list[tuple[NestedAttribute, bool]] = [(attribute, False)]
    while stack:
        node, expanded = stack.pop()
        if node in _POSET_CACHE:
            continue
        if expanded:
            _POSET_CACHE[node] = _build_poset_node(node)
            continue
        stack.append((node, True))
        for child in node.children():
            if child not in _POSET_CACHE:
                stack.append((child, False))
    return _POSET_CACHE[attribute]


def _build_poset_node(attribute: NestedAttribute) -> tuple:
    """One constructor step of :func:`basis_poset` (children cached)."""
    if isinstance(attribute, Null):
        return ((), ())
    if isinstance(attribute, Flat):
        return ((attribute,), (1,))
    if isinstance(attribute, ListAttr):
        inner_basis, inner_below = _POSET_CACHE[attribute.element]
        lifted = tuple(
            ListAttr(attribute.label, element) for element in inner_basis
        )
        elements = (ListAttr(attribute.label, bottom(attribute.element)),) + lifted
        below = (1,) + tuple((mask << 1) | 1 for mask in inner_below)
        return (elements, below)
    if isinstance(attribute, Record):
        bottoms = [bottom(component) for component in attribute.components]
        elements: list[NestedAttribute] = []
        below: list[int] = []
        offset = 0
        for index, component in enumerate(attribute.components):
            inner_basis, inner_below = _POSET_CACHE[component]
            for irreducible, its_below in zip(inner_basis, inner_below):
                embedded = list(bottoms)
                embedded[index] = irreducible
                elements.append(Record(attribute.label, tuple(embedded)))
                below.append(its_below << offset)
            offset += len(inner_basis)
        return (tuple(elements), tuple(below))
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover
