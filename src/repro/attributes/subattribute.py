"""The subattribute relation ``≤`` and the set ``Sub(N)`` (Section 3.2).

Definition 3.4 of the paper defines ``≤`` on nested attributes by exactly
these rules:

* ``N ≤ N`` for every nested attribute ``N``,
* ``λ ≤ A`` for every flat attribute ``A``,
* ``λ ≤ N`` for every *list-valued* attribute ``N``,
* ``L(N₁,…,Nₖ) ≤ L(M₁,…,Mₖ)`` whenever ``Nᵢ ≤ Mᵢ`` for all ``i``,
* ``L[N] ≤ L[M]`` whenever ``N ≤ M``.

Note that ``λ`` is *not* below a record-valued attribute; the bottom of
``Sub(L(N₁,…,Nₖ))`` is ``L(λ_{N₁},…,λ_{Nₖ})`` (Definition 3.7), which the
paper merely *displays* as ``λ``.  Keeping the structural bottom explicit
internally avoids the display ambiguity discussed in Section 3.3.

Informally ``M ≤ N`` holds when ``M`` comprises at most as much information
as ``N``; formally it is witnessed by the projection function ``π^N_M``
implemented in :mod:`repro.values.projection`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from .nested import NULL, Flat, ListAttr, NestedAttribute, Null, Record

__all__ = [
    "is_subattribute",
    "bottom",
    "is_bottom",
    "subattributes",
    "count_subattributes",
    "covers",
    "proper_subattributes",
]


def is_subattribute(candidate: NestedAttribute, parent: NestedAttribute) -> bool:
    """Decide ``candidate ≤ parent`` per Definition 3.4.

    The relation is a partial order (Lemma 3.5): reflexive, antisymmetric
    and transitive.

    Example
    -------
    >>> from repro.attributes import parse_attribute, parse_subattribute
    >>> root = parse_attribute("Visit[Drink(Beer, Pub)]")
    >>> is_subattribute(parse_subattribute("Visit[Drink(Beer)]", root), root)
    True
    >>> is_subattribute(parse_attribute("λ"), root)
    True
    >>> is_subattribute(parse_attribute("λ"), parse_attribute("Drink(Beer, Pub)"))
    False
    """
    if candidate == parent:
        return True
    if isinstance(candidate, Null):
        # λ ≤ A for flat A, λ ≤ L[N] for lists; λ ≤ record does NOT hold.
        return isinstance(parent, (Flat, ListAttr))
    if isinstance(candidate, Record) and isinstance(parent, Record):
        if candidate.label != parent.label or candidate.arity != parent.arity:
            return False
        return all(
            is_subattribute(c, p)
            for c, p in zip(candidate.components, parent.components)
        )
    if isinstance(candidate, ListAttr) and isinstance(parent, ListAttr):
        if candidate.label != parent.label:
            return False
        return is_subattribute(candidate.element, parent.element)
    return False


@lru_cache(maxsize=None)
def bottom(attribute: NestedAttribute) -> NestedAttribute:
    """The bottom element ``λ_N`` of ``Sub(N)`` (Definition 3.7).

    ``λ_N = L(λ_{N₁},…,λ_{Nₖ})`` for a record-valued ``N`` and ``λ``
    otherwise (flat, list-valued, or ``λ`` itself).
    """
    if isinstance(attribute, Record):
        return Record(
            attribute.label,
            tuple(bottom(component) for component in attribute.components),
        )
    return NULL


def is_bottom(candidate: NestedAttribute, parent: NestedAttribute) -> bool:
    """Whether ``candidate`` is the bottom element ``λ_parent``."""
    return candidate == bottom(parent)


def subattributes(attribute: NestedAttribute) -> Iterator[NestedAttribute]:
    """Enumerate ``Sub(N) = {M | M ≤ N}`` in a deterministic order.

    The order is "bottom first": for every constructor the less-informative
    subattributes are produced before the more informative ones, ending
    with ``N`` itself.  The enumeration realises the structure theorem
    stated after Definition 3.8:

    * ``Sub(λ) = {λ}``,
    * ``Sub(A) = {λ, A}`` for flat ``A``,
    * ``Sub(L(N₁,…,Nₖ))`` is the direct product of the ``Sub(Nᵢ)``,
    * ``Sub(L[P])`` is ``Sub(P)`` (lifted into ``L[·]``) plus a new
      minimum ``λ``.

    Warning
    -------
    ``|Sub(N)|`` grows exponentially with the number of record components;
    use :func:`count_subattributes` first when in doubt, or work with the
    polynomial-size basis encoding in :mod:`repro.attributes.encoding`.
    """
    if isinstance(attribute, Null):
        yield NULL
    elif isinstance(attribute, Flat):
        yield NULL
        yield attribute
    elif isinstance(attribute, ListAttr):
        yield NULL
        for element_sub in subattributes(attribute.element):
            yield ListAttr(attribute.label, element_sub)
    elif isinstance(attribute, Record):
        def product(index: int) -> Iterator[tuple[NestedAttribute, ...]]:
            if index == len(attribute.components):
                yield ()
                return
            for rest in product(index + 1):
                for component_sub in subattributes(attribute.components[index]):
                    yield (component_sub,) + rest

        for components in product(0):
            yield Record(attribute.label, components)
    else:  # pragma: no cover - defensive
        raise TypeError(f"not a nested attribute: {attribute!r}")


@lru_cache(maxsize=None)
def count_subattributes(attribute: NestedAttribute) -> int:
    """``|Sub(N)|`` computed without enumerating (product/lift formula)."""
    if isinstance(attribute, Null):
        return 1
    if isinstance(attribute, Flat):
        return 2
    if isinstance(attribute, ListAttr):
        return 1 + count_subattributes(attribute.element)
    if isinstance(attribute, Record):
        total = 1
        for component in attribute.components:
            total *= count_subattributes(component)
        return total
    raise TypeError(f"not a nested attribute: {attribute!r}")  # pragma: no cover


def proper_subattributes(attribute: NestedAttribute) -> Iterator[NestedAttribute]:
    """Enumerate ``Sub(N) \\ {N}``."""
    for candidate in subattributes(attribute):
        if candidate != attribute:
            yield candidate


def covers(parent_root: NestedAttribute, lower: NestedAttribute, upper: NestedAttribute) -> bool:
    """Whether ``upper`` covers ``lower`` in ``Sub(parent_root)``.

    ``upper`` covers ``lower`` when ``lower < upper`` and no element of
    ``Sub(parent_root)`` lies strictly between them.  Used by the Hasse
    diagram builder (:mod:`repro.viz.hasse`) that reproduces Figure 1.
    """
    if lower == upper or not is_subattribute(lower, upper):
        return False
    for middle in subattributes(parent_root):
        if middle in (lower, upper):
            continue
        if is_subattribute(lower, middle) and is_subattribute(middle, upper):
            return False
    return True
