"""Nested attributes: the type algebra of Section 3.1 of the paper.

A *nested attribute* (Definition 3.2) over a universe ``U`` of flat
attributes and a set ``L`` of labels is one of

* the *null attribute* ``λ`` (:data:`NULL`),
* a *flat attribute* ``A ∈ U`` (:class:`Flat`),
* a *record-valued attribute* ``L(N₁, …, Nₖ)`` with ``k ≥ 1``
  (:class:`Record`), or
* a *list-valued attribute* ``L[N]`` (:class:`ListAttr`).

Instances are immutable and hashable with structural equality, so they can
be used freely as dictionary keys and set members.  Subattributes of an
attribute ``N`` are represented *in the shape of* ``N`` — a subattribute of
a record keeps all component positions, with pruned positions replaced by
the bottom of the component (see :mod:`repro.attributes.subattribute`); this
sidesteps the positional-abbreviation ambiguity the paper discusses in
Section 3.3 (``L(A)`` inside ``L(A, A)``).

The paper fixes a universe and a label set once and for all; this module
does not force that bookkeeping on the caller — any well-formed term is a
valid attribute, and :class:`repro.attributes.universe.Universe` offers the
explicit registry for applications that want it.
"""

from __future__ import annotations

from typing import Iterator, Union

__all__ = [
    "NestedAttribute",
    "Null",
    "NULL",
    "Flat",
    "Record",
    "ListAttr",
    "flat",
    "record",
    "list_of",
]


class NestedAttribute:
    """Abstract base class of all nested attributes.

    Concrete subclasses are :class:`Null`, :class:`Flat`, :class:`Record`
    and :class:`ListAttr`.  All of them are immutable; equality and hashing
    are structural and cached.
    """

    __slots__ = ("_hash",)

    # -- classification -------------------------------------------------

    @property
    def is_null(self) -> bool:
        """Whether this is the null attribute ``λ``."""
        return isinstance(self, Null)

    @property
    def is_flat(self) -> bool:
        """Whether this is a flat attribute ``A ∈ U``."""
        return isinstance(self, Flat)

    @property
    def is_record(self) -> bool:
        """Whether this is a record-valued attribute ``L(N₁,…,Nₖ)``."""
        return isinstance(self, Record)

    @property
    def is_list(self) -> bool:
        """Whether this is a list-valued attribute ``L[N]``."""
        return isinstance(self, ListAttr)

    # -- structural metrics ---------------------------------------------

    def depth(self) -> int:
        """Nesting depth: ``0`` for ``λ`` and flat attributes.

        Records and lists add one level per constructor, e.g.
        ``depth(L[K(A)]) == 2``.
        """
        raise NotImplementedError

    def node_count(self) -> int:
        """Number of constructor nodes in the term (``λ`` counts as one)."""
        raise NotImplementedError

    def head(self) -> str | None:
        """The identifying symbol: flat name or record/list label.

        Returns ``None`` for the null attribute.  The head is what the
        paper's abbreviated notation uses to identify record components.
        """
        raise NotImplementedError

    # -- traversal -------------------------------------------------------

    def children(self) -> tuple["NestedAttribute", ...]:
        """Immediate sub-terms (empty for ``λ`` and flat attributes)."""
        raise NotImplementedError

    def walk(self) -> Iterator["NestedAttribute"]:
        """Yield this attribute and every nested sub-term, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def flat_names(self) -> Iterator[str]:
        """Yield the names of all flat attributes occurring in the term."""
        for node in self.walk():
            if isinstance(node, Flat):
                yield node.name

    def labels(self) -> Iterator[str]:
        """Yield the labels of all record/list constructors, pre-order."""
        for node in self.walk():
            if isinstance(node, (Record, ListAttr)):
                yield node.label

    # -- display ----------------------------------------------------------

    def __str__(self) -> str:
        from .printer import unparse

        return unparse(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"


class Null(NestedAttribute):
    """The null attribute ``λ`` with ``dom(λ) = {ok}`` (Definition 3.3).

    ``λ`` carries no information; it is the bottom of the subattribute
    order below flat and list-valued attributes.  A single shared instance
    is exported as :data:`NULL`; the constructor always returns it.
    """

    __slots__ = ()

    _instance: "Null | None" = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            instance = super().__new__(cls)
            instance._hash = hash(("λ",))
            cls._instance = instance
        return cls._instance

    def depth(self) -> int:
        return 0

    def node_count(self) -> int:
        return 1

    def head(self) -> None:
        return None

    def children(self) -> tuple[NestedAttribute, ...]:
        return ()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Null, ())


#: The unique null attribute ``λ``.
NULL = Null()


class Flat(NestedAttribute):
    """A flat attribute ``A`` from the universe (Definition 3.1).

    Parameters
    ----------
    name:
        The attribute's name.  Two :class:`Flat` instances are equal
        exactly when their names are equal.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"flat attribute name must be a non-empty string, got {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("flat", name)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def depth(self) -> int:
        return 0

    def node_count(self) -> int:
        return 1

    def head(self) -> str:
        return self.name

    def children(self) -> tuple[NestedAttribute, ...]:
        return ()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Flat) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Reconstruct through the constructor: slot-based unpickling would
        # trip over the immutability guard in ``__setattr__``.
        return (Flat, (self.name,))


class Record(NestedAttribute):
    """A record-valued attribute ``L(N₁, …, Nₖ)`` with ``k ≥ 1``.

    Parameters
    ----------
    label:
        The record label ``L``.
    components:
        The component attributes ``N₁, …, Nₖ``; at least one is required
        (Definition 3.2 demands ``k ≥ 1``).
    """

    __slots__ = ("label", "components")

    def __init__(self, label: str, components: tuple[NestedAttribute, ...]) -> None:
        if not label or not isinstance(label, str):
            raise ValueError(f"record label must be a non-empty string, got {label!r}")
        components = tuple(components)
        if not components:
            raise ValueError("a record-valued attribute needs at least one component (k >= 1)")
        for component in components:
            if not isinstance(component, NestedAttribute):
                raise TypeError(f"record component is not a NestedAttribute: {component!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "components", components)
        object.__setattr__(self, "_hash", hash(("record", label, components)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    @property
    def arity(self) -> int:
        """The number of components ``k``."""
        return len(self.components)

    def replace(self, index: int, component: NestedAttribute) -> "Record":
        """Return a copy with component ``index`` replaced."""
        components = list(self.components)
        components[index] = component
        return Record(self.label, tuple(components))

    def depth(self) -> int:
        return 1 + max(component.depth() for component in self.components)

    def node_count(self) -> int:
        return 1 + sum(component.node_count() for component in self.components)

    def head(self) -> str:
        return self.label

    def children(self) -> tuple[NestedAttribute, ...]:
        return self.components

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Record)
            and self._hash == other._hash
            and self.label == other.label
            and self.components == other.components
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Record, (self.label, self.components))


class ListAttr(NestedAttribute):
    """A list-valued attribute ``L[N]`` (Definition 3.2).

    ``dom(L[N])`` is the set of all *finite* lists over ``dom(N)``,
    including the empty list.

    Parameters
    ----------
    label:
        The list label ``L``.
    element:
        The element attribute ``N``.
    """

    __slots__ = ("label", "element")

    def __init__(self, label: str, element: NestedAttribute) -> None:
        if not label or not isinstance(label, str):
            raise ValueError(f"list label must be a non-empty string, got {label!r}")
        if not isinstance(element, NestedAttribute):
            raise TypeError(f"list element is not a NestedAttribute: {element!r}")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "_hash", hash(("list", label, element)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def depth(self) -> int:
        return 1 + self.element.depth()

    def node_count(self) -> int:
        return 1 + self.element.node_count()

    def head(self) -> str:
        return self.label

    def children(self) -> tuple[NestedAttribute, ...]:
        return (self.element,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ListAttr)
            and self._hash == other._hash
            and self.label == other.label
            and self.element == other.element
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (ListAttr, (self.label, self.element))


# -- convenience constructors ---------------------------------------------

AttributeLike = Union[NestedAttribute, str]


def _coerce(value: AttributeLike) -> NestedAttribute:
    """Turn a bare string into a flat attribute, pass attributes through."""
    if isinstance(value, NestedAttribute):
        return value
    if isinstance(value, str):
        return NULL if value in ("λ", "lambda") else Flat(value)
    raise TypeError(f"cannot interpret {value!r} as a nested attribute")


def flat(name: str) -> Flat:
    """Build a flat attribute; alias of :class:`Flat` for fluent code."""
    return Flat(name)


def record(label: str, *components: AttributeLike) -> Record:
    """Build a record attribute, coercing bare strings to flat attributes.

    Example
    -------
    >>> str(record("Drink", "Beer", "Pub"))
    'Drink(Beer, Pub)'
    """
    return Record(label, tuple(_coerce(component) for component in components))


def list_of(label: str, element: AttributeLike) -> ListAttr:
    """Build a list attribute, coercing a bare string to a flat attribute.

    Example
    -------
    >>> str(list_of("Visit", record("Drink", "Beer", "Pub")))
    'Visit[Drink(Beer, Pub)]'
    """
    return ListAttr(label, _coerce(element))
