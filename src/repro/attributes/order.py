"""Order-theoretic utilities on the encoded lattice ``Sub(N)``.

Navigation helpers the figures and design tools are built on, computed
directly on the Birkhoff encoding where they are one-bit operations:
in the down-set representation ``Y`` covers ``X`` exactly when
``Y = X ∪ {j}`` for a single basis attribute ``j`` whose strict
down-set already lies in ``X``.  Consequently the lattice is *graded*
with rank function ``rank(X) = |SubB(X)|`` (the popcount of the mask) —
every maximal chain from ``λ`` to ``N`` has length ``|N|``, which is the
vertical coordinate of the paper's Figure 1.
"""

from __future__ import annotations

from typing import Iterator

from .encoding import BasisEncoding, iter_bits

__all__ = [
    "rank",
    "upper_covers",
    "lower_covers",
    "atoms",
    "coatoms",
    "interval",
    "maximal_chain",
]


def rank(encoding: BasisEncoding, mask: int) -> int:
    """The rank (height) of an element: ``|SubB(X)|``."""
    return bin(mask & encoding.full).count("1")


def upper_covers(encoding: BasisEncoding, mask: int) -> list[int]:
    """The elements covering ``mask`` (each adds exactly one basis bit)."""
    results = []
    for j in range(encoding.size):
        bit = 1 << j
        if mask & bit:
            continue
        if (encoding.below[j] & ~bit) & ~mask == 0:
            results.append(mask | bit)
    return results


def lower_covers(encoding: BasisEncoding, mask: int) -> list[int]:
    """The elements covered by ``mask`` (each removes one maximal bit)."""
    results = []
    for j in iter_bits(mask):
        bit = 1 << j
        if encoding.above[j] & mask == bit:  # j is maximal within the mask
            results.append(mask & ~bit)
    return results


def atoms(encoding: BasisEncoding) -> list[int]:
    """The atoms of ``Sub(N)``: elements covering the bottom ``λ_N``.

    These are the principal ideals of the *minimal* basis attributes —
    for a pub-crawl-like schema, the flat fields and the bare list
    lengths.
    """
    return upper_covers(encoding, 0)


def coatoms(encoding: BasisEncoding) -> list[int]:
    """The coatoms: elements covered by the top ``N``."""
    return lower_covers(encoding, encoding.full)


def interval(encoding: BasisEncoding, lower: int, upper: int) -> Iterator[int]:
    """Enumerate the interval ``[lower, upper]`` (breadth-first by rank).

    Raises nothing when ``lower ≰ upper`` — the interval is then empty.
    Exponential in ``rank(upper) - rank(lower)``; intended for the small
    neighbourhoods design tools inspect.
    """
    if lower & ~upper:
        return
    seen = {lower}
    frontier = [lower]
    while frontier:
        next_frontier = []
        for element in frontier:
            yield element
            for cover in upper_covers(encoding, element):
                if cover & ~upper == 0 and cover not in seen:
                    seen.add(cover)
                    next_frontier.append(cover)
        frontier = next_frontier


def maximal_chain(encoding: BasisEncoding, lower: int, upper: int) -> list[int]:
    """One maximal chain from ``lower`` to ``upper`` (both inclusive).

    Exists iff ``lower ≤ upper``; its length is always
    ``rank(upper) - rank(lower)`` because the lattice is graded.
    """
    if lower & ~upper:
        raise ValueError("lower is not below upper")
    chain = [lower]
    current = lower
    while current != upper:
        for cover in upper_covers(encoding, current):
            if cover & ~upper == 0:
                current = cover
                chain.append(current)
                break
        else:  # pragma: no cover - graded lattice always has a step
            raise AssertionError("no cover step found inside the interval")
    return chain
