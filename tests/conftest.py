"""Shared fixtures: the paper's worked examples and small standard roots."""

from __future__ import annotations

import pytest

from repro.attributes import BasisEncoding, parse_attribute
from repro.workloads import example_5_1, pubcrawl


@pytest.fixture(scope="session")
def pubcrawl_scenario():
    """Example 4.2 / 4.5: schema, instance and expected verdicts."""
    return pubcrawl()


@pytest.fixture(scope="session")
def example51():
    """Example 5.1 / Figures 3-4: the full algorithm fixture."""
    return example_5_1()


@pytest.fixture(scope="session")
def example51_encoding(example51):
    return BasisEncoding(example51.root)


@pytest.fixture(scope="session")
def small_roots():
    """A spread of small roots covering every constructor combination."""
    texts = (
        "A",
        "L[A]",
        "L[K[A]]",
        "R(A, B)",
        "R(A, A)",
        "R(A, L[B])",
        "L[R(A, B)]",
        "R(L1[A], L2[B])",
        "R(A, L[D(B, C)])",
        "J[K(A, L[M(B, C)])]",
        "K[L(M[N(A, B)], C)]",
    )
    return tuple(parse_attribute(text) for text in texts)
