"""Unit tests for the naive derivation engine (the §5 baseline)."""

import pytest

from repro.attributes import parse_attribute as p
from repro.dependencies import DependencySet, parse_dependency
from repro.exceptions import DerivationLimitExceeded
from repro.inference import derive_closure, derives, explain


@pytest.fixture()
def root():
    return p("R(A, B, C)")


@pytest.fixture()
def sigma(root):
    return DependencySet.parse(root, ["R(A) -> R(B)", "R(B) -> R(C)"])


class TestDeriveClosure:
    def test_premises_always_present(self, sigma):
        result = derive_closure(sigma)
        for dependency in sigma:
            assert dependency in result

    def test_fd_transitivity_found(self, root, sigma):
        result = derive_closure(sigma)
        assert parse_dependency("R(A) -> R(C)", root) in result

    def test_trivial_fds_from_reflexivity(self, root, sigma):
        result = derive_closure(sigma)
        assert parse_dependency("R(A, B) -> R(A)", root) in result

    def test_complementation_found(self, root):
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        result = derive_closure(sigma)
        assert parse_dependency("R(A) ->> R(A, C)", root) in result
        assert parse_dependency("R(A) ->> R(C)", root) in result

    def test_mixed_meet_consequence_on_lists(self):
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        sigma = DependencySet.parse(
            root, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]
        )
        target = parse_dependency("Pubcrawl(Person) -> Pubcrawl(Visit[λ])", root)
        assert derives(sigma, target)

    def test_exhausted_flag_on_small_root(self, sigma):
        result = derive_closure(sigma)
        assert result.exhausted

    def test_budget_truncation(self, root):
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)", "R(B) ->> R(C)"])
        result = derive_closure(sigma, max_rounds=1)
        assert not result.exhausted

    def test_strict_budget_raises(self, root):
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)", "R(B) ->> R(C)"])
        with pytest.raises(DerivationLimitExceeded):
            derive_closure(sigma, max_rounds=1, strict=True)

    def test_early_exit_on_target(self, root, sigma):
        target = parse_dependency("R(A) -> R(B)", root)  # a premise
        result = derive_closure(sigma, target=target)
        assert result.rounds == 0


class TestDerives:
    def test_positive(self, root, sigma):
        assert derives(sigma, parse_dependency("R(A) -> R(C)", root))

    def test_negative(self, root, sigma):
        assert not derives(sigma, parse_dependency("R(C) -> R(A)", root))


class TestProofsAndExplain:
    def test_proof_is_topologically_ordered(self, root, sigma):
        result = derive_closure(sigma)
        target = parse_dependency("R(A) -> R(C)", root)
        steps = result.proof(target)
        seen = set()
        for step in steps:
            assert all(premise in seen for premise in step.premises)
            seen.add(step.dependency)
        assert steps[-1].dependency == target

    def test_proof_of_underived_raises(self, root, sigma):
        result = derive_closure(sigma)
        with pytest.raises(KeyError):
            result.proof(parse_dependency("R(C) -> R(A)", root))

    def test_explain_renders_numbered_lines(self, root, sigma):
        result = derive_closure(sigma)
        target = parse_dependency("R(A) -> R(C)", root)
        text = explain(result, target)
        assert "[premise]" in text
        assert "FD transitivity" in text
        assert text.splitlines()[-1].endswith("]")

    def test_explain_mixed_meet(self):
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        sigma = DependencySet.parse(
            root, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]
        )
        target = parse_dependency("Pubcrawl(Person) -> Pubcrawl(Visit[λ])", root)
        result = derive_closure(sigma, target=target)
        assert "mixed meet" in explain(result, target)
