"""Unit tests for the Theorem 4.6 inference rules."""

import pytest

from repro.attributes import parse_attribute as p, parse_subattribute, subattributes
from repro.dependencies import FD, MVD, parse_dependency
from repro.inference import (
    ALL_RULES,
    FD_RULES,
    MIXED_RULES,
    MVD_RULES,
    rule_by_name,
)
from repro.inference.rules import (
    FD_EXTENSION,
    FD_REFLEXIVITY,
    FD_TRANSITIVITY,
    IMPLICATION,
    MIXED_MEET,
    MIXED_PSEUDO_TRANSITIVITY,
    MVD_AUGMENTATION,
    MVD_COMPLEMENTATION,
    MVD_JOIN,
    MVD_MEET,
    MVD_PSEUDO_DIFFERENCE,
    MVD_PSEUDO_TRANSITIVITY,
    MVD_REFLEXIVITY,
)


def s(text, root):
    return parse_subattribute(text, root)


def conclusions(rule, root, premises, elements=()):
    return set(rule.conclusions(root, premises, elements))


class TestRuleInventory:
    def test_thirteen_rules(self):
        assert len(ALL_RULES) == 13
        assert len(FD_RULES) == 3
        assert len(MVD_RULES) == 7
        assert len(MIXED_RULES) == 3

    def test_lookup_by_name(self):
        assert rule_by_name("mixed meet") is MIXED_MEET
        with pytest.raises(KeyError):
            rule_by_name("modus ponens")

    def test_names_unique(self):
        names = [rule.name for rule in ALL_RULES]
        assert len(set(names)) == len(names)


class TestFDRules:
    def test_reflexivity_generates_only_downward(self):
        root = p("R(A, B)")
        generated = conclusions(FD_REFLEXIVITY, root, (), subattributes(root))
        assert FD(s("R(A, B)", root), s("R(A)", root)) in generated
        assert FD(s("R(A)", root), s("R(B)", root)) not in generated

    def test_extension(self):
        root = p("R(A, B, C)")
        premise = parse_dependency("R(A) -> R(B)", root)
        generated = conclusions(FD_EXTENSION, root, (premise,))
        assert generated == {FD(s("R(A)", root), s("R(A, B)", root))}

    def test_extension_ignores_mvds(self):
        root = p("R(A, B)")
        premise = parse_dependency("R(A) ->> R(B)", root)
        assert not conclusions(FD_EXTENSION, root, (premise,))

    def test_transitivity_requires_exact_middle(self):
        root = p("R(A, B, C)")
        first = parse_dependency("R(A) -> R(B)", root)
        second = parse_dependency("R(B) -> R(C)", root)
        generated = conclusions(FD_TRANSITIVITY, root, (first, second))
        assert generated == {FD(s("R(A)", root), s("R(C)", root))}
        assert not conclusions(FD_TRANSITIVITY, root, (second, first))


class TestMVDRules:
    def test_complementation(self):
        root = p("R(A, B, C)")
        premise = parse_dependency("R(A) ->> R(B)", root)
        generated = conclusions(MVD_COMPLEMENTATION, root, (premise,))
        assert generated == {MVD(s("R(A)", root), s("R(A, C)", root))}

    def test_complementation_on_lists_keeps_shared_length(self):
        root = p("L[R(A, B)]")
        premise = parse_dependency("λ ->> L[R(A)]", root)
        generated = conclusions(MVD_COMPLEMENTATION, root, (premise,))
        # complement of L[R(A)] keeps the length: L[R(B)] ⊔ L[λ] = L[R(B)].
        assert generated == {MVD(s("λ", root), s("L[R(B)]", root))}

    def test_reflexivity(self):
        root = p("R(A, B)")
        generated = conclusions(MVD_REFLEXIVITY, root, (), subattributes(root))
        assert MVD(s("R(A)", root), s("λ", root)) in generated

    def test_augmentation(self):
        root = p("R(A, B, C)")
        premise = parse_dependency("R(A) ->> R(B)", root)
        elements = [s("R(C)", root), s("λ", root)]
        generated = conclusions(MVD_AUGMENTATION, root, (premise,), elements)
        assert MVD(s("R(A, C)", root), s("R(B, C)", root)) in generated  # V = W
        assert MVD(s("R(A, C)", root), s("R(B)", root)) in generated  # V = λ

    def test_pseudo_transitivity(self):
        root = p("R(A, B, C)")
        first = parse_dependency("R(A) ->> R(B)", root)
        second = parse_dependency("R(B) ->> R(C)", root)
        generated = conclusions(MVD_PSEUDO_TRANSITIVITY, root, (first, second))
        assert generated == {MVD(s("R(A)", root), s("R(C)", root))}

    def test_join_meet_difference_share_lhs(self):
        root = p("R(A, B, C)")
        first = parse_dependency("R(A) ->> R(B)", root)
        second = parse_dependency("R(A) ->> R(B, C)", root)
        assert conclusions(MVD_JOIN, root, (first, second)) == {
            MVD(s("R(A)", root), s("R(B, C)", root))
        }
        assert conclusions(MVD_MEET, root, (first, second)) == {
            MVD(s("R(A)", root), s("R(B)", root))
        }
        assert conclusions(MVD_PSEUDO_DIFFERENCE, root, (second, first)) == {
            MVD(s("R(A)", root), s("R(C)", root))
        }

    def test_lhs_mismatch_produces_nothing(self):
        root = p("R(A, B, C)")
        first = parse_dependency("R(A) ->> R(B)", root)
        second = parse_dependency("R(C) ->> R(B)", root)
        assert not conclusions(MVD_JOIN, root, (first, second))


class TestMixedRules:
    def test_implication(self):
        root = p("R(A, B)")
        premise = parse_dependency("R(A) -> R(B)", root)
        generated = conclusions(IMPLICATION, root, (premise,))
        assert generated == {MVD(s("R(A)", root), s("R(B)", root))}

    def test_mixed_pseudo_transitivity(self):
        root = p("R(A, B, C)")
        first = parse_dependency("R(A) ->> R(B)", root)
        second = parse_dependency("R(B) -> R(C)", root)
        generated = conclusions(MIXED_PSEUDO_TRANSITIVITY, root, (first, second))
        assert generated == {FD(s("R(A)", root), s("R(C)", root))}

    def test_mixed_meet_is_trivial_relationally(self):
        # In a flat record Y ⊓ Y^C = λ: the mixed meet rule only derives
        # the trivial X → λ — exactly the paper's remark.
        root = p("R(A, B, C)")
        premise = parse_dependency("R(A) ->> R(B)", root)
        (conclusion,) = conclusions(MIXED_MEET, root, (premise,))
        assert conclusion == FD(s("R(A)", root), s("λ", root))
        assert conclusion.is_trivial(root)

    def test_mixed_meet_nontrivial_on_lists(self):
        # Over lists the meet keeps the list length: a genuinely new FD.
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        premise = parse_dependency(
            "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])", root
        )
        (conclusion,) = conclusions(MIXED_MEET, root, (premise,))
        assert conclusion == FD(
            s("Pubcrawl(Person)", root), s("Pubcrawl(Visit[λ])", root)
        )
        assert not conclusion.is_trivial(root)
