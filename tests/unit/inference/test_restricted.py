"""Unit tests for restricted derivability and rule ablation (§7)."""

import pytest

from repro.attributes import parse_attribute as p
from repro.dependencies import DependencySet, parse_dependency
from repro.inference import (
    ALL_RULES,
    Derivability,
    derives_without_complementation,
    restricted_closure,
    rule_ablation,
    rules_without,
)


@pytest.fixture()
def root():
    return p("R(A, B, C)")


class TestRulesWithout:
    def test_removes_named_rule(self):
        reduced = rules_without("MVD complementation")
        assert len(reduced) == len(ALL_RULES) - 1
        assert all(rule.name != "MVD complementation" for rule in reduced)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            rules_without("nonexistent rule")

    def test_multiple_removals(self):
        reduced = rules_without("mixed meet", "multi-valued join")
        assert len(reduced) == len(ALL_RULES) - 2


class TestComplementationFree:
    def test_direct_mvd_derivable(self, root):
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        target = parse_dependency("R(A) ->> R(B)", root)
        assert derives_without_complementation(sigma, target)

    def test_complement_side_not_derivable(self, root):
        # Biskup's observation, generalised: A ↠ C from A ↠ B *requires*
        # the complementation rule in R(A, B, C).
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        target = parse_dependency("R(A) ->> R(C)", root)
        verdict = derives_without_complementation(sigma, target)
        assert verdict is Derivability.NOT_DERIVABLE
        assert not verdict

    def test_fd_consequences_unaffected(self, root):
        sigma = DependencySet.parse(root, ["R(A) -> R(B)", "R(B) -> R(C)"])
        target = parse_dependency("R(A) -> R(C)", root)
        assert derives_without_complementation(sigma, target)

    def test_unknown_on_truncation(self, root):
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)", "R(B) ->> R(C)"])
        target = parse_dependency("R(C) ->> R(A)", root)  # not derivable
        verdict = derives_without_complementation(sigma, target, max_rounds=1)
        assert verdict is Derivability.UNKNOWN

    def test_enum_truthiness(self):
        assert bool(Derivability.DERIVABLE)
        assert not bool(Derivability.NOT_DERIVABLE)
        assert not bool(Derivability.UNKNOWN)


class TestRestrictedClosure:
    def test_reduced_closure_is_subset(self, root):
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        full = restricted_closure(sigma, ())
        reduced = restricted_closure(sigma, ("MVD complementation",))
        assert reduced.dependencies <= full.dependencies
        assert parse_dependency("R(A) ->> R(C)", root) not in reduced


class TestRuleAblation:
    def test_reports_cover_all_rules(self, root):
        sigma = DependencySet.parse(root, ["R(A) -> R(B)"])
        reports = rule_ablation(sigma)
        assert {report.rule for report in reports} == {
            rule.name for rule in ALL_RULES
        }

    def test_complementation_is_load_bearing(self, root):
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)"])
        reports = {report.rule: report for report in rule_ablation(sigma)}
        assert not reports["MVD complementation"].redundant_here
        assert parse_dependency("R(A) ->> R(C)", root) in reports[
            "MVD complementation"
        ].lost

    def test_mixed_meet_redundant_relationally_but_not_on_lists(self):
        flat_root = p("R(A, B, C)")
        flat_sigma = DependencySet.parse(flat_root, ["R(A) ->> R(B)"])
        flat = {r.rule: r for r in rule_ablation(flat_sigma)}
        # On a flat record the mixed meet rule only yields trivial FDs.
        assert flat["mixed meet"].redundant_here

        listy_root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        listy_sigma = DependencySet.parse(
            listy_root, ["Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])"]
        )
        listy = {r.rule: r for r in rule_ablation(listy_sigma)}
        assert not listy["mixed meet"].redundant_here
        lost = listy["mixed meet"].lost
        visit_count_fd = parse_dependency(
            "Pubcrawl(Person) -> Pubcrawl(Visit[λ])", listy_root
        )
        assert visit_count_fd in lost

    def test_derived_mvd_rules_redundant_here(self, root):
        # Join/meet/pseudo-difference never change this closure — they are
        # the redundancy candidates the paper's conclusion anticipates.
        sigma = DependencySet.parse(root, ["R(A) ->> R(B)", "R(B) -> R(C)"])
        reports = {report.rule: report for report in rule_ablation(sigma)}
        for name in (
            "multi-valued join",
            "multi-valued meet",
            "multi-valued pseudo-difference",
        ):
            assert reports[name].redundant_here, name
