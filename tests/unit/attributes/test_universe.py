"""Unit tests for universes and domains (Definition 3.1)."""

import random

import pytest

from repro.attributes import EnumeratedDomain, Flat, IntegerDomain, Universe
from repro.attributes import parse_attribute as p


class TestIntegerDomain:
    def test_membership(self):
        domain = IntegerDomain()
        assert 7 in domain
        assert "x" not in domain
        assert True not in domain  # bools are not data constants

    def test_sample_within_width(self):
        domain = IntegerDomain(width=3)
        rng = random.Random(0)
        assert all(domain.sample(rng) in range(3) for _ in range(50))

    def test_fresh_is_unbounded_and_distinct(self):
        supply = IntegerDomain().fresh()
        drawn = [next(supply) for _ in range(100)]
        assert len(set(drawn)) == 100

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            IntegerDomain(width=0)


class TestEnumeratedDomain:
    def test_membership_and_len(self):
        domain = EnumeratedDomain(["Lübzer", "Kindl"])
        assert "Kindl" in domain
        assert "Guiness" not in domain
        assert len(domain) == 2

    def test_dedupes_preserving_order(self):
        domain = EnumeratedDomain(["a", "b", "a"])
        assert domain.values == ("a", "b")

    def test_fresh_exhausts(self):
        supply = EnumeratedDomain(["x", "y"]).fresh()
        assert next(supply) == "x"
        assert next(supply) == "y"
        with pytest.raises(ValueError):
            next(supply)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EnumeratedDomain([])

    def test_sample(self):
        domain = EnumeratedDomain(["only"])
        assert domain.sample(random.Random(0)) == "only"


class TestUniverse:
    def test_registered_domain_lookup(self):
        beers = EnumeratedDomain(["Lübzer"])
        universe = Universe({"Beer": beers})
        assert universe.domain_of("Beer") is beers
        assert universe.domain_of(Flat("Beer")) is beers

    def test_unregistered_falls_back_to_integers(self):
        universe = Universe()
        assert isinstance(universe.domain_of("Anything"), IntegerDomain)

    def test_register(self):
        universe = Universe()
        pubs = EnumeratedDomain(["Deanos"])
        universe.register("Pub", pubs)
        assert universe.domain_of("Pub") is pubs
        assert universe.names() == ("Pub",)

    def test_covers(self):
        universe = Universe({"A": EnumeratedDomain([1]), "B": EnumeratedDomain([2])})
        assert universe.covers(p("R(A, L[B])"))
        assert not universe.covers(p("R(A, C)"))
