"""Unit tests for parsing the paper's attribute notation."""

import pytest

from repro.attributes import (
    NULL,
    Flat,
    ListAttr,
    Record,
    parse_attribute,
    parse_subattribute,
    unparse,
)
from repro.exceptions import AmbiguousAbbreviationError, AttributeSyntaxError


class TestParseAttribute:
    def test_lambda(self):
        assert parse_attribute("λ") == NULL
        assert parse_attribute("lambda") == NULL

    def test_flat(self):
        assert parse_attribute("Beer") == Flat("Beer")

    def test_record(self):
        assert parse_attribute("Drink(Beer, Pub)") == Record(
            "Drink", (Flat("Beer"), Flat("Pub"))
        )

    def test_list(self):
        assert parse_attribute("Visit[Drink(Beer, Pub)]") == ListAttr(
            "Visit", Record("Drink", (Flat("Beer"), Flat("Pub")))
        )

    def test_deep_nesting(self):
        text = "L1(L2[L3[L4(A, B, C)]], L5[L6(D, E)], L7(F, L8[L9(G, L10[H])], I))"
        attribute = parse_attribute(text)
        assert unparse(attribute) == text

    def test_whitespace_insensitive(self):
        assert parse_attribute(" R( A ,  L [ B ] ) ") == parse_attribute("R(A, L[B])")

    def test_explicit_lambda_components(self):
        assert parse_attribute("R(A, λ)") == Record("R", (Flat("A"), NULL))

    def test_roundtrip_through_unparse(self, small_roots):
        for root in small_roots:
            assert parse_attribute(unparse(root)) == root

    @pytest.mark.parametrize(
        "bad",
        ["", "R(", "R()", "R(A,)", "R(A))", "[A]", "R(A B)", "R(A,,B)", "A!", "λ(A)"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(AttributeSyntaxError):
            parse_attribute(bad)

    def test_trailing_garbage(self):
        with pytest.raises(AttributeSyntaxError):
            parse_attribute("R(A) extra")


class TestParseSubattribute:
    def test_full_positional_form(self):
        root = parse_attribute("R(A, B)")
        assert parse_subattribute("R(A, λ)", root) == Record("R", (Flat("A"), NULL))

    def test_abbreviated_form_fills_bottoms(self):
        root = parse_attribute("L1(A, B, L2[L3(C, D)])")
        resolved = parse_subattribute("L1(A, L2[λ])", root)
        assert unparse(resolved) == "L1(A, λ, L2[L3(λ, λ)])"

    def test_bare_lambda_is_bottom(self):
        root = parse_attribute("R(A, B)")
        assert parse_subattribute("λ", root) == Record("R", (NULL, NULL))
        list_root = parse_attribute("L[A]")
        assert parse_subattribute("λ", list_root) == NULL

    def test_list_inner_lambda(self):
        root = parse_attribute("Visit[Drink(Beer, Pub)]")
        resolved = parse_subattribute("Visit[λ]", root)
        assert unparse(resolved) == "Visit[Drink(λ, λ)]"

    def test_head_matching_reorders(self):
        root = parse_attribute("R(A, B, C)")
        assert parse_subattribute("R(C, A)", root) == parse_subattribute(
            "R(A, λ, C)", root
        )

    def test_ambiguous_duplicate_heads_rejected(self):
        # The paper's L(A) inside L(A, A) example.
        root = parse_attribute("L(A, A)")
        with pytest.raises(AmbiguousAbbreviationError):
            parse_subattribute("L(A)", root)

    def test_duplicate_heads_full_positional_still_works(self):
        root = parse_attribute("L(A, A)")
        assert parse_subattribute("L(A, λ)", root) == Record("L", (Flat("A"), NULL))
        assert parse_subattribute("L(λ, A)", root) == Record("L", (NULL, Flat("A")))

    def test_unknown_head_rejected(self):
        root = parse_attribute("R(A, B)")
        with pytest.raises(AttributeSyntaxError):
            parse_subattribute("R(Z)", root)

    def test_wrong_label_rejected(self):
        root = parse_attribute("R(A, B)")
        with pytest.raises(AttributeSyntaxError):
            parse_subattribute("S(A)", root)

    def test_flat_mismatch_rejected(self):
        with pytest.raises(AttributeSyntaxError):
            parse_subattribute("B", parse_attribute("A"))

    def test_list_label_mismatch_rejected(self):
        with pytest.raises(AttributeSyntaxError):
            parse_subattribute("M[λ]", parse_attribute("L[A]"))

    def test_resolved_is_always_subattribute(self, small_roots):
        from repro.attributes import is_subattribute, subattributes, unparse_abbreviated

        for root in small_roots:
            for element in subattributes(root):
                shown = unparse_abbreviated(element, root)
                resolved = parse_subattribute(shown, root)
                assert resolved == element, (shown, unparse(root))

    def test_example_5_1_inputs_parse(self, example51):
        # The Σ and X of Example 5.1 went through the abbreviated parser;
        # spot-check one side against its explicit form.
        root = example51.root
        u3 = parse_subattribute("L1(L7(F, L8[L9(L10[λ])]))", root)
        # List-valued components bottom out at λ itself (Definition 3.7).
        explicit = parse_attribute("L1(λ, λ, L7(F, L8[L9(λ, L10[λ])], λ))")
        assert u3 == explicit
