"""Unit tests for the nested-attribute AST (Definition 3.2)."""

import pytest

from repro.attributes import (
    NULL,
    Flat,
    ListAttr,
    NestedAttribute,
    Record,
    flat,
    list_of,
    record,
)
from repro.attributes.nested import Null


class TestNull:
    def test_singleton(self):
        assert Null() is NULL

    def test_classification(self):
        assert NULL.is_null
        assert not NULL.is_flat
        assert not NULL.is_record
        assert not NULL.is_list

    def test_metrics(self):
        assert NULL.depth() == 0
        assert NULL.node_count() == 1
        assert NULL.head() is None
        assert NULL.children() == ()

    def test_str(self):
        assert str(NULL) == "λ"

    def test_equality_and_hash(self):
        assert NULL == Null()
        assert hash(NULL) == hash(Null())
        assert NULL != Flat("A")


class TestFlat:
    def test_basic(self):
        a = Flat("Beer")
        assert a.is_flat
        assert a.name == "Beer"
        assert a.head() == "Beer"
        assert a.depth() == 0
        assert a.node_count() == 1

    def test_equality_by_name(self):
        assert Flat("A") == Flat("A")
        assert Flat("A") != Flat("B")
        assert hash(Flat("A")) == hash(Flat("A"))

    def test_immutable(self):
        a = Flat("A")
        with pytest.raises(AttributeError):
            a.name = "B"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Flat("")

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            Flat(3)  # type: ignore[arg-type]


class TestRecord:
    def test_basic(self):
        r = Record("Drink", (Flat("Beer"), Flat("Pub")))
        assert r.is_record
        assert r.label == "Drink"
        assert r.arity == 2
        assert r.head() == "Drink"
        assert r.children() == (Flat("Beer"), Flat("Pub"))
        assert r.depth() == 1
        assert r.node_count() == 3

    def test_requires_at_least_one_component(self):
        # Definition 3.2 demands k >= 1.
        with pytest.raises(ValueError):
            Record("L", ())

    def test_rejects_non_attribute_components(self):
        with pytest.raises(TypeError):
            Record("L", ("A",))  # type: ignore[arg-type]

    def test_equality_is_structural_and_positional(self):
        assert Record("L", (Flat("A"), NULL)) != Record("L", (NULL, Flat("A")))
        assert Record("L", (Flat("A"),)) != Record("M", (Flat("A"),))

    def test_replace(self):
        r = Record("L", (Flat("A"), Flat("B")))
        assert r.replace(1, NULL) == Record("L", (Flat("A"), NULL))
        # original untouched
        assert r.components[1] == Flat("B")

    def test_immutable(self):
        r = Record("L", (Flat("A"),))
        with pytest.raises(AttributeError):
            r.label = "M"


class TestListAttr:
    def test_basic(self):
        l = ListAttr("Visit", Record("Drink", (Flat("Beer"),)))
        assert l.is_list
        assert l.label == "Visit"
        assert l.head() == "Visit"
        assert l.depth() == 2
        assert l.node_count() == 3

    def test_nested_lists(self):
        ll = ListAttr("L1", ListAttr("L2", Flat("A")))
        assert ll.depth() == 2
        assert list(ll.labels()) == ["L1", "L2"]

    def test_equality(self):
        assert ListAttr("L", Flat("A")) == ListAttr("L", Flat("A"))
        assert ListAttr("L", Flat("A")) != ListAttr("L", Flat("B"))
        assert ListAttr("L", Flat("A")) != ListAttr("M", Flat("A"))

    def test_immutable(self):
        l = ListAttr("L", Flat("A"))
        with pytest.raises(AttributeError):
            l.element = Flat("B")


class TestTraversal:
    def test_walk_preorder(self):
        n = record("R", "A", list_of("L", "B"))
        kinds = [type(node).__name__ for node in n.walk()]
        assert kinds == ["Record", "Flat", "ListAttr", "Flat"]

    def test_flat_names(self):
        n = record("R", "A", list_of("L", record("D", "B", "C")))
        assert sorted(n.flat_names()) == ["A", "B", "C"]

    def test_labels(self):
        n = record("R", "A", list_of("L", record("D", "B")))
        assert list(n.labels()) == ["R", "L", "D"]


class TestConvenienceConstructors:
    def test_record_coerces_strings(self):
        assert record("D", "Beer", "Pub") == Record("D", (Flat("Beer"), Flat("Pub")))

    def test_list_of_coerces_strings(self):
        assert list_of("L", "A") == ListAttr("L", Flat("A"))

    def test_lambda_string_becomes_null(self):
        assert record("L", "A", "λ") == Record("L", (Flat("A"), NULL))
        assert record("L", "A", "lambda") == Record("L", (Flat("A"), NULL))

    def test_flat_helper(self):
        assert flat("A") == Flat("A")

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            record("L", 7)  # type: ignore[arg-type]

    def test_repr_is_informative(self):
        assert "Drink(Beer, Pub)" in repr(record("Drink", "Beer", "Pub"))

    def test_nested_attribute_is_abstract_base(self):
        assert issubclass(Record, NestedAttribute)
        assert issubclass(ListAttr, NestedAttribute)
