"""Unit tests for the BasisEncoding memo caches and pickling support."""

import pickle

import pytest

from repro.attributes import BasisEncoding, parse_attribute
from repro.attributes.encoding import (
    PAIR_CACHE_MAXSIZE,
    UNARY_CACHE_MAXSIZE,
    EncodingCacheInfo,
    iter_bits,
)


@pytest.fixture()
def encoding():
    return BasisEncoding(parse_attribute("R(A, L[K(B, C)], M[D])"))


def reference_down_close(encoding, generator_mask):
    result = 0
    for i in iter_bits(generator_mask):
        result |= encoding.below[i]
    return result


class TestDownCloseTables:
    def test_matches_per_bit_reference(self, encoding):
        for mask in range(1 << encoding.size):
            assert encoding.down_close(mask) == reference_down_close(
                encoding, mask), mask

    def test_wide_root_crosses_byte_chunks(self):
        # > 8 basis attributes forces the multi-chunk path.
        names = ", ".join(f"A{i}" for i in range(11))
        encoding = BasisEncoding(parse_attribute(f"R({names}, L[B])"))
        assert encoding.size > 8
        for mask in (encoding.full, 1 << (encoding.size - 1),
                     (1 << 9) | 1, encoding.full >> 3):
            assert encoding.down_close(mask) == reference_down_close(
                encoding, mask)


class TestMemoisation:
    def test_hit_and_miss_counting(self, encoding):
        encoding.cache_clear()
        x = encoding.full >> 1
        encoding.complement(x)
        encoding.complement(x)
        info = encoding.cache_info()
        hits, misses, size, maxsize = info["complement"]
        assert (hits, misses) == (1, 1)
        assert size == 1
        assert maxsize == UNARY_CACHE_MAXSIZE

    def test_pair_cache_counts(self, encoding):
        encoding.cache_clear()
        encoding.pseudo_difference(encoding.full, 1)
        encoding.pseudo_difference(encoding.full, 1)
        encoding.pseudo_difference(encoding.full, 3)
        hits, misses, size, maxsize = encoding.cache_info()["pseudo_difference"]
        assert (hits, misses, size) == (1, 2, 2)
        assert maxsize == PAIR_CACHE_MAXSIZE

    def test_memoised_values_stay_correct(self, encoding):
        for mask in range(1 << encoding.size):
            first = encoding.double_complement(mask)
            again = encoding.double_complement(mask)
            assert first == again
            assert first == encoding.down_close(encoding.possessed(mask))

    def test_hit_rate(self, encoding):
        encoding.cache_clear()
        assert encoding.cache_info().hit_rate() == 0.0
        encoding.complement(0)
        encoding.complement(0)
        assert 0.0 < encoding.cache_info().hit_rate() <= 1.0

    def test_cache_clear_resets(self, encoding):
        encoding.complement(0)
        encoding.cache_clear()
        info = encoding.cache_info()
        assert all(value == (0, 0, 0, value[3]) for value in info.values())
        assert isinstance(info, EncodingCacheInfo)


class TestEviction:
    def test_fifo_eviction_bounds_the_pair_cache(self, encoding):
        encoding.cache_clear()
        encoding._pd_maxsize = 4
        try:
            for right in range(10):
                encoding.pseudo_difference(encoding.full, right)
            assert len(encoding._pd_cache) <= 4
            # The most recent entry survives; the oldest was evicted.
            assert (encoding.full, 9) in encoding._pd_cache
            assert (encoding.full, 0) not in encoding._pd_cache
        finally:
            encoding._pd_maxsize = PAIR_CACHE_MAXSIZE

    def test_evicted_entries_recompute_correctly(self, encoding):
        encoding.cache_clear()
        encoding._pd_maxsize = 2
        try:
            expected = encoding.down_close(encoding.full & ~1)
            assert encoding.pseudo_difference(encoding.full, 1) == expected
            encoding.pseudo_difference(encoding.full, 2)
            encoding.pseudo_difference(encoding.full, 3)
            assert encoding.pseudo_difference(encoding.full, 1) == expected
        finally:
            encoding._pd_maxsize = PAIR_CACHE_MAXSIZE


class TestPickling:
    def test_encoding_round_trips(self, encoding):
        clone = pickle.loads(pickle.dumps(encoding))
        assert clone.root == encoding.root
        assert clone.size == encoding.size
        assert clone.below == encoding.below
        assert clone.above == encoding.above

    def test_caches_are_not_shipped(self, encoding):
        encoding.complement(0)
        clone = pickle.loads(pickle.dumps(encoding))
        hits, misses, size, _ = clone.cache_info()["complement"]
        assert (hits, misses, size) == (0, 0, 0)

    def test_attribute_classes_round_trip(self):
        root = parse_attribute("R(A, L[K(B, C)], M[D])")
        for node in root.walk():
            assert pickle.loads(pickle.dumps(node)) == node
