"""Unit tests for the bitmask basis encoding (Birkhoff representation)."""

import pytest

from repro.attributes import (
    BasisEncoding,
    bottom,
    complement as struct_complement,
    double_complement as struct_double_complement,
    is_possessed_by,
    iter_bits,
    join as struct_join,
    meet as struct_meet,
    parse_attribute as p,
    parse_subattribute,
    pseudo_difference as struct_diff,
    subattributes,
)
from repro.exceptions import NotAnElementError


class TestIterBits:
    def test_empty(self):
        assert list(iter_bits(0)) == []

    def test_ascending(self):
        assert list(iter_bits(0b10110)) == [1, 2, 4]


class TestConstruction:
    def test_size_and_full(self):
        enc = BasisEncoding(p("R(A, L[B])"))
        assert enc.size == 3
        assert enc.full == 0b111

    def test_below_above_include_self(self):
        enc = BasisEncoding(p("L[A]"))
        for i in range(enc.size):
            assert enc.below[i] & (1 << i)
            assert enc.above[i] & (1 << i)

    def test_maximal_mask(self):
        enc = BasisEncoding(p("L[A]"))
        # basis = (L[λ], L[A]); only L[A] is maximal.
        index = enc.index_of(p("L[A]"))
        assert enc.maximal == 1 << index


class TestConversions:
    def test_encode_decode_roundtrip(self, small_roots):
        for root in small_roots:
            enc = BasisEncoding(root)
            for element in subattributes(root):
                mask = enc.encode(element)
                assert enc.decode(mask) == element

    def test_bottom_is_zero(self, small_roots):
        for root in small_roots:
            enc = BasisEncoding(root)
            assert enc.encode(bottom(root)) == 0
            assert enc.decode(0) == bottom(root)

    def test_root_is_full(self, small_roots):
        for root in small_roots:
            enc = BasisEncoding(root)
            assert enc.encode(root) == enc.full

    def test_encode_rejects_foreign(self):
        enc = BasisEncoding(p("R(A, B)"))
        with pytest.raises(NotAnElementError):
            enc.encode(p("A"))

    def test_decode_rejects_non_downclosed(self):
        enc = BasisEncoding(p("L[A]"))
        top_only = enc.encode(p("L[A]")) & ~enc.encode(parse_subattribute("L[λ]", p("L[A]")))
        with pytest.raises(NotAnElementError):
            enc.decode(top_only)

    def test_index_of_rejects_non_basis(self):
        enc = BasisEncoding(p("R(A, B)"))
        with pytest.raises(NotAnElementError):
            enc.index_of(p("R(A, B)"))  # an element, but not join-irreducible


class TestMaskStructure:
    def test_down_close_idempotent(self):
        enc = BasisEncoding(p("R(A, L[D(B, C)])"))
        for generators in range(enc.full + 1):
            closed = enc.down_close(generators)
            assert enc.down_close(closed) == closed
            assert enc.is_downclosed(closed)

    def test_generators_regenerate(self):
        enc = BasisEncoding(p("R(A, L[D(B, C)])"))
        for generators in range(enc.full + 1):
            closed = enc.down_close(generators)
            assert enc.down_close(enc.generators(closed)) == closed

    def test_is_downclosed_rejects_out_of_range(self):
        enc = BasisEncoding(p("A"))
        assert not enc.is_downclosed(0b10)


class TestOperationsAgreeWithStructural:
    """Every mask operation equals its Definition 3.8 counterpart."""

    def test_join_meet_le(self, small_roots):
        for root in small_roots:
            enc = BasisEncoding(root)
            elements = list(subattributes(root))
            for x in elements:
                for y in elements:
                    mx, my = enc.encode(x), enc.encode(y)
                    assert enc.decode(enc.join(mx, my)) == struct_join(root, x, y)
                    assert enc.decode(enc.meet(mx, my)) == struct_meet(root, x, y)

    def test_pseudo_difference(self, small_roots):
        for root in small_roots:
            enc = BasisEncoding(root)
            elements = list(subattributes(root))
            for x in elements:
                for y in elements:
                    mx, my = enc.encode(x), enc.encode(y)
                    assert enc.decode(enc.pseudo_difference(mx, my)) == struct_diff(
                        root, x, y
                    )

    def test_complement_and_double_complement(self, small_roots):
        for root in small_roots:
            enc = BasisEncoding(root)
            for x in subattributes(root):
                mx = enc.encode(x)
                assert enc.decode(enc.complement(mx)) == struct_complement(root, x)
                assert enc.decode(enc.double_complement(mx)) == (
                    struct_double_complement(root, x)
                )

    def test_possessed(self, small_roots):
        for root in small_roots:
            enc = BasisEncoding(root)
            for x in subattributes(root):
                mx = enc.encode(x)
                expected = 0
                for i, b in enumerate(enc.basis):
                    if is_possessed_by(root, b, x):
                        expected |= 1 << i
                assert enc.possessed(mx) == expected


class TestDescribe:
    def test_describe_uses_paper_notation(self):
        root = p("R(A, L[B])")
        enc = BasisEncoding(root)
        mask = enc.encode(parse_subattribute("R(A, L[λ])", root))
        assert enc.describe(mask) == "R(A, L[λ])"

    def test_repr(self):
        assert "size=2" in repr(BasisEncoding(p("L[A]")))
