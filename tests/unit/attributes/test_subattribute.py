"""Unit tests for the subattribute relation ``≤`` (Definition 3.4)."""

import pytest

from repro.attributes import (
    NULL,
    bottom,
    count_subattributes,
    covers,
    is_bottom,
    is_subattribute,
    parse_attribute as p,
    proper_subattributes,
    subattributes,
)


class TestDefinitionRules:
    """One test per bullet of Definition 3.4."""

    def test_reflexive_on_every_constructor(self):
        for text in ("λ", "A", "L[A]", "R(A, B)", "L[R(A, L2[B])]"):
            n = p(text)
            assert is_subattribute(n, n)

    def test_null_below_flat(self):
        assert is_subattribute(NULL, p("A"))

    def test_null_below_list(self):
        assert is_subattribute(NULL, p("L[A]"))
        assert is_subattribute(NULL, p("L[R(A, B)]"))

    def test_null_not_below_record(self):
        # λ ≤ record does NOT hold; the record's bottom is L(λ,...,λ).
        assert not is_subattribute(NULL, p("R(A, B)"))

    def test_record_componentwise(self):
        assert is_subattribute(p("R(A, λ)"), p("R(A, B)"))
        assert is_subattribute(p("R(λ, λ)"), p("R(A, B)"))
        assert not is_subattribute(p("R(A, B)"), p("R(A, λ)"))

    def test_record_requires_same_label_and_arity(self):
        assert not is_subattribute(p("S(A, B)"), p("R(A, B)"))
        assert not is_subattribute(p("R(A)"), p("R(A, B)"))

    def test_list_elementwise(self):
        assert is_subattribute(p("L[R(A, λ)]"), p("L[R(A, B)]"))
        assert not is_subattribute(p("L[R(A, B)]"), p("L[R(A, λ)]"))

    def test_list_requires_same_label(self):
        assert not is_subattribute(p("M[A]"), p("L[A]"))

    def test_unrelated_constructors(self):
        assert not is_subattribute(p("A"), p("L[A]"))
        assert not is_subattribute(p("L[A]"), p("A"))
        assert not is_subattribute(p("A"), p("B"))

    def test_paper_example_from_section_3_3(self):
        root = p("L1(A, B, L2[L3(C, D)])")
        sub = p("L1(A, λ, L2[L3(λ, λ)])")
        assert is_subattribute(sub, root)


class TestPartialOrderLaws:
    """Lemma 3.5 on a concrete spread of attributes."""

    def test_antisymmetry(self, small_roots):
        for root in small_roots:
            elements = list(subattributes(root))
            for x in elements:
                for y in elements:
                    if is_subattribute(x, y) and is_subattribute(y, x):
                        assert x == y

    def test_transitivity(self, small_roots):
        for root in small_roots:
            elements = list(subattributes(root))
            for x in elements:
                for y in elements:
                    if not is_subattribute(x, y):
                        continue
                    for z in elements:
                        if is_subattribute(y, z):
                            assert is_subattribute(x, z)


class TestBottom:
    def test_bottom_of_flat_and_list_is_null(self):
        assert bottom(p("A")) == NULL
        assert bottom(p("L[A]")) == NULL
        assert bottom(NULL) == NULL

    def test_bottom_of_record_is_record_of_bottoms(self):
        assert bottom(p("R(A, L[B])")) == p("R(λ, λ)")
        assert bottom(p("R(A, S(B, C))")) == p("R(λ, S(λ, λ))")

    def test_bottom_is_least(self, small_roots):
        for root in small_roots:
            least = bottom(root)
            for element in subattributes(root):
                assert is_subattribute(least, element)

    def test_is_bottom(self):
        root = p("R(A, B)")
        assert is_bottom(p("R(λ, λ)"), root)
        assert not is_bottom(p("R(A, λ)"), root)


class TestEnumeration:
    def test_sub_of_null(self):
        assert list(subattributes(NULL)) == [NULL]

    def test_sub_of_flat(self):
        assert list(subattributes(p("A"))) == [NULL, p("A")]

    def test_sub_of_list_is_lifted_plus_minimum(self):
        subs = list(subattributes(p("L[A]")))
        assert subs == [NULL, p("L[λ]"), p("L[A]")]

    def test_sub_of_record_is_product(self):
        subs = set(subattributes(p("R(A, B)")))
        assert subs == {p("R(λ, λ)"), p("R(A, λ)"), p("R(λ, B)"), p("R(A, B)")}

    def test_count_matches_enumeration(self, small_roots):
        for root in small_roots:
            assert count_subattributes(root) == len(list(subattributes(root)))

    def test_count_formula(self):
        # |Sub| formulas: flat=2, list=1+inner, record=product.
        assert count_subattributes(p("R(A, B, C)")) == 8
        assert count_subattributes(p("L[R(A, B)]")) == 5
        assert count_subattributes(p("J[K(A, L[M(B, C)])]")) == 11  # Figure 1

    def test_enumeration_is_deterministic(self):
        root = p("R(A, L[B])")
        assert list(subattributes(root)) == list(subattributes(root))

    def test_all_enumerated_are_subattributes(self, small_roots):
        for root in small_roots:
            for element in subattributes(root):
                assert is_subattribute(element, root)

    def test_proper_subattributes_excludes_root(self):
        root = p("R(A, B)")
        assert root not in set(proper_subattributes(root))
        assert len(list(proper_subattributes(root))) == 3


class TestCovers:
    def test_cover_in_chain(self):
        root = p("L[A]")
        assert covers(root, NULL, p("L[λ]"))
        assert covers(root, p("L[λ]"), p("L[A]"))
        assert not covers(root, NULL, p("L[A]"))  # L[λ] lies between

    def test_not_cover_when_incomparable(self):
        root = p("R(A, B)")
        assert not covers(root, p("R(A, λ)"), p("R(λ, B)"))
