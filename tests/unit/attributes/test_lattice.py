"""Unit tests for the structural Brouwerian operations (Definition 3.8)."""

import pytest

from repro.attributes import (
    NULL,
    bottom,
    complement,
    double_complement,
    is_subattribute,
    join,
    join_all,
    meet,
    meet_all,
    parse_attribute as p,
    parse_subattribute,
    pseudo_difference,
    subattributes,
)
from repro.exceptions import NotAnElementError


def s(text, root):
    return parse_subattribute(text, root)


class TestJoin:
    def test_record_componentwise(self):
        root = p("R(A, B)")
        assert join(root, s("R(A)", root), s("R(B)", root)) == root

    def test_list_lifted(self):
        root = p("L[R(A, B)]")
        assert join(root, s("L[R(A)]", root), s("L[R(B)]", root)) == root

    def test_with_comparable_operands(self):
        root = p("L[A]")
        assert join(root, NULL, s("L[λ]", root)) == s("L[λ]", root)
        assert join(root, s("L[λ]", root), root) == root

    def test_rejects_foreign_elements(self):
        with pytest.raises(NotAnElementError):
            join(p("R(A, B)"), p("A"), p("R(A, λ)"))

    def test_join_all_empty_is_bottom(self):
        root = p("R(A, B)")
        assert join_all(root, []) == bottom(root)


class TestMeet:
    def test_record_componentwise(self):
        root = p("R(A, B)")
        assert meet(root, s("R(A)", root), s("R(B)", root)) == bottom(root)

    def test_lists_share_length_component(self):
        root = p("L[R(A, B)]")
        result = meet(root, s("L[R(A)]", root), s("L[R(B)]", root))
        assert result == s("L[λ]", root)  # bare length survives the meet

    def test_meet_all_empty_is_top(self):
        root = p("R(A, B)")
        assert meet_all(root, []) == root


class TestPseudoDifference:
    def test_relational_case_is_set_difference(self):
        root = p("R(A, B, C)")
        assert pseudo_difference(root, s("R(A, B)", root), s("R(B, C)", root)) == s(
            "R(A)", root
        )

    def test_subtracting_bottom_is_identity(self, small_roots):
        for root in small_roots:
            for element in subattributes(root):
                assert pseudo_difference(root, element, bottom(root)) == element

    def test_result_is_bottom_iff_below(self, small_roots):
        for root in small_roots:
            elements = list(subattributes(root))
            for z in elements:
                for y in elements:
                    result = pseudo_difference(root, z, y)
                    assert (result == bottom(root)) == is_subattribute(z, y)

    def test_paper_list_example(self):
        # Removing only the list structure L[λ] from L[A] removes nothing.
        root = p("L[A]")
        assert pseudo_difference(root, root, s("L[λ]", root)) == root

    def test_nested_list_difference(self):
        root = p("L[R(A, B)]")
        result = pseudo_difference(root, root, s("L[R(A)]", root))
        assert result == s("L[R(B)]", root)


class TestComplement:
    def test_relational_complement(self):
        root = p("R(A, B, C)")
        assert complement(root, s("R(B)", root)) == s("R(A, C)", root)

    def test_paper_non_boolean_example(self):
        # N = L[A], Y = L[λ]: Y^C = N, Y ⊓ Y^C = Y ≠ λ, Y^CC = λ ≠ Y.
        root = p("L[A]")
        y = s("L[λ]", root)
        y_c = complement(root, y)
        assert y_c == root
        assert meet(root, y, y_c) == y
        assert y != NULL
        assert double_complement(root, y) == NULL

    def test_complement_adjunction_characterisation(self, small_roots):
        # Y^C ≤ X iff X ⊔ Y = N, for all X (Section 3.3).
        for root in small_roots:
            elements = list(subattributes(root))
            for y in elements:
                y_c = complement(root, y)
                for x in elements:
                    assert is_subattribute(y_c, x) == (join(root, x, y) == root)

    def test_complement_of_root_is_bottom(self, small_roots):
        for root in small_roots:
            assert complement(root, root) == bottom(root)

    def test_complement_of_bottom_is_root(self, small_roots):
        for root in small_roots:
            assert complement(root, bottom(root)) == root


class TestDoubleComplement:
    def test_decomposition_identity(self, small_roots):
        # X = X^CC ⊔ (X ⊓ X^C) holds in every Brouwerian algebra (§4.2).
        for root in small_roots:
            for x in subattributes(root):
                x_cc = double_complement(root, x)
                overlap = meet(root, x, complement(root, x))
                assert join(root, x_cc, overlap) == x

    def test_double_complement_below_original(self, small_roots):
        for root in small_roots:
            for x in subattributes(root):
                assert is_subattribute(double_complement(root, x), x)
