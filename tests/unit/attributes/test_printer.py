"""Unit tests for the paper-notation printers (Section 3.3 conventions)."""

import pytest

from repro.attributes import (
    NULL,
    parse_attribute as p,
    parse_subattribute,
    subattributes,
    unparse,
    unparse_abbreviated,
)
from repro.exceptions import NotASubattributeError


class TestUnparse:
    def test_null(self):
        assert unparse(NULL) == "λ"

    def test_flat(self):
        assert unparse(p("Beer")) == "Beer"

    def test_record_and_list(self):
        assert unparse(p("Visit[Drink(Beer, Pub)]")) == "Visit[Drink(Beer, Pub)]"

    def test_explicit_lambdas_preserved(self):
        root = p("L1(A, B, L2[L3(C, D)])")
        sub = parse_subattribute("L1(A, L2[λ])", root)
        assert unparse(sub) == "L1(A, λ, L2[L3(λ, λ)])"


class TestUnparseAbbreviated:
    def test_paper_section_3_3_example(self):
        # L1(A, λ, L2[L3(λ, λ)]) is abbreviated L1(A, L2[λ]).
        root = p("L1(A, B, L2[L3(C, D)])")
        sub = parse_subattribute("L1(A, λ, L2[L3(λ, λ)])", root)
        assert unparse_abbreviated(sub, root) == "L1(A, L2[λ])"

    def test_record_of_bottoms_is_lambda(self):
        root = p("R(A, B)")
        sub = parse_subattribute("R(λ, λ)", root)
        assert unparse_abbreviated(sub, root) == "λ"

    def test_duplicate_heads_not_abbreviated(self):
        # The paper: L(A, λ) of L(A, A) cannot be abbreviated by L(A).
        root = p("L(A, A)")
        sub = parse_subattribute("L(A, λ)", root)
        assert unparse_abbreviated(sub, root) == "L(A, λ)"
        other = parse_subattribute("L(λ, A)", root)
        assert unparse_abbreviated(other, root) == "L(λ, A)"

    def test_rejects_non_subattribute(self):
        with pytest.raises(NotASubattributeError):
            unparse_abbreviated(p("A"), p("L[A]"))

    def test_roundtrip_for_all_small_roots(self, small_roots):
        for root in small_roots:
            for element in subattributes(root):
                shown = unparse_abbreviated(element, root)
                assert parse_subattribute(shown, root) == element

    def test_root_displays_as_itself(self, small_roots):
        for root in small_roots:
            assert unparse_abbreviated(root, root) == unparse(root)

    def test_nested_record_abbreviation(self):
        root = p("A(B, C[D(E, F[G])])")
        sub = parse_subattribute("A(C[D(F[λ])])", root)
        assert unparse_abbreviated(sub, root) == "A(C[D(F[λ])])"
