"""Unit tests for the order-theoretic utilities on Sub(N)."""

import pytest

from repro.attributes import BasisEncoding, covers, parse_attribute as p, subattributes
from repro.attributes.order import (
    atoms,
    coatoms,
    interval,
    lower_covers,
    maximal_chain,
    rank,
    upper_covers,
)


@pytest.fixture(params=["L[A]", "R(A, B)", "R(A, L[D(B, C)])", "J[K(A, L[M(B, C)])]"])
def encoding(request):
    return BasisEncoding(p(request.param))


class TestCovers:
    def test_agree_with_structural_cover_relation(self, encoding):
        root = encoding.root
        elements = list(subattributes(root))
        for element in elements:
            mask = encoding.encode(element)
            expected = {
                encoding.encode(other)
                for other in elements
                if covers(root, element, other)
            }
            assert set(upper_covers(encoding, mask)) == expected

    def test_lower_covers_invert_upper_covers(self, encoding):
        for mask in encoding.all_elements():
            for cover in upper_covers(encoding, mask):
                assert mask in lower_covers(encoding, cover)

    def test_covers_add_exactly_one_bit(self, encoding):
        for mask in encoding.all_elements():
            for cover in upper_covers(encoding, mask):
                assert rank(encoding, cover) == rank(encoding, mask) + 1


class TestRankAndChains:
    def test_rank_of_extremes(self, encoding):
        assert rank(encoding, 0) == 0
        assert rank(encoding, encoding.full) == encoding.size

    def test_maximal_chain_length_is_rank_difference(self, encoding):
        chain = maximal_chain(encoding, 0, encoding.full)
        assert len(chain) == encoding.size + 1
        assert chain[0] == 0 and chain[-1] == encoding.full
        for lower, upper in zip(chain, chain[1:]):
            assert upper in upper_covers(encoding, lower)

    def test_maximal_chain_requires_comparability(self):
        encoding = BasisEncoding(p("R(A, B)"))
        a = encoding.encode(p("R(A, λ)"))
        b = encoding.encode(p("R(λ, B)"))
        with pytest.raises(ValueError):
            maximal_chain(encoding, a, b)


class TestAtomsAndCoatoms:
    def test_atoms_of_figure_1(self):
        encoding = BasisEncoding(p("J[K(A, L[M(B, C)])]"))
        # One atom: J[λ] — everything else sits above the outer length.
        assert [encoding.describe(a) for a in atoms(encoding)] == ["J[λ]"]

    def test_atoms_of_flat_record_are_fields(self):
        encoding = BasisEncoding(p("R(A, B, C)"))
        shown = {encoding.describe(a) for a in atoms(encoding)}
        assert shown == {"R(A)", "R(B)", "R(C)"}

    def test_coatoms_count_equals_maximal_basis(self, encoding):
        # Removing one maximal basis attribute of N gives a coatom.
        assert len(coatoms(encoding)) == bin(encoding.maximal).count("1")


class TestInterval:
    def test_full_interval_is_all_elements(self, encoding):
        enumerated = set(interval(encoding, 0, encoding.full))
        assert enumerated == set(encoding.all_elements())

    def test_empty_when_incomparable(self):
        encoding = BasisEncoding(p("R(A, B)"))
        a = encoding.encode(p("R(A, λ)"))
        b = encoding.encode(p("R(λ, B)"))
        assert list(interval(encoding, a, b)) == []

    def test_breadth_first_by_rank(self, encoding):
        ranks = [rank(encoding, m) for m in interval(encoding, 0, encoding.full)]
        assert ranks == sorted(ranks)
