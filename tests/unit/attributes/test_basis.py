"""Unit tests for ``SubB``/``MaxB`` and possession (Definitions 4.7/4.11)."""

import pytest

from repro.attributes import (
    basis,
    basis_of_element,
    basis_size,
    double_complement,
    is_possessed_by,
    is_possessed_by_definition,
    is_subattribute,
    join_all,
    maximal_basis,
    meet,
    complement,
    non_maximal_basis,
    parse_attribute as p,
    parse_subattribute,
    subattributes,
    unparse_abbreviated,
)
from repro.workloads import (
    EXAMPLE_4_8_BASIS,
    EXAMPLE_4_8_MAXIMAL,
    EXAMPLE_4_8_NON_MAXIMAL,
    example_4_8_root,
    example_4_12,
)


class TestExample48:
    """Example 4.8 of the paper, verbatim."""

    def test_basis(self):
        root = example_4_8_root()
        shown = {unparse_abbreviated(b, root) for b in basis(root)}
        assert shown == set(EXAMPLE_4_8_BASIS)

    def test_maximal(self):
        root = example_4_8_root()
        shown = {unparse_abbreviated(b, root) for b in maximal_basis(root)}
        assert shown == set(EXAMPLE_4_8_MAXIMAL)

    def test_non_maximal(self):
        root = example_4_8_root()
        shown = {unparse_abbreviated(b, root) for b in non_maximal_basis(root)}
        assert shown == set(EXAMPLE_4_8_NON_MAXIMAL)


class TestBasisStructure:
    def test_null_has_empty_basis(self):
        assert basis(p("λ")) == ()

    def test_flat_is_its_own_basis(self):
        assert basis(p("A")) == (p("A"),)

    def test_list_adds_new_minimum(self):
        root = p("L[A]")
        assert set(basis(root)) == {p("L[λ]"), p("L[A]")}

    def test_deep_list_chain(self):
        root = p("L1[L2[A]]")
        shown = {unparse_abbreviated(b, root) for b in basis(root)}
        assert shown == {"L1[λ]", "L1[L2[λ]]", "L1[L2[A]]"}

    def test_record_embeds_components(self):
        root = p("R(A, L[B])")
        shown = {unparse_abbreviated(b, root) for b in basis(root)}
        assert shown == {"R(A)", "R(L[λ])", "R(L[B])"}

    def test_basis_size_formula(self, small_roots):
        for root in small_roots:
            assert basis_size(root) == len(basis(root))

    def test_every_element_is_join_of_its_basis(self, small_roots):
        # The defining property of SubB(N) (Definition 4.7).
        for root in small_roots:
            for element in subattributes(root):
                generators = basis_of_element(root, element)
                assert join_all(root, generators) == element

    def test_basis_elements_are_join_irreducible(self, small_roots):
        # No basis attribute is the join of strictly smaller elements.
        for root in small_roots:
            for b in basis(root):
                below = [
                    e
                    for e in subattributes(root)
                    if e != b and is_subattribute(e, b)
                ]
                assert join_all(root, below) != b

    def test_lambda_not_in_basis(self, small_roots):
        from repro.attributes import bottom

        for root in small_roots:
            assert bottom(root) not in basis(root)


class TestMaximality:
    def test_maximal_iff_double_complement_fixed(self, small_roots):
        # Y maximal iff Y = Y^CC (Section 4.2).
        for root in small_roots:
            maximal = set(maximal_basis(root))
            for y in basis(root):
                assert (double_complement(root, y) == y) == (y in maximal)

    def test_non_maximal_iff_meet_with_complement_fixed(self, small_roots):
        # Y non-maximal iff Y = Y ⊓ Y^C (Section 4.2).
        for root in small_roots:
            non_maximal = set(non_maximal_basis(root))
            for y in basis(root):
                overlap = meet(root, y, complement(root, y))
                assert (overlap == y) == (y in non_maximal)

    def test_split_is_a_partition(self, small_roots):
        for root in small_roots:
            maximal = set(maximal_basis(root))
            non_maximal = set(non_maximal_basis(root))
            assert maximal | non_maximal == set(basis(root))
            assert not (maximal & non_maximal)

    def test_every_basis_attribute_below_some_maximal(self, small_roots):
        for root in small_roots:
            maximal = maximal_basis(root)
            for b in basis(root):
                assert any(is_subattribute(b, m) for m in maximal)


class TestPossession:
    """Example 4.12 / Figure 2 and the two characterisations."""

    def test_example_4_12(self):
        root, x, possessed, not_possessed = example_4_12()
        assert is_possessed_by(root, possessed, x)
        assert not is_possessed_by(root, not_possessed, x)

    def test_example_4_12_by_definition(self):
        root, x, possessed, not_possessed = example_4_12()
        assert is_possessed_by_definition(root, possessed, x)
        assert not is_possessed_by_definition(root, not_possessed, x)

    def test_characterisations_agree(self, small_roots):
        # Definition 4.11 vs the §6 working characterisation.
        for root in small_roots:
            for element in subattributes(root):
                for b in basis(root):
                    assert is_possessed_by(root, b, element) == (
                        is_possessed_by_definition(root, b, element)
                    )

    def test_not_possessed_iff_in_complement_basis(self, small_roots):
        # "A basis attribute is not possessed by X exactly if it is also a
        # basis attribute of X^C" (Section 4.2).
        for root in small_roots:
            for element in subattributes(root):
                x_c = complement(root, element)
                for b in basis_of_element(root, element):
                    assert is_possessed_by(root, b, element) == (
                        not is_subattribute(b, x_c)
                    )

    def test_maximal_members_always_possessed(self, small_roots):
        for root in small_roots:
            for element in subattributes(root):
                for b in maximal_basis(root):
                    if is_subattribute(b, element):
                        assert is_possessed_by(root, b, element)


class TestBasisPoset:
    """The structural (mask-based) poset construction behind the encoding."""

    def test_agrees_with_pairwise_order(self, small_roots):
        from repro.attributes.basis import basis_poset

        for root in small_roots:
            elements, below = basis_poset(root)
            assert elements == basis(root)
            for i, mask in enumerate(below):
                expected = 0
                for j, other in enumerate(elements):
                    if is_subattribute(other, elements[i]):
                        expected |= 1 << j
                assert mask == expected, (root, i)

    def test_null_and_flat(self):
        from repro.attributes.basis import basis_poset

        assert basis_poset(p("λ")) == ((), ())
        elements, below = basis_poset(p("A"))
        assert elements == (p("A"),)
        assert below == (1,)

    def test_deep_chain_does_not_recurse(self):
        from repro.attributes.basis import basis_poset
        from repro.workloads import deep_list_chain

        elements, below = basis_poset(deep_list_chain(600))
        assert len(elements) == 601
        # The chain order: below[i] = the first i+1 bits.
        assert below[600] == (1 << 601) - 1

    def test_shared_subterms_regression(self):
        # Hash-equal subtrees under several parents once broke the
        # iterative traversal (a reversed pre-order is not a topological
        # order on a DAG with sharing).
        from repro.attributes.basis import basis_poset

        for text in ("R(L[A], L[A])",
                     "R(S(A, B), S(A, B), L[S(A, B)])",
                     "L[R(M[A], M[A])]"):
            root = p(text)
            elements, below = basis_poset(root)
            assert elements == basis(root)
            for i, mask in enumerate(below):
                expected = 0
                for j, other in enumerate(elements):
                    if is_subattribute(other, elements[i]):
                        expected |= 1 << j
                assert mask == expected, (text, i)
