"""Unit tests for the batch membership API (repro.batch)."""

import pytest

import repro.batch
from repro import BulkReasoner, Schema
from repro.batch import implies_all as batch_implies_all
from repro.exceptions import ReproError
from repro.reasoner import Reasoner

QUERIES = [
    "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
    "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
    "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])",
    "Pubcrawl(Visit[Drink(Pub)]) -> Pubcrawl(Person)",
    "Pubcrawl(Visit[λ]) ->> Pubcrawl(Person)",
]


@pytest.fixture()
def schema():
    return Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")


@pytest.fixture()
def sigma(schema):
    return schema.dependencies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")


@pytest.fixture()
def bulk(schema, sigma):
    return BulkReasoner(schema, sigma)


class TestSerialBatch:
    def test_matches_single_query_api(self, bulk, schema, sigma):
        reasoner = Reasoner(schema, sigma)
        assert bulk.implies_all(QUERIES) == [
            reasoner.implies(query) for query in QUERIES
        ]

    def test_one_closure_per_distinct_lhs(self, bulk):
        bulk.implies_all(QUERIES)
        computed, hits = bulk.cache_info()
        assert computed == 3  # Person, Visit[Drink(Pub)], Visit[λ]
        assert hits == 2      # the two repeated Person queries

    def test_second_batch_is_all_hits(self, bulk):
        bulk.implies_all(QUERIES)
        computed, _ = bulk.cache_info()
        bulk.implies_all(QUERIES)
        after_computed, hits = bulk.cache_info()
        assert after_computed == computed
        assert hits == 2 + len(QUERIES)

    def test_closures_for(self, bulk, schema):
        results = bulk.closures_for(["Pubcrawl(Person)", "Pubcrawl(Person)"])
        assert results[0] is results[1]
        assert schema.show(results[0].closure) == "Pubcrawl(Person, Visit[λ])"

    def test_empty_batch(self, bulk):
        assert bulk.implies_all([]) == []

    def test_invalid_query_raises(self, bulk):
        with pytest.raises(ReproError):
            bulk.implies_all(["Pubcrawl(Nope) -> Pubcrawl(Person)"])

    def test_wraps_existing_reasoner(self, schema, sigma):
        reasoner = Reasoner(schema, sigma)
        bulk = BulkReasoner(reasoner)
        bulk.implies_all(QUERIES)
        computed, _ = reasoner.cache_info()
        assert computed == 3  # cache shared, not copied

    def test_cache_clear_passthrough(self, bulk):
        bulk.implies_all(QUERIES)
        bulk.cache_clear()
        assert bulk.cache_info() == (0, 0)

    def test_repr(self, bulk):
        assert "BulkReasoner" in repr(bulk)


class TestFunctionalFacade:
    def test_one_shot(self, schema, sigma, bulk):
        assert batch_implies_all(schema, sigma, QUERIES) == bulk.implies_all(QUERIES)

    def test_accepts_texts(self):
        verdicts = batch_implies_all(
            "R(A, B, C)", ["R(A) -> R(B)", "R(B) -> R(C)"],
            ["R(A) -> R(C)", "R(C) -> R(A)"],
        )
        assert verdicts == [True, False]


class TestParallelBatch:
    def test_pool_matches_serial(self, schema, sigma, monkeypatch):
        # Lower the fan-out threshold so this small batch exercises the
        # real process pool.
        monkeypatch.setattr(repro.batch, "_MIN_PARALLEL_LHS", 1)
        serial = BulkReasoner(schema, sigma).implies_all(QUERIES)
        parallel = BulkReasoner(schema, sigma, workers=2).implies_all(QUERIES)
        assert parallel == serial

    def test_pool_seeds_the_cache(self, schema, sigma, monkeypatch):
        monkeypatch.setattr(repro.batch, "_MIN_PARALLEL_LHS", 1)
        bulk = BulkReasoner(schema, sigma, workers=2)
        bulk.implies_all(QUERIES)
        computed, hits = bulk.cache_info()
        assert computed == 3
        # Prefetched results serve every query as a cache hit.
        assert hits == len(QUERIES)

    def test_small_batches_stay_serial(self, schema, sigma):
        # Below the threshold no pool is spawned even with workers set;
        # behaviour is observable through identical verdicts and counters.
        bulk = BulkReasoner(schema, sigma, workers=8)
        assert bulk.implies_all(QUERIES[:2]) == [True, True]
        computed, _ = bulk.cache_info()
        assert computed == 1

    def test_workers_override_per_call(self, schema, sigma, monkeypatch):
        monkeypatch.setattr(repro.batch, "_MIN_PARALLEL_LHS", 1)
        bulk = BulkReasoner(schema, sigma)
        assert bulk.implies_all(QUERIES, workers=2) == bulk.implies_all(QUERIES)


class TestBatchObservability:
    """Per-query spans, and worker spans merged across the process pool."""

    @pytest.fixture()
    def sink(self):
        from repro.obs import InMemorySink

        return InMemorySink()

    def test_serial_batch_emits_per_query_spans(self, schema, sigma, sink):
        from repro.obs import Observer, install

        with install(Observer([sink])):
            verdicts = BulkReasoner(schema, sigma).implies_all(QUERIES)

        [batch] = sink.by_name("batch.implies_all")
        assert batch["attrs"] == {"queries": 5, "distinct_lhs": 3, "workers": 0}
        queries = sink.by_name("batch.query")
        assert [q["attrs"]["index"] for q in queries] == [0, 1, 2, 3, 4]
        assert all(q["parent"] == batch["id"] for q in queries)
        assert [q["attrs"]["verdict"] for q in queries] == verdicts
        assert [q["attrs"]["kind"] for q in queries] == \
            ["fd", "mvd", "mvd", "fd", "mvd"]
        # the three computed LHSs nest a reasoner.query -> closure.compute
        # chain under their batch.query span; the two hits do not
        reasoner_spans = sink.by_name("reasoner.query")
        assert len(reasoner_spans) == 3
        assert {r["parent"] for r in reasoner_spans} <= \
            {q["id"] for q in queries}
        assert len(sink.by_name("closure.compute")) == 3

    def test_batch_metrics(self, schema, sigma):
        from repro.obs import Observer, install

        with install(Observer()) as observer:
            BulkReasoner(schema, sigma).implies_all(QUERIES)
            snapshot = observer.metrics.snapshot()
        assert snapshot["counters"]["batch.queries"] == 5
        assert snapshot["counters"]["batch.batches"] == 1
        assert snapshot["counters"]["closure.runs"] == 3
        assert snapshot["histograms"]["batch.fanout"]["max"] == 3

    def test_disabled_observer_records_nothing(self, schema, sigma, sink):
        BulkReasoner(schema, sigma).implies_all(QUERIES)
        assert sink.spans == []

    def test_pool_worker_spans_merge_into_parent(self, schema, sigma, sink,
                                                 monkeypatch):
        from repro.obs import Observer, install, validate_records

        monkeypatch.setattr(repro.batch, "_MIN_PARALLEL_LHS", 1)
        with install(Observer([sink])):
            BulkReasoner(schema, sigma, workers=2).implies_all(QUERIES)

        [batch] = sink.by_name("batch.implies_all")
        [prefetch] = sink.by_name("batch.prefetch")
        assert prefetch["parent"] == batch["id"]
        assert prefetch["attrs"] == {"pending": 3, "workers": 2,
                                     "parallel": True}

        workers = sink.by_name("batch.worker")
        assert len(workers) == 3  # one per distinct uncached LHS
        assert all(w["parent"] == prefetch["id"] for w in workers)
        assert all(isinstance(w["attrs"]["pid"], int) for w in workers)

        # each worker's closure.compute child was re-parented with it
        worker_ids = {w["id"] for w in workers}
        worker_closures = [
            c for c in sink.by_name("closure.compute")
            if c["parent"] in worker_ids
        ]
        assert len(worker_closures) == 3
        # merged ids are unique and the whole trace stays well-formed
        counts = validate_records(sink.spans)
        assert counts["spans"] == len(sink.spans)

    def test_pool_metrics_count_dispatch(self, schema, sigma, monkeypatch):
        from repro.obs import Observer, install

        monkeypatch.setattr(repro.batch, "_MIN_PARALLEL_LHS", 1)
        with install(Observer()) as observer:
            BulkReasoner(schema, sigma, workers=2).implies_all(QUERIES)
            counters = observer.metrics.snapshot()["counters"]
        assert counters["batch.pool_dispatches"] == 1
        # worker-side kernel runs happen in the workers; the parent's
        # closure.runs counter only counts local runs (zero here — every
        # query is served from the prefetched cache)
        assert counters.get("closure.runs", 0) == 0


class TestPoolLifecycle:
    """The worker pool is a context-managed resource (shared contract
    with the server): lazy, persistent across batches, never leaked."""

    @pytest.fixture(autouse=True)
    def small_threshold(self, monkeypatch):
        monkeypatch.setattr(repro.batch, "_MIN_PARALLEL_LHS", 1)

    def test_context_manager_releases_the_pool(self, schema, sigma):
        with BulkReasoner(schema, sigma, workers=2) as bulk:
            bulk.implies_all(QUERIES)
            assert bulk._pool is not None
        assert bulk._pool is None

    def test_pool_persists_across_batches(self, schema, sigma):
        with BulkReasoner(schema, sigma, workers=2) as bulk:
            bulk.implies_all(QUERIES)
            first = bulk._pool
            bulk.cache_clear()
            bulk.implies_all(QUERIES)
            assert bulk._pool is first  # warmed workers were reused

    def test_shutdown_is_idempotent_and_recoverable(self, schema, sigma):
        bulk = BulkReasoner(schema, sigma, workers=2)
        bulk.implies_all(QUERIES)
        bulk.shutdown()
        bulk.shutdown()
        assert bulk._pool is None
        bulk.cache_clear()
        # the next parallel batch warms a fresh pool transparently
        assert bulk.implies_all(QUERIES) == [True, True, True, False, False]
        bulk.shutdown()

    def test_shutdown_without_pool_is_a_noop(self, schema, sigma):
        BulkReasoner(schema, sigma).shutdown()

    def test_exception_inside_context_still_releases(self, schema, sigma):
        with pytest.raises(ReproError):
            with BulkReasoner(schema, sigma, workers=2) as bulk:
                bulk.implies_all(QUERIES)
                assert bulk._pool is not None
                bulk.implies_all(["Pubcrawl(Nope) -> Pubcrawl(Person)"])
        assert bulk._pool is None

    def test_sigma_edit_retires_the_warmed_pool(self, schema, sigma):
        with BulkReasoner(schema, sigma, workers=2) as bulk:
            bulk.implies_all(QUERIES)
            stale = bulk._pool
            bulk.reasoner.session.add(
                "Pubcrawl(Visit[λ]) -> Pubcrawl(Person)")
            bulk.cache_clear()
            bulk.implies_all(QUERIES)
            # workers initialised with the old Σ must not answer for the new
            assert bulk._pool is not stale

    def test_observer_toggle_retires_the_warmed_pool(self, schema, sigma):
        from repro.obs import Observer, install

        with BulkReasoner(schema, sigma, workers=2) as bulk:
            bulk.implies_all(QUERIES)
            plain = bulk._pool
            bulk.cache_clear()
            with install(Observer()):
                bulk.implies_all(QUERIES)
                assert bulk._pool is not plain  # span-collecting workers
