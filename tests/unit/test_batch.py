"""Unit tests for the batch membership API (repro.batch)."""

import pytest

import repro.batch
from repro import BulkReasoner, Schema
from repro.batch import implies_all as batch_implies_all
from repro.exceptions import ReproError
from repro.reasoner import Reasoner

QUERIES = [
    "Pubcrawl(Person) -> Pubcrawl(Visit[λ])",
    "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Beer)])",
    "Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])",
    "Pubcrawl(Visit[Drink(Pub)]) -> Pubcrawl(Person)",
    "Pubcrawl(Visit[λ]) ->> Pubcrawl(Person)",
]


@pytest.fixture()
def schema():
    return Schema("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")


@pytest.fixture()
def sigma(schema):
    return schema.dependencies("Pubcrawl(Person) ->> Pubcrawl(Visit[Drink(Pub)])")


@pytest.fixture()
def bulk(schema, sigma):
    return BulkReasoner(schema, sigma)


class TestSerialBatch:
    def test_matches_single_query_api(self, bulk, schema, sigma):
        reasoner = Reasoner(schema, sigma)
        assert bulk.implies_all(QUERIES) == [
            reasoner.implies(query) for query in QUERIES
        ]

    def test_one_closure_per_distinct_lhs(self, bulk):
        bulk.implies_all(QUERIES)
        computed, hits = bulk.cache_info()
        assert computed == 3  # Person, Visit[Drink(Pub)], Visit[λ]
        assert hits == 2      # the two repeated Person queries

    def test_second_batch_is_all_hits(self, bulk):
        bulk.implies_all(QUERIES)
        computed, _ = bulk.cache_info()
        bulk.implies_all(QUERIES)
        after_computed, hits = bulk.cache_info()
        assert after_computed == computed
        assert hits == 2 + len(QUERIES)

    def test_closures_for(self, bulk, schema):
        results = bulk.closures_for(["Pubcrawl(Person)", "Pubcrawl(Person)"])
        assert results[0] is results[1]
        assert schema.show(results[0].closure) == "Pubcrawl(Person, Visit[λ])"

    def test_empty_batch(self, bulk):
        assert bulk.implies_all([]) == []

    def test_invalid_query_raises(self, bulk):
        with pytest.raises(ReproError):
            bulk.implies_all(["Pubcrawl(Nope) -> Pubcrawl(Person)"])

    def test_wraps_existing_reasoner(self, schema, sigma):
        reasoner = Reasoner(schema, sigma)
        bulk = BulkReasoner(reasoner)
        bulk.implies_all(QUERIES)
        computed, _ = reasoner.cache_info()
        assert computed == 3  # cache shared, not copied

    def test_cache_clear_passthrough(self, bulk):
        bulk.implies_all(QUERIES)
        bulk.cache_clear()
        assert bulk.cache_info() == (0, 0)

    def test_repr(self, bulk):
        assert "BulkReasoner" in repr(bulk)


class TestFunctionalFacade:
    def test_one_shot(self, schema, sigma, bulk):
        assert batch_implies_all(schema, sigma, QUERIES) == bulk.implies_all(QUERIES)

    def test_accepts_texts(self):
        verdicts = batch_implies_all(
            "R(A, B, C)", ["R(A) -> R(B)", "R(B) -> R(C)"],
            ["R(A) -> R(C)", "R(C) -> R(A)"],
        )
        assert verdicts == [True, False]


class TestParallelBatch:
    def test_pool_matches_serial(self, schema, sigma, monkeypatch):
        # Lower the fan-out threshold so this small batch exercises the
        # real process pool.
        monkeypatch.setattr(repro.batch, "_MIN_PARALLEL_LHS", 1)
        serial = BulkReasoner(schema, sigma).implies_all(QUERIES)
        parallel = BulkReasoner(schema, sigma, workers=2).implies_all(QUERIES)
        assert parallel == serial

    def test_pool_seeds_the_cache(self, schema, sigma, monkeypatch):
        monkeypatch.setattr(repro.batch, "_MIN_PARALLEL_LHS", 1)
        bulk = BulkReasoner(schema, sigma, workers=2)
        bulk.implies_all(QUERIES)
        computed, hits = bulk.cache_info()
        assert computed == 3
        # Prefetched results serve every query as a cache hit.
        assert hits == len(QUERIES)

    def test_small_batches_stay_serial(self, schema, sigma):
        # Below the threshold no pool is spawned even with workers set;
        # behaviour is observable through identical verdicts and counters.
        bulk = BulkReasoner(schema, sigma, workers=8)
        assert bulk.implies_all(QUERIES[:2]) == [True, True]
        computed, _ = bulk.cache_info()
        assert computed == 1

    def test_workers_override_per_call(self, schema, sigma, monkeypatch):
        monkeypatch.setattr(repro.batch, "_MIN_PARALLEL_LHS", 1)
        bulk = BulkReasoner(schema, sigma)
        assert bulk.implies_all(QUERIES, workers=2) == bulk.implies_all(QUERIES)
