"""Unit tests for dependency sets ``Σ``."""

import pytest

from repro.attributes import parse_attribute as p
from repro.dependencies import DependencySet, parse_dependency
from repro.exceptions import NotAnElementError


@pytest.fixture()
def root():
    return p("R(A, B, C)")


@pytest.fixture()
def sigma(root):
    return DependencySet.parse(
        root,
        ["R(A) -> R(B)", "R(B) ->> R(C)", "R(A) -> R(B)"],  # duplicate on purpose
    )


class TestConstruction:
    def test_deduplicates_preserving_order(self, root, sigma):
        assert len(sigma) == 2
        assert [d.is_fd for d in sigma] == [True, False]

    def test_validates_members(self, root):
        foreign = parse_dependency("S(A) -> S(B)", p("S(A, B)"))
        with pytest.raises(NotAnElementError):
            DependencySet(root, [foreign])

    def test_parse_classmethod(self, root, sigma):
        assert sigma.root == root


class TestViews:
    def test_fds_and_mvds(self, sigma, root):
        assert len(sigma.fds()) == 1
        assert len(sigma.mvds()) == 1
        assert sigma.fds()[0] == parse_dependency("R(A) -> R(B)", root)

    def test_contains(self, sigma, root):
        assert parse_dependency("R(B) ->> R(C)", root) in sigma
        assert parse_dependency("R(C) -> R(A)", root) not in sigma

    def test_dependencies_tuple(self, sigma):
        assert isinstance(sigma.dependencies, tuple)


class TestSetAlgebra:
    def test_with_dependency(self, sigma, root):
        extended = sigma.with_dependency(parse_dependency("R(C) -> R(A)", root))
        assert len(extended) == 3
        assert len(sigma) == 2  # original untouched

    def test_with_existing_is_noop(self, sigma, root):
        assert len(sigma.with_dependency(parse_dependency("R(A) -> R(B)", root))) == 2

    def test_without(self, sigma, root):
        reduced = sigma.without(parse_dependency("R(A) -> R(B)", root))
        assert len(reduced) == 1

    def test_union(self, sigma, root):
        other = DependencySet.parse(root, ["R(C) -> R(A)"])
        merged = sigma.union(other)
        assert len(merged) == 3

    def test_union_requires_same_root(self, sigma):
        other = DependencySet.parse(p("S(A, B)"), ["S(A) -> S(B)"])
        with pytest.raises(ValueError):
            sigma.union(other)


class TestEqualityAndDisplay:
    def test_equality_is_order_insensitive(self, root):
        first = DependencySet.parse(root, ["R(A) -> R(B)", "R(B) ->> R(C)"])
        second = DependencySet.parse(root, ["R(B) ->> R(C)", "R(A) -> R(B)"])
        assert first == second
        assert hash(first) == hash(second)

    def test_display(self, sigma):
        text = sigma.display()
        assert "->" in text and "->>" in text

    def test_display_empty(self, root):
        assert DependencySet(root).display() == "(empty)"

    def test_repr(self, sigma):
        assert "n_fds=1" in repr(sigma) and "n_mvds=1" in repr(sigma)
