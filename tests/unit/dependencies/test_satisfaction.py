"""Unit tests for satisfaction checking (Definition 4.1, Theorem 4.4)."""

import pytest

from repro.attributes import parse_attribute as p
from repro.dependencies import (
    DependencySet,
    parse_dependency,
    satisfies,
    satisfies_all,
    satisfies_fd,
    satisfies_mvd,
    satisfies_mvd_via_join,
    violating_fd_pair,
    violating_mvd_pair,
)
from repro.values import project


class TestPubcrawlVerdicts:
    """Example 4.2's four stated verdicts, end to end."""

    def test_failing_fds(self, pubcrawl_scenario):
        for text in pubcrawl_scenario.failing_fd_texts:
            dep = parse_dependency(text, pubcrawl_scenario.root)
            assert not satisfies(
                pubcrawl_scenario.root, pubcrawl_scenario.instance, dep
            )

    def test_holding_mvd(self, pubcrawl_scenario):
        dep = parse_dependency(
            pubcrawl_scenario.holding_mvd_text, pubcrawl_scenario.root
        )
        assert satisfies(pubcrawl_scenario.root, pubcrawl_scenario.instance, dep)

    def test_holding_fd(self, pubcrawl_scenario):
        dep = parse_dependency(
            pubcrawl_scenario.holding_fd_text, pubcrawl_scenario.root
        )
        assert satisfies(pubcrawl_scenario.root, pubcrawl_scenario.instance, dep)

    def test_mvd_checkers_agree_on_pubcrawl(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        for text in (
            pubcrawl_scenario.holding_mvd_text,
            "Pubcrawl(Visit[λ]) ->> Pubcrawl(Person)",
            "λ ->> Pubcrawl(Person)",
        ):
            mvd = parse_dependency(text, root)
            assert satisfies_mvd(root, pubcrawl_scenario.instance, mvd) == (
                satisfies_mvd_via_join(root, pubcrawl_scenario.instance, mvd)
            )


class TestFDChecking:
    def test_empty_and_singleton_instances_satisfy_everything(self):
        root = p("R(A, B)")
        fd = parse_dependency("R(A) -> R(B)", root)
        assert satisfies_fd(root, set(), fd)
        assert satisfies_fd(root, {(1, 2)}, fd)

    def test_violating_pair_is_returned(self):
        root = p("R(A, B)")
        fd = parse_dependency("R(A) -> R(B)", root)
        instance = {(1, 1), (1, 2), (3, 3)}
        pair = violating_fd_pair(root, instance, fd)
        assert pair is not None
        t1, t2 = pair
        assert project(root, fd.lhs, t1) == project(root, fd.lhs, t2)
        assert project(root, fd.rhs, t1) != project(root, fd.rhs, t2)

    def test_no_pair_when_satisfied(self):
        root = p("R(A, B)")
        fd = parse_dependency("R(A) -> R(B)", root)
        assert violating_fd_pair(root, {(1, 1), (2, 5)}, fd) is None

    def test_trivial_fd_always_holds(self):
        root = p("R(A, B)")
        fd = parse_dependency("R(A, B) -> R(A)", root)
        assert satisfies_fd(root, {(1, 1), (1, 2), (2, 2)}, fd)


class TestMVDChecking:
    def test_exchange_required(self):
        root = p("R(A, B, C)")
        mvd = parse_dependency("R(A) ->> R(B)", root)
        incomplete = {(1, "b1", "c1"), (1, "b2", "c2")}
        assert not satisfies_mvd(root, incomplete, mvd)
        complete = incomplete | {(1, "b1", "c2"), (1, "b2", "c1")}
        assert satisfies_mvd(root, complete, mvd)

    def test_violating_mvd_pair_identifies_missing_exchange(self):
        root = p("R(A, B, C)")
        mvd = parse_dependency("R(A) ->> R(B)", root)
        instance = {(1, "b1", "c1"), (1, "b2", "c2")}
        pair = violating_mvd_pair(root, instance, mvd)
        assert pair is not None
        t1, t2 = pair
        assert project(root, mvd.lhs, t1) == project(root, mvd.lhs, t2)

    def test_no_pair_when_satisfied(self):
        root = p("R(A, B, C)")
        mvd = parse_dependency("R(A) ->> R(B)", root)
        assert violating_mvd_pair(root, {(1, "b", "c")}, mvd) is None

    def test_mvd_on_lists_decouples_components(self):
        root = p("R(L1[A], L2[B])")
        mvd = parse_dependency("λ ->> R(L1[A])", root)
        coupled = {((1,), (1,)), ((2, 2), (2, 2))}
        assert not satisfies_mvd(root, coupled, mvd)
        decoupled = coupled | {((1,), (2, 2)), ((2, 2), (1,))}
        assert satisfies_mvd(root, decoupled, mvd)

    def test_mvd_on_bare_length_degenerates_to_fd(self):
        # Y = R(L1[λ]) has Y ⊓ Y^C = Y, so λ ↠ Y is equivalent to the FD
        # λ → Y (every tuple shares the L1 length) — the semantic face of
        # the paper's mixed meet rule.
        root = p("R(L1[A], L2[B])")
        mvd = parse_dependency("λ ->> R(L1[λ])", root)
        same_length = {((1,), (1,)), ((2,), (2, 2))}
        assert satisfies_mvd(root, same_length, mvd)
        mixed_lengths = {((1,), (1,)), ((2, 2), (2, 2))}
        assert not satisfies_mvd(root, mixed_lengths, mvd)

    def test_via_join_checker_same_verdicts(self):
        root = p("R(A, B, C)")
        mvd = parse_dependency("R(A) ->> R(B)", root)
        incomplete = {(1, "b1", "c1"), (1, "b2", "c2")}
        assert not satisfies_mvd_via_join(root, incomplete, mvd)
        complete = incomplete | {(1, "b1", "c2"), (1, "b2", "c1")}
        assert satisfies_mvd_via_join(root, complete, mvd)


class TestSatisfiesAll:
    def test_mixed_set(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        sigma = DependencySet.parse(
            root,
            [
                pubcrawl_scenario.holding_mvd_text,
                pubcrawl_scenario.holding_fd_text,
            ],
        )
        assert satisfies_all(root, pubcrawl_scenario.instance, sigma)

    def test_fails_on_any_violation(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        sigma = DependencySet.parse(
            root,
            [
                pubcrawl_scenario.holding_mvd_text,
                pubcrawl_scenario.failing_fd_texts[0],
            ],
        )
        assert not satisfies_all(root, pubcrawl_scenario.instance, sigma)

    def test_plain_iterable_accepted(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        deps = [parse_dependency(pubcrawl_scenario.holding_fd_text, root)]
        assert satisfies_all(root, pubcrawl_scenario.instance, deps)
