"""Unit tests for FD/MVD objects and parsing (Definition 4.1, Lemma 4.3)."""

import pytest

from repro.attributes import parse_attribute as p, parse_subattribute
from repro.dependencies import (
    FD,
    MVD,
    FunctionalDependency,
    MultivaluedDependency,
    parse_dependency,
)
from repro.exceptions import DependencySyntaxError, NotAnElementError


def s(text, root):
    return parse_subattribute(text, root)


class TestParsing:
    def test_fd_arrow(self):
        root = p("R(A, B)")
        dep = parse_dependency("R(A) -> R(B)", root)
        assert isinstance(dep, FunctionalDependency)
        assert dep.is_fd and not dep.is_mvd

    def test_mvd_arrow(self):
        root = p("R(A, B)")
        dep = parse_dependency("R(A) ->> R(B)", root)
        assert isinstance(dep, MultivaluedDependency)
        assert dep.is_mvd and not dep.is_fd

    def test_unicode_arrows(self):
        root = p("R(A, B)")
        assert parse_dependency("R(A) → R(B)", root).is_fd
        assert parse_dependency("R(A) ↠ R(B)", root).is_mvd

    def test_mvd_not_misparsed_as_fd(self):
        # "->>" contains "->"; the MVD arrow must win.
        root = p("R(A, B)")
        assert parse_dependency("R(A)->>R(B)", root).is_mvd

    def test_abbreviated_sides_resolved(self):
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        dep = parse_dependency("Pubcrawl(Person) -> Pubcrawl(Visit[λ])", root)
        assert dep.lhs == s("Pubcrawl(Person)", root)
        assert dep.rhs == s("Pubcrawl(Visit[λ])", root)

    def test_missing_arrow(self):
        with pytest.raises(DependencySyntaxError):
            parse_dependency("R(A) R(B)", p("R(A, B)"))

    def test_aliases(self):
        assert FD is FunctionalDependency
        assert MVD is MultivaluedDependency


class TestValidation:
    def test_validate_accepts_elements(self):
        root = p("R(A, B)")
        FD(s("R(A)", root), s("R(B)", root)).validate(root)

    def test_validate_rejects_foreign_sides(self):
        root = p("R(A, B)")
        with pytest.raises(NotAnElementError):
            FD(p("A"), s("R(B)", root)).validate(root)
        with pytest.raises(NotAnElementError):
            MVD(s("R(A)", root), p("Z")).validate(root)


class TestTrivialityLemma43:
    def test_fd_trivial_iff_rhs_below_lhs(self):
        root = p("R(A, B)")
        assert FD(s("R(A, B)", root), s("R(A)", root)).is_trivial(root)
        assert FD(s("R(A)", root), s("R(A)", root)).is_trivial(root)
        assert not FD(s("R(A)", root), s("R(B)", root)).is_trivial(root)

    def test_mvd_trivial_when_rhs_below_lhs(self):
        root = p("R(A, B)")
        assert MVD(s("R(A)", root), s("λ", root)).is_trivial(root)

    def test_mvd_trivial_when_join_is_root(self):
        root = p("R(A, B)")
        assert MVD(s("R(A)", root), s("R(A, B)", root)).is_trivial(root)
        assert MVD(s("R(A)", root), s("R(B)", root)).is_trivial(root)

    def test_mvd_nontrivial_case(self):
        root = p("R(A, B, C)")
        assert not MVD(s("R(A)", root), s("R(B)", root)).is_trivial(root)

    def test_list_length_mvd_triviality(self):
        # X ↠ L[λ] with X = λ: join λ ⊔ L[λ] = L[λ] ≠ L[A]: non-trivial.
        root = p("L[A]")
        assert not MVD(s("λ", root), s("L[λ]", root)).is_trivial(root)


class TestComplementedAndDisplay:
    def test_complemented(self):
        root = p("R(A, B, C)")
        mvd = MVD(s("R(A)", root), s("R(B)", root))
        assert mvd.complemented(root).rhs == s("R(A, C)", root)

    def test_display_with_root_abbreviates(self):
        root = p("Pubcrawl(Person, Visit[Drink(Beer, Pub)])")
        dep = parse_dependency("Pubcrawl(Person) -> Pubcrawl(Visit[λ])", root)
        assert dep.display(root) == "Pubcrawl(Person) -> Pubcrawl(Visit[λ])"

    def test_display_without_root_is_explicit(self):
        root = p("R(A, B)")
        dep = parse_dependency("R(A) ->> R(B)", root)
        assert dep.display() == "R(A, λ) ->> R(λ, B)"
        assert str(dep) == dep.display()

    def test_hashable_and_equal(self):
        root = p("R(A, B)")
        first = parse_dependency("R(A) -> R(B)", root)
        second = parse_dependency("R(A) -> R(B)", root)
        assert first == second
        assert hash(first) == hash(second)
        assert first != parse_dependency("R(A) ->> R(B)", root)
