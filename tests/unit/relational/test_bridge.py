"""Unit tests for the flat-schema / nested-attribute bridge."""

import pytest

from repro.attributes import Flat, NULL, Record
from repro.relational import (
    RelFD,
    RelMVD,
    RelationSchema,
    dependency_to_nested,
    dependency_to_relational,
    schema_to_attribute,
    sigma_to_nested,
    subattribute_to_subset,
    subset_to_subattribute,
)


@pytest.fixture()
def schema():
    return RelationSchema("CAB")  # deliberately unsorted input


class TestSchemaMapping:
    def test_attributes_sorted(self, schema):
        attribute = schema_to_attribute(schema)
        assert attribute == Record("R", (Flat("A"), Flat("B"), Flat("C")))

    def test_subset_roundtrip(self, schema):
        for subset in ({"A"}, {"B", "C"}, set(), {"A", "B", "C"}):
            element = subset_to_subattribute(schema, subset)
            assert subattribute_to_subset(schema, element) == frozenset(subset)

    def test_subset_positions(self, schema):
        element = subset_to_subattribute(schema, {"B"})
        assert element == Record("R", (NULL, Flat("B"), NULL))

    def test_subset_validation(self, schema):
        with pytest.raises(ValueError):
            subset_to_subattribute(schema, {"Z"})

    def test_subattribute_to_subset_rejects_foreign(self, schema):
        with pytest.raises(ValueError):
            subattribute_to_subset(schema, Flat("A"))
        with pytest.raises(ValueError):
            subattribute_to_subset(schema, Record("R", (Flat("A"),)))


class TestDependencyMapping:
    def test_fd_roundtrip(self, schema):
        fd = RelFD({"A"}, {"B", "C"})
        nested = dependency_to_nested(schema, fd)
        assert nested.is_fd
        assert dependency_to_relational(schema, nested) == fd

    def test_mvd_roundtrip(self, schema):
        mvd = RelMVD({"A", "B"}, {"C"})
        nested = dependency_to_nested(schema, mvd)
        assert nested.is_mvd
        assert dependency_to_relational(schema, nested) == mvd

    def test_sigma_to_nested(self, schema):
        sigma = sigma_to_nested(schema, [RelFD({"A"}, {"B"}), RelMVD({"B"}, {"C"})])
        assert len(sigma) == 2
        assert sigma.root == schema_to_attribute(schema)


class TestSemanticsPreserved:
    def test_implication_agrees_across_bridge(self, schema):
        from repro.core import implies
        from repro.relational import relational_implies

        sigma_rel = [RelFD({"A"}, {"B"}), RelMVD({"B"}, {"C"})]
        sigma_nested = sigma_to_nested(schema, sigma_rel)
        for target in (
            RelFD({"A"}, {"B"}),
            RelFD({"A"}, {"C"}),
            RelMVD({"A"}, {"C"}),
            RelMVD({"C"}, {"A"}),
        ):
            assert relational_implies(schema, sigma_rel, target) == implies(
                sigma_nested, dependency_to_nested(schema, target)
            )
