"""Unit tests for classical relation schemas and dependencies."""

import pytest

from repro.relational import RelFD, RelMVD, RelationSchema


class TestRelationSchema:
    def test_attributes_frozen(self):
        schema = RelationSchema(["A", "B", "A"])
        assert schema.attributes == frozenset({"A", "B"})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RelationSchema([])

    def test_validate_subset(self):
        schema = RelationSchema("ABC")
        assert schema.validate_subset({"A"}) == frozenset({"A"})
        with pytest.raises(ValueError):
            schema.validate_subset({"Z"})

    def test_complement(self):
        schema = RelationSchema("ABC")
        assert schema.complement({"A"}) == frozenset({"B", "C"})

    def test_equality_and_hash(self):
        assert RelationSchema("AB") == RelationSchema(["B", "A"])
        assert hash(RelationSchema("AB")) == hash(RelationSchema("BA"))
        assert RelationSchema("AB", name="S") != RelationSchema("AB")

    def test_repr(self):
        assert "['A', 'B']" in repr(RelationSchema("BA"))


class TestRelDependencies:
    def test_fd_flag(self):
        assert RelFD({"A"}, {"B"}).is_fd
        assert not RelMVD({"A"}, {"B"}).is_fd

    def test_frozen_sides(self):
        fd = RelFD(["A", "A"], ["B"])
        assert fd.lhs == frozenset({"A"})
        assert isinstance(fd.lhs, frozenset)

    def test_equality(self):
        assert RelFD({"A"}, {"B"}) == RelFD(["A"], ["B"])
        assert RelFD({"A"}, {"B"}) != RelMVD({"A"}, {"B"})

    def test_str(self):
        assert str(RelFD({"A"}, {"B", "C"})) == "{A} -> {B, C}"
        assert str(RelMVD({"A"}, {"B"})) == "{A} ->> {B}"
