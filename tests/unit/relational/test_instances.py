"""Unit tests for classical relational instance satisfaction."""

import random

import pytest

from repro.relational import (
    RelFD,
    RelMVD,
    RelationSchema,
    freeze_rows,
    rel_satisfies,
    rel_satisfies_fd,
    rel_satisfies_mvd,
)


@pytest.fixture()
def schema():
    return RelationSchema("ABC")


class TestFreezeRows:
    def test_valid_rows(self, schema):
        instance = freeze_rows(schema, [{"A": 1, "B": 2, "C": 3}])
        assert len(instance) == 1

    def test_deduplicates(self, schema):
        instance = freeze_rows(
            schema, [{"A": 1, "B": 2, "C": 3}, {"C": 3, "B": 2, "A": 1}]
        )
        assert len(instance) == 1

    def test_missing_attribute_rejected(self, schema):
        with pytest.raises(ValueError):
            freeze_rows(schema, [{"A": 1, "B": 2}])

    def test_stray_attribute_rejected(self, schema):
        with pytest.raises(ValueError):
            freeze_rows(schema, [{"A": 1, "B": 2, "C": 3, "Z": 4}])


class TestFDs:
    def test_satisfied(self, schema):
        instance = freeze_rows(
            schema, [{"A": 1, "B": 2, "C": 3}, {"A": 1, "B": 2, "C": 4}]
        )
        assert rel_satisfies_fd(schema, instance, RelFD({"A"}, {"B"}))

    def test_violated(self, schema):
        instance = freeze_rows(
            schema, [{"A": 1, "B": 2, "C": 3}, {"A": 1, "B": 9, "C": 3}]
        )
        assert not rel_satisfies_fd(schema, instance, RelFD({"A"}, {"B"}))


class TestMVDs:
    def test_requires_cross_product(self, schema):
        incomplete = freeze_rows(
            schema,
            [{"A": 1, "B": "b1", "C": "c1"}, {"A": 1, "B": "b2", "C": "c2"}],
        )
        mvd = RelMVD({"A"}, {"B"})
        assert not rel_satisfies_mvd(schema, incomplete, mvd)
        complete = incomplete | freeze_rows(
            schema,
            [{"A": 1, "B": "b1", "C": "c2"}, {"A": 1, "B": "b2", "C": "c1"}],
        )
        assert rel_satisfies_mvd(schema, complete, mvd)

    def test_trivial_mvd_always_holds(self, schema):
        instance = freeze_rows(
            schema, [{"A": 1, "B": 2, "C": 3}, {"A": 4, "B": 5, "C": 6}]
        )
        assert rel_satisfies_mvd(schema, instance, RelMVD({"A"}, {"B", "C"}))

    def test_dispatch(self, schema):
        instance = freeze_rows(schema, [{"A": 1, "B": 2, "C": 3}])
        assert rel_satisfies(schema, instance, RelFD({"A"}, {"B"}))
        assert rel_satisfies(schema, instance, RelMVD({"A"}, {"B"}))


class TestAgreementWithNestedSemantics:
    def test_random_cross_check(self):
        # The classical checkers and the nested Definition 4.1 checkers
        # must agree through the bridge on random flat instances.
        from repro.dependencies import satisfies as nested_satisfies
        from repro.relational import dependency_to_nested, schema_to_attribute

        rng = random.Random(5)
        names = ["A", "B", "C", "D"]
        schema = RelationSchema(names)
        root = schema_to_attribute(schema)
        for _ in range(60):
            rows = [
                {name: rng.randrange(3) for name in names}
                for _ in range(rng.randint(0, 6))
            ]
            instance = freeze_rows(schema, rows)
            nested_instance = frozenset(
                tuple(value for _, value in row) for row in instance
            )
            lhs = set(rng.sample(names, rng.randint(0, 3)))
            rhs = set(rng.sample(names, rng.randint(0, 4)))
            for dependency in (RelFD(lhs, rhs), RelMVD(lhs, rhs)):
                classical = rel_satisfies(schema, instance, dependency)
                nested = nested_satisfies(
                    root, nested_instance, dependency_to_nested(schema, dependency)
                )
                assert classical == nested, str(dependency)
