"""Unit tests for the classical Beeri membership algorithm ([6])."""

import pytest

from repro.relational import (
    RelFD,
    RelMVD,
    RelationSchema,
    mvd_counterpart,
    relational_closure,
    relational_dependency_basis,
    relational_implies,
)


def blocks(basis):
    return sorted(sorted(block) for block in basis)


class TestMvdCounterpart:
    def test_fds_split_into_singletons(self):
        result = mvd_counterpart([RelFD({"A"}, {"B", "C"})])
        assert set(result) == {RelMVD({"A"}, {"B"}), RelMVD({"A"}, {"C"})}

    def test_mvds_pass_through(self):
        mvd = RelMVD({"A"}, {"B", "C"})
        assert mvd_counterpart([mvd]) == [mvd]


class TestDependencyBasis:
    def test_no_dependencies(self):
        schema = RelationSchema("ABC")
        basis = relational_dependency_basis(schema, {"A"}, [])
        assert blocks(basis) == [["A"], ["B", "C"]]

    def test_simple_split(self):
        schema = RelationSchema("ABCD")
        basis = relational_dependency_basis(schema, {"A"}, [RelMVD({"A"}, {"B"})])
        assert blocks(basis) == [["A"], ["B"], ["C", "D"]]

    def test_transitive_refinement(self):
        # A ->> B and B ->> C refine DEP(A) to singletons B, C.
        schema = RelationSchema("ABCD")
        sigma = [RelMVD({"A"}, {"B"}), RelMVD({"B"}, {"C"})]
        basis = relational_dependency_basis(schema, {"A"}, sigma)
        assert blocks(basis) == [["A"], ["B"], ["C"], ["D"]]

    def test_lhs_overlapping_block_does_not_split(self):
        # The W ∩ B = ∅ side-condition.
        schema = RelationSchema("ABC")
        sigma = [RelMVD({"B"}, {"C"})]
        basis = relational_dependency_basis(schema, {"A"}, sigma)
        assert blocks(basis) == [["A"], ["B", "C"]]

    def test_basis_of_full_schema(self):
        schema = RelationSchema("AB")
        basis = relational_dependency_basis(schema, {"A", "B"}, [])
        assert blocks(basis) == [["A"], ["B"]]


class TestClosure:
    def test_fd_only_closure(self):
        schema = RelationSchema("ABCD")
        sigma = [RelFD({"A"}, {"B"}), RelFD({"B"}, {"C"})]
        assert relational_closure(schema, {"A"}, sigma) == frozenset("ABC")

    def test_mvd_alone_adds_nothing(self):
        schema = RelationSchema("ABC")
        sigma = [RelMVD({"A"}, {"B"})]
        assert relational_closure(schema, {"A"}, sigma) == frozenset("A")

    def test_coalescence_interaction(self):
        # C ->> A plus D -> A forces C -> A (see Beeri's criterion); the
        # exchange tuple would otherwise violate D -> A.
        schema = RelationSchema("ABCD")
        sigma = [RelMVD({"C"}, {"A"}), RelFD({"D"}, {"A"})]
        assert "A" in relational_closure(schema, {"C"}, sigma)

    def test_singleton_block_without_fd_support_excluded(self):
        schema = RelationSchema("ABC")
        sigma = [RelFD({"A"}, {"B"})]
        closure = relational_closure(schema, {"A"}, sigma)
        assert closure == frozenset("AB")  # C is a singleton block, no FD


class TestImplies:
    def test_fd_membership(self):
        schema = RelationSchema("ABC")
        sigma = [RelFD({"A"}, {"B"}), RelFD({"B"}, {"C"})]
        assert relational_implies(schema, sigma, RelFD({"A"}, {"C"}))
        assert not relational_implies(schema, sigma, RelFD({"C"}, {"A"}))

    def test_mvd_membership(self):
        schema = RelationSchema("ABCD")
        sigma = [RelMVD({"A"}, {"B"})]
        assert relational_implies(schema, sigma, RelMVD({"A"}, {"B"}))
        assert relational_implies(schema, sigma, RelMVD({"A"}, {"C", "D"}))
        assert relational_implies(schema, sigma, RelMVD({"A"}, {"B", "C", "D"}))
        assert not relational_implies(schema, sigma, RelMVD({"A"}, {"C"}))

    def test_trivial_mvds(self):
        schema = RelationSchema("AB")
        assert relational_implies(schema, [], RelMVD({"A"}, {"A"}))
        assert relational_implies(schema, [], RelMVD({"A"}, {"B"}))

    def test_fd_implies_mvd(self):
        schema = RelationSchema("ABC")
        sigma = [RelFD({"A"}, {"B"})]
        assert relational_implies(schema, sigma, RelMVD({"A"}, {"B"}))
