"""Unit tests for the XML front-end."""

import xml.etree.ElementTree as ET

import pytest

from repro import Schema
from repro.attributes import parse_attribute as p, parse_subattribute
from repro.exceptions import InvalidValueError
from repro.values import OK, project
from repro.xmlfront import (
    instance_from_xml,
    instance_to_xml,
    value_from_xml,
    value_to_xml,
)

PUBCRAWL_DOC = (
    "<Pubcrawl><Person>Sven</Person>"
    "<Visit><Drink><Beer>Lübzer</Beer><Pub>Deanos</Pub></Drink>"
    "<Drink><Beer>Kindl</Beer><Pub>Highflyers</Pub></Drink></Visit>"
    "</Pubcrawl>"
)


class TestDecode:
    def test_pubcrawl_document(self, pubcrawl_scenario):
        value = value_from_xml(pubcrawl_scenario.root, PUBCRAWL_DOC)
        assert value == ("Sven", (("Lübzer", "Deanos"), ("Kindl", "Highflyers")))

    def test_empty_list(self, pubcrawl_scenario):
        document = "<Pubcrawl><Person>Sebastian</Person><Visit/></Pubcrawl>"
        value = value_from_xml(pubcrawl_scenario.root, document)
        assert value == ("Sebastian", ())

    def test_children_matched_by_name_not_order(self):
        root = p("R(A, B)")
        value = value_from_xml(root, "<R><B>two</B><A>one</A></R>")
        assert value == ("one", "two")

    def test_missing_component_is_bottom(self):
        root = p("R(A, L[B])")
        value = value_from_xml(root, "<R><A>x</A></R>")
        assert value == ("x", OK)

    def test_missing_record_component_is_record_of_bottoms(self):
        root = p("R(A, S(B, C))")
        value = value_from_xml(root, "<R><A>x</A></R>")
        assert value == ("x", (OK, OK))

    def test_accepts_element_objects(self, pubcrawl_scenario):
        element = ET.fromstring(PUBCRAWL_DOC)
        assert value_from_xml(pubcrawl_scenario.root, element)[0] == "Sven"

    def test_wrong_root_tag(self):
        with pytest.raises(InvalidValueError):
            value_from_xml(p("R(A)"), "<S><A>x</A></S>")

    def test_stray_children(self):
        with pytest.raises(InvalidValueError):
            value_from_xml(p("R(A)"), "<R><A>x</A><Z>y</Z></R>")

    def test_duplicate_component(self):
        with pytest.raises(InvalidValueError):
            value_from_xml(p("R(A)"), "<R><A>x</A><A>y</A></R>")

    def test_wrong_list_child_tag(self):
        with pytest.raises(InvalidValueError):
            value_from_xml(p("L[A]"), "<L><B>x</B></L>")

    def test_flat_with_children_rejected(self):
        with pytest.raises(InvalidValueError):
            value_from_xml(p("A"), "<A><X/></A>")

    def test_ambiguous_record_heads_rejected(self):
        with pytest.raises(InvalidValueError):
            value_from_xml(p("R(A, A)"), "<R><A>1</A><A>2</A></R>")

    def test_list_of_lambda_counts_children(self):
        root = p("L[λ]")
        assert value_from_xml(root, "<L><x/><y/><z/></L>") == (OK, OK, OK)


class TestEncodeAndRoundtrip:
    def test_roundtrip_pubcrawl_instance(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        for value in pubcrawl_scenario.instance:
            element = value_to_xml(root, value)
            assert value_from_xml(root, element) == value

    def test_projected_values_omit_ok(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        target = parse_subattribute("Pubcrawl(Person, Visit[Drink(Pub)])", root)
        value = ("Sven", (("Lübzer", "Deanos"),))
        projected = project(root, target, value)
        element = value_to_xml(target, projected)
        text = ET.tostring(element, encoding="unicode")
        assert "<Beer>" not in text
        assert "<Pub>Deanos</Pub>" in text
        assert value_from_xml(target, element) == projected

    def test_instance_container(self, pubcrawl_scenario):
        root = pubcrawl_scenario.root
        container = instance_to_xml(root, pubcrawl_scenario.instance)
        assert container.tag == "instance"
        assert len(container) == 7
        decoded = instance_from_xml(root, list(container))
        assert decoded == pubcrawl_scenario.instance

    def test_lambda_alone_has_no_element(self):
        with pytest.raises(InvalidValueError):
            value_to_xml(p("λ"), OK)


class TestEndToEndReasoning:
    def test_documents_checked_against_dependencies(self, pubcrawl_scenario):
        schema = Schema(pubcrawl_scenario.root)
        sigma = schema.dependencies(pubcrawl_scenario.holding_mvd_text)
        container = instance_to_xml(schema.root, pubcrawl_scenario.instance)
        decoded = instance_from_xml(schema.root, list(container))
        assert schema.satisfies_all(decoded, sigma)
        assert not schema.satisfies(
            decoded, pubcrawl_scenario.failing_fd_texts[0]
        )
